file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_llm_explain.dir/bench_table5_llm_explain.cc.o"
  "CMakeFiles/bench_table5_llm_explain.dir/bench_table5_llm_explain.cc.o.d"
  "bench_table5_llm_explain"
  "bench_table5_llm_explain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_llm_explain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
