# Empty compiler generated dependencies file for exea_bench_common.
# This may be replaced when dependencies are built.
