// Evaluation metrics: EA accuracy, Hits@k, precision/recall/F1 (for the
// verification experiments of Table VI), and the sparsity measure of
// Eq. (13).

#ifndef EXEA_EVAL_METRICS_H_
#define EXEA_EVAL_METRICS_H_

#include <unordered_map>
#include <vector>

#include "eval/inference.h"
#include "kg/alignment.h"

namespace exea::eval {

// Proportion of gold test pairs present in `predicted` (the paper's EA
// accuracy metric, Section V-C1).
double Accuracy(const kg::AlignmentSet& predicted,
                const std::unordered_map<kg::EntityId, kg::EntityId>& gold);

// Hits@k over the ranked candidates: fraction of sources whose gold target
// appears in their top k.
double HitsAtK(const RankedSimilarity& ranked,
               const std::unordered_map<kg::EntityId, kg::EntityId>& gold,
               size_t k);

// Mean reciprocal rank of the gold target over the ranked candidates
// (0 contribution when the gold target is absent from a source's list).
double MeanReciprocalRank(
    const RankedSimilarity& ranked,
    const std::unordered_map<kg::EntityId, kg::EntityId>& gold);

struct BinaryClassificationResult {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;
};

// P/R/F1 of predicted boolean labels against gold labels (positives =
// "pair is a correct alignment").
BinaryClassificationResult EvaluateBinary(const std::vector<bool>& predicted,
                                          const std::vector<bool>& gold);

// Eq. (13): sparsity = 1 - |explanation| / |candidates|.
double Sparsity(size_t explanation_size, size_t candidate_size);

}  // namespace exea::eval

#endif  // EXEA_EVAL_METRICS_H_
