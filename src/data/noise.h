// Seed-alignment noise injection (paper Section V-E): randomly disrupt a
// fraction of the seed EA pairs by rewiring their targets, simulating
// labeling errors in real-world seed alignment.

#ifndef EXEA_DATA_NOISE_H_
#define EXEA_DATA_NOISE_H_

#include <cstdint>

#include "data/dataset.h"

namespace exea::data {

// Returns a copy of `dataset` in which `fraction` of the train pairs have
// their targets cyclically permuted among themselves (every disrupted pair
// becomes wrong, matching the paper's "randomly disrupting the entities in
// its 750 EA pairs" of 4500). Gold/test are untouched. Deterministic for a
// given seed.
EaDataset CorruptSeedAlignment(const EaDataset& dataset, double fraction,
                               uint64_t seed);

}  // namespace exea::data

#endif  // EXEA_DATA_NOISE_H_
