file(REMOVE_RECURSE
  "CMakeFiles/exea_data.dir/benchmarks.cc.o"
  "CMakeFiles/exea_data.dir/benchmarks.cc.o.d"
  "CMakeFiles/exea_data.dir/dataset.cc.o"
  "CMakeFiles/exea_data.dir/dataset.cc.o.d"
  "CMakeFiles/exea_data.dir/dataset_io.cc.o"
  "CMakeFiles/exea_data.dir/dataset_io.cc.o.d"
  "CMakeFiles/exea_data.dir/kfold.cc.o"
  "CMakeFiles/exea_data.dir/kfold.cc.o.d"
  "CMakeFiles/exea_data.dir/noise.cc.o"
  "CMakeFiles/exea_data.dir/noise.cc.o.d"
  "CMakeFiles/exea_data.dir/synthetic.cc.o"
  "CMakeFiles/exea_data.dir/synthetic.cc.o.d"
  "libexea_data.a"
  "libexea_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exea_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
