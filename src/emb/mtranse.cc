#include "emb/mtranse.h"

#include <cmath>

#include "emb/negative_sampling.h"
#include "emb/transe_common.h"
#include "la/vector_ops.h"
#include "util/logging.h"
#include "util/rng.h"

namespace exea::emb {

using internal_transe::ApplyTripleGradient;
using internal_transe::ParamRef;
using internal_transe::TripleScore;

void MTransE::Train(const data::EaDataset& dataset) {
  const kg::KnowledgeGraph& kg1 = dataset.kg1;
  const kg::KnowledgeGraph& kg2 = dataset.kg2;
  size_t dim = config_.dim;
  Rng rng(config_.seed);

  ent1_ = la::Matrix(kg1.num_entities(), dim);
  ent2_ = la::Matrix(kg2.num_entities(), dim);
  rel1_ = la::Matrix(kg1.num_relations(), dim);
  rel2_ = la::Matrix(kg2.num_relations(), dim);
  float stddev = 1.0f / std::sqrt(static_cast<float>(dim));
  ent1_.FillNormal(rng, stddev);
  ent2_.FillNormal(rng, stddev);
  rel1_.FillNormal(rng, stddev);
  rel2_.FillNormal(rng, stddev);
  ent1_.NormalizeRowsL2();
  ent2_.NormalizeRowsL2();

  AdagradTable ent1_opt(&ent1_, config_.learning_rate);
  AdagradTable ent2_opt(&ent2_, config_.learning_rate);
  AdagradTable rel1_opt(&rel1_, config_.learning_rate);
  AdagradTable rel2_opt(&rel2_, config_.learning_rate);

  std::vector<kg::AlignedPair> seeds = dataset.train.SortedPairs();

  std::vector<float> residual_pos;
  std::vector<float> residual_neg;

  // Runs a TransE margin-ranking pass over one KG's triples.
  auto transe_epoch = [&](const kg::KnowledgeGraph& graph, la::Matrix& ent,
                          AdagradTable& ent_opt, la::Matrix& rel,
                          AdagradTable& rel_opt) {
    for (const kg::Triple& t : graph.triples()) {
      for (size_t n = 0; n < config_.negatives; ++n) {
        bool corrupt_tail = rng.Bernoulli(0.5);
        kg::EntityId victim = corrupt_tail ? t.tail : t.head;
        kg::EntityId negative =
            UniformNegatives(graph.num_entities(), victim, 1, rng)[0];
        ParamRef h{&ent, &ent_opt, t.head};
        ParamRef r{&rel, &rel_opt, t.rel};
        ParamRef tail{&ent, &ent_opt, t.tail};
        ParamRef neg_h = corrupt_tail ? h : ParamRef{&ent, &ent_opt, negative};
        ParamRef neg_t = corrupt_tail ? ParamRef{&ent, &ent_opt, negative}
                                      : tail;
        float pos = TripleScore(h, r, tail, residual_pos);
        float neg = TripleScore(neg_h, r, neg_t, residual_neg);
        if (config_.margin + pos - neg > 0.0f) {
          ApplyTripleGradient(h, r, tail, residual_pos, +1.0f);
          ApplyTripleGradient(neg_h, r, neg_t, residual_neg, -1.0f);
        }
      }
    }
  };

  std::vector<float> grad(dim);
  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    transe_epoch(kg1, ent1_, ent1_opt, rel1_, rel1_opt);
    transe_epoch(kg2, ent2_, ent2_opt, rel2_, rel2_opt);

    // Calibration: pull seed pairs together, L = ||e1 - e2||^2, plus a
    // hard averaging step that fuses the two spaces (the shared-space
    // calibration variant; gradient pulls alone merge two independently
    // drifting TransE spaces far too slowly).
    for (const kg::AlignedPair& pair : seeds) {
      float* e1 = ent1_.Row(pair.source);
      float* e2 = ent2_.Row(pair.target);
      for (size_t c = 0; c < dim; ++c) grad[c] = 2.0f * (e1[c] - e2[c]);
      ent1_opt.Update(pair.source, grad.data());
      for (size_t c = 0; c < dim; ++c) grad[c] = -grad[c];
      ent2_opt.Update(pair.target, grad.data());
      for (size_t c = 0; c < dim; ++c) {
        float mean = 0.5f * (e1[c] + e2[c]);
        e1[c] = mean;
        e2[c] = mean;
      }
    }

    ent1_.NormalizeRowsL2();
    ent2_.NormalizeRowsL2();
  }
}

const la::Matrix& MTransE::EntityEmbeddings(kg::KgSide side) const {
  return side == kg::KgSide::kSource ? ent1_ : ent2_;
}

const la::Matrix& MTransE::RelationEmbeddings(kg::KgSide side) const {
  return side == kg::KgSide::kSource ? rel1_ : rel2_;
}

}  // namespace exea::emb
