// Tests for the classical (pre-embedding) EA baselines: simplified PARIS
// and Similarity Flooding.

#include <gtest/gtest.h>

#include "classical/paris.h"
#include "classical/similarity_flooding.h"
#include "data/benchmarks.h"
#include "eval/metrics.h"

namespace exea::classical {
namespace {

const data::EaDataset& Dataset() {
  static const data::EaDataset* dataset = new data::EaDataset(
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny));
  return *dataset;
}

// ------------------------------------------------------------------ PARIS

TEST(ParisTest, AlignsWellAboveChance) {
  ParisResult result = RunParis(Dataset(), ParisOptions{});
  double accuracy =
      eval::Accuracy(result.alignment, Dataset().test_gold);
  // Chance is < 1%; functionality-driven propagation should do far better.
  EXPECT_GT(accuracy, 0.2) << "PARIS accuracy " << accuracy;
  EXPECT_GT(result.alignment.size(), 0u);
  EXPECT_EQ(result.iterations_run, ParisOptions{}.iterations);
}

TEST(ParisTest, OutputPairsAreTestPairs) {
  ParisResult result = RunParis(Dataset(), ParisOptions{});
  for (const kg::AlignedPair& pair : result.alignment.SortedPairs()) {
    EXPECT_TRUE(Dataset().test_gold.count(pair.source) > 0)
        << "non-test source " << pair.source;
    EXPECT_FALSE(Dataset().train.HasTarget(pair.target));
  }
}

TEST(ParisTest, MutualBestDecodingIsOneToOne) {
  ParisResult result = RunParis(Dataset(), ParisOptions{});
  EXPECT_TRUE(result.alignment.IsOneToOne());
}

TEST(ParisTest, Deterministic) {
  ParisResult a = RunParis(Dataset(), ParisOptions{});
  ParisResult b = RunParis(Dataset(), ParisOptions{});
  EXPECT_EQ(a.alignment.SortedPairs(), b.alignment.SortedPairs());
}

TEST(ParisTest, StricterThresholdAlignsFewerButBetter) {
  ParisOptions loose;
  loose.accept_threshold = 0.1;
  ParisOptions strict;
  strict.accept_threshold = 0.8;
  ParisResult loose_result = RunParis(Dataset(), loose);
  ParisResult strict_result = RunParis(Dataset(), strict);
  EXPECT_LE(strict_result.alignment.size(), loose_result.alignment.size());
  // Precision of the strict set should not be worse.
  auto precision = [&](const kg::AlignmentSet& alignment) {
    if (alignment.empty()) return 1.0;
    size_t correct = 0;
    for (const kg::AlignedPair& pair : alignment.SortedPairs()) {
      auto it = Dataset().test_gold.find(pair.source);
      if (it != Dataset().test_gold.end() && it->second == pair.target) {
        ++correct;
      }
    }
    return static_cast<double>(correct) /
           static_cast<double>(alignment.size());
  };
  EXPECT_GE(precision(strict_result.alignment) + 0.05,
            precision(loose_result.alignment));
}

// ---------------------------------------------------- similarity flooding

TEST(SimilarityFloodingTest, AlignsWellAboveChance) {
  SimilarityFloodingResult result =
      RunSimilarityFlooding(Dataset(), SimilarityFloodingOptions{});
  double accuracy = eval::Accuracy(result.alignment, Dataset().test_gold);
  EXPECT_GT(accuracy, 0.15) << "SF accuracy " << accuracy;
  EXPECT_GT(result.pcg_nodes, Dataset().train.size());
  EXPECT_GT(result.pcg_edges, 0u);
}

TEST(SimilarityFloodingTest, Deterministic) {
  SimilarityFloodingResult a =
      RunSimilarityFlooding(Dataset(), SimilarityFloodingOptions{});
  SimilarityFloodingResult b =
      RunSimilarityFlooding(Dataset(), SimilarityFloodingOptions{});
  EXPECT_EQ(a.alignment.SortedPairs(), b.alignment.SortedPairs());
}

TEST(SimilarityFloodingTest, ConvergesBeforeIterationCap) {
  SimilarityFloodingOptions options;
  options.iterations = 64;
  SimilarityFloodingResult result = RunSimilarityFlooding(Dataset(), options);
  EXPECT_LT(result.iterations_run, 64u)
      << "sigma should reach the epsilon fixed point quickly";
}

TEST(SimilarityFloodingTest, PairCapRespected) {
  SimilarityFloodingOptions options;
  options.max_pairs = 100;
  SimilarityFloodingResult result = RunSimilarityFlooding(Dataset(), options);
  EXPECT_LE(result.pcg_nodes, 100u);
}

TEST(SimilarityFloodingTest, OutputsOnlyTestPairs) {
  SimilarityFloodingResult result =
      RunSimilarityFlooding(Dataset(), SimilarityFloodingOptions{});
  for (const kg::AlignedPair& pair : result.alignment.SortedPairs()) {
    EXPECT_TRUE(Dataset().test_gold.count(pair.source) > 0);
  }
}

}  // namespace
}  // namespace exea::classical
