// The common interface every explanation method implements — ExEA itself
// (via an adapter) and the four transferred baselines of Section V-B1
// (EALime, EAShapley, Anchor, LORE).
//
// An explainer receives an EA pair and its candidate triples (T_(e1,e2),
// split per KG) and selects an explanation subset. Baselines take an
// explicit `budget` — the number of triples to select — because the
// evaluation protocol matches their sparsity to ExEA's (Section V-B2:
// "we adjust the parameters of baseline methods ... to ensure that the
// sparsity is as close as possible to that of ExEA").

#ifndef EXEA_BASELINES_EXPLAINER_H_
#define EXEA_BASELINES_EXPLAINER_H_

#include <string>
#include <vector>

#include "kg/types.h"

namespace exea::baselines {

struct ExplainerResult {
  std::vector<kg::Triple> triples1;
  std::vector<kg::Triple> triples2;

  size_t TotalTriples() const { return triples1.size() + triples2.size(); }
};

class Explainer {
 public:
  virtual ~Explainer() = default;

  virtual std::string name() const = 0;

  // Selects an explanation of at most `budget` triples (0 means "method
  // decides", which only ExEA uses — it does not require a preset length).
  virtual ExplainerResult Explain(kg::EntityId e1, kg::EntityId e2,
                                  const std::vector<kg::Triple>& candidates1,
                                  const std::vector<kg::Triple>& candidates2,
                                  size_t budget) = 0;
};

// Shared helper for score-based baselines: keeps the `budget` highest-
// scoring candidate triples (scores parallel to candidates1 ++ candidates2)
// and splits them back into per-KG lists.
ExplainerResult SelectTopTriples(const std::vector<kg::Triple>& candidates1,
                                 const std::vector<kg::Triple>& candidates2,
                                 const std::vector<double>& scores,
                                 size_t budget);

}  // namespace exea::baselines

#endif  // EXEA_BASELINES_EXPLAINER_H_
