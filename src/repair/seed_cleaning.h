// Seed cleaning — extending the paper's Section V-E: real-world seed
// alignments contain labeling errors, and the same explanation confidence
// that repairs model output can vet the *training* pairs themselves.
//
// A seed pair is audited under a context that excludes it (leave-one-out:
// a corrupted seed must not vouch for itself) and flagged when its ADG
// confidence falls below the threshold. Flagged pairs are removed; the
// caller can then retrain on the cleaned seed set.

#ifndef EXEA_REPAIR_SEED_CLEANING_H_
#define EXEA_REPAIR_SEED_CLEANING_H_

#include <vector>

#include "explain/exea.h"
#include "kg/alignment.h"

namespace exea::repair {

struct SeedCleaningOptions {
  // Seeds with confidence <= threshold are dropped. sigmoid(0) = 0.5 is
  // the "no strong support" point, matching the low-confidence criterion.
  double confidence_threshold = 0.5;
};

struct SeedCleaningResult {
  kg::AlignmentSet cleaned;                 // surviving seeds
  std::vector<kg::AlignedPair> removed;     // flagged seeds
  std::vector<double> removed_confidences;  // parallel to `removed`
};

// Audits every pair of `seeds` with leave-one-out contexts over
// (model results ∪ remaining seeds). `explainer` must be built on a model
// trained with these (possibly noisy) seeds.
SeedCleaningResult CleanSeeds(const explain::ExeaExplainer& explainer,
                              const kg::AlignmentSet& seeds,
                              const kg::AlignmentSet& model_results,
                              const SeedCleaningOptions& options);

}  // namespace exea::repair

#endif  // EXEA_REPAIR_SEED_CLEANING_H_
