// Lightweight Status / StatusOr error-handling primitives.
//
// The library does not use exceptions for control flow. Fallible operations
// return `Status` (or `StatusOr<T>` when they also produce a value), and
// callers are expected to check `ok()` before use. Programming errors are
// handled with the EXEA_CHECK macros from logging.h instead.

#ifndef EXEA_UTIL_STATUS_H_
#define EXEA_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace exea {

// Broad error categories, modeled after the usual canonical codes. Only the
// codes this codebase actually produces are included.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kOutOfRange = 4,
  kInternal = 5,
  kIoError = 6,
  kDeadlineExceeded = 7,
  kUnavailable = 8,
};

// Returns a stable human-readable name for `code` (e.g. "INVALID_ARGUMENT").
const char* StatusCodeName(StatusCode code);

// A success-or-error result. Cheap to copy in the success case (no message
// allocation); carries a code and message otherwise. The class itself is
// [[nodiscard]]: silently dropping an error is a compiler warning at every
// call site, not just for declarations that remembered the attribute.
class [[nodiscard]] Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status Ok() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// A value-or-error result. Accessing `value()` on an error is a fatal
// programming error (checked). [[nodiscard]] for the same reason as Status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Implicit construction from a value or a non-OK Status mirrors the
  // ergonomics of the canonical type.
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {}     // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace exea

// Propagates a non-OK status to the caller. Usable in functions returning
// Status or StatusOr<T>.
#define EXEA_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::exea::Status exea_status_tmp_ = (expr);     \
    if (!exea_status_tmp_.ok()) {                 \
      return exea_status_tmp_;                    \
    }                                             \
  } while (false)

#endif  // EXEA_UTIL_STATUS_H_
