#include "eval/metrics.h"

#include "util/logging.h"

namespace exea::eval {

double Accuracy(const kg::AlignmentSet& predicted,
                const std::unordered_map<kg::EntityId, kg::EntityId>& gold) {
  return kg::AlignmentAccuracy(predicted, gold);
}

double HitsAtK(const RankedSimilarity& ranked,
               const std::unordered_map<kg::EntityId, kg::EntityId>& gold,
               size_t k) {
  if (gold.empty()) return 0.0;
  size_t hits = 0;
  size_t counted = 0;
  for (kg::EntityId source : ranked.sources()) {
    auto it = gold.find(source);
    if (it == gold.end()) continue;
    ++counted;
    const std::vector<Candidate>& candidates = ranked.CandidatesFor(source);
    size_t depth = std::min(k, candidates.size());
    for (size_t i = 0; i < depth; ++i) {
      if (candidates[i].target == it->second) {
        ++hits;
        break;
      }
    }
  }
  return counted == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(counted);
}

double MeanReciprocalRank(
    const RankedSimilarity& ranked,
    const std::unordered_map<kg::EntityId, kg::EntityId>& gold) {
  if (gold.empty()) return 0.0;
  double sum = 0.0;
  size_t counted = 0;
  for (kg::EntityId source : ranked.sources()) {
    auto it = gold.find(source);
    if (it == gold.end()) continue;
    ++counted;
    const std::vector<Candidate>& candidates = ranked.CandidatesFor(source);
    for (size_t rank = 0; rank < candidates.size(); ++rank) {
      if (candidates[rank].target == it->second) {
        sum += 1.0 / static_cast<double>(rank + 1);
        break;
      }
    }
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

BinaryClassificationResult EvaluateBinary(const std::vector<bool>& predicted,
                                          const std::vector<bool>& gold) {
  EXEA_CHECK_EQ(predicted.size(), gold.size());
  BinaryClassificationResult out;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] && gold[i]) ++out.true_positives;
    if (predicted[i] && !gold[i]) ++out.false_positives;
    if (!predicted[i] && gold[i]) ++out.false_negatives;
  }
  size_t tp = out.true_positives;
  out.precision = tp + out.false_positives == 0
                      ? 0.0
                      : static_cast<double>(tp) /
                            static_cast<double>(tp + out.false_positives);
  out.recall = tp + out.false_negatives == 0
                   ? 0.0
                   : static_cast<double>(tp) /
                         static_cast<double>(tp + out.false_negatives);
  out.f1 = out.precision + out.recall == 0.0
               ? 0.0
               : 2.0 * out.precision * out.recall /
                     (out.precision + out.recall);
  return out;
}

double Sparsity(size_t explanation_size, size_t candidate_size) {
  if (candidate_size == 0) return 0.0;
  return 1.0 - static_cast<double>(explanation_size) /
                   static_cast<double>(candidate_size);
}

}  // namespace exea::eval
