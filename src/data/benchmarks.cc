#include "data/benchmarks.h"

#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

namespace exea::data {

const std::vector<Benchmark>& AllBenchmarks() {
  // leaky singleton: static-init-order-safe. exea-lint: allow(raw-new-delete)
  static const std::vector<Benchmark>* kAll = new std::vector<Benchmark>{
      Benchmark::kZhEn, Benchmark::kJaEn, Benchmark::kFrEn,
      Benchmark::kDbpWd, Benchmark::kDbpYago};
  return *kAll;
}

std::string BenchmarkName(Benchmark benchmark) {
  switch (benchmark) {
    case Benchmark::kZhEn:
      return "ZH-EN";
    case Benchmark::kJaEn:
      return "JA-EN";
    case Benchmark::kFrEn:
      return "FR-EN";
    case Benchmark::kDbpWd:
      return "DBP-WD";
    case Benchmark::kDbpYago:
      return "DBP-YAGO";
  }
  EXEA_LOG(Fatal) << "unknown benchmark enum";
  return "";
}

Benchmark BenchmarkFromName(const std::string& name) {
  for (Benchmark b : AllBenchmarks()) {
    if (BenchmarkName(b) == name) return b;
  }
  EXEA_LOG(Fatal) << "unknown benchmark name: " << name;
  return Benchmark::kZhEn;
}

Scale ScaleFromName(const std::string& name) {
  std::string lower = AsciiLower(name);
  if (lower == "tiny") return Scale::kTiny;
  if (lower == "small") return Scale::kSmall;
  if (lower == "medium") return Scale::kMedium;
  EXEA_LOG(Fatal) << "unknown scale: " << name;
  return Scale::kSmall;
}

Scale ScaleFromEnv() {
  const char* env = std::getenv("EXEA_BENCH_SCALE");
  if (env == nullptr || *env == '\0') return Scale::kSmall;
  return ScaleFromName(env);
}

namespace {

void ApplyScale(Scale scale, SyntheticOptions& options) {
  switch (scale) {
    case Scale::kTiny:
      options.num_entities = 160;
      options.num_relations = 12;
      options.num_families = 6;
      options.family_size = 4;
      break;
    case Scale::kSmall:
      options.num_entities = 400;
      options.num_relations = 20;
      options.num_families = 12;
      options.family_size = 5;
      break;
    case Scale::kMedium:
      options.num_entities = 1000;
      options.num_relations = 30;
      options.num_families = 24;
      options.family_size = 6;
      break;
  }
}

}  // namespace

SyntheticOptions BenchmarkOptions(Benchmark benchmark, Scale scale) {
  SyntheticOptions options;
  ApplyScale(scale, options);
  options.dataset_name = BenchmarkName(benchmark);
  switch (benchmark) {
    case Benchmark::kZhEn:
      options.kg1_prefix = "zh";
      options.kg2_prefix = "en";
      options.triples_per_entity = 4.0;
      options.triple_dropout = 0.22;
      options.chain_dropout = 0.5;
      options.extra_triple_fraction = 0.12;
      options.seed = 101;
      break;
    case Benchmark::kJaEn:
      options.kg1_prefix = "ja";
      options.kg2_prefix = "en";
      options.triples_per_entity = 3.5;
      options.triple_dropout = 0.32;  // hardest cross-lingual dataset
      options.chain_dropout = 0.55;
      options.extra_triple_fraction = 0.16;
      options.seed = 202;
      break;
    case Benchmark::kFrEn:
      options.kg1_prefix = "fr";
      options.kg2_prefix = "en";
      options.triples_per_entity = 6.0;  // noticeably denser (paper V-C2)
      options.triple_dropout = 0.2;
      options.chain_dropout = 0.45;
      options.extra_triple_fraction = 0.12;
      options.seed = 303;
      break;
    case Benchmark::kDbpWd:
      options.kg1_prefix = "dbp";
      options.kg2_prefix = "wd";
      options.triples_per_entity = 4.5;
      options.triple_dropout = 0.28;
      options.chain_dropout = 0.5;
      options.extra_triple_fraction = 0.14;
      options.relation_split_fraction = 0.25;  // heterogeneous schema
      options.relation_merge_fraction = 0.20;
      options.seed = 404;
      break;
    case Benchmark::kDbpYago:
      options.kg1_prefix = "dbp";
      options.kg2_prefix = "yago";
      options.triples_per_entity = 4.5;
      options.triple_dropout = 0.26;
      options.chain_dropout = 0.5;
      options.extra_triple_fraction = 0.14;
      options.relation_split_fraction = 0.35;  // largest semantic gap
      options.relation_merge_fraction = 0.30;
      options.seed = 505;
      break;
  }
  return options;
}

EaDataset MakeBenchmark(Benchmark benchmark, Scale scale) {
  return GenerateDataset(BenchmarkOptions(benchmark, scale));
}

}  // namespace exea::data
