// Clean fixture for lint_test: the compliant twin of bad/ — the same
// shapes, written the way the rules demand, must scan with zero findings.
#ifndef EXEA_TESTS_CORPUS_LINT_GOOD_SRC_CLEAN_H_
#define EXEA_TESTS_CORPUS_LINT_GOOD_SRC_CLEAN_H_

namespace demo {

[[nodiscard]] util::Status DoThing();

[[nodiscard]]
util::StatusOr<int> DoOther();  // attribute on its own line also counts

}  // namespace demo

#endif  // EXEA_TESTS_CORPUS_LINT_GOOD_SRC_CLEAN_H_
