// Seeded lock-discipline violations: a member declared after the class's
// mutex without EXEA_GUARDED_BY (→ guarded-by), and an inline method that
// touches an annotated member without taking the lock (→ lock-held).
#ifndef EXEA_TESTS_CORPUS_LINT_BAD_SRC_UTIL_BADLOCK_H_
#define EXEA_TESTS_CORPUS_LINT_BAD_SRC_UTIL_BADLOCK_H_

#include <mutex>

namespace demo {

class Counter {
 public:
  // → lock-held: reads count_ with no lock_guard of mu_ in scope.
  long Peek() const {
    return count_;
  }

 private:
  mutable std::mutex mu_;
  long count_ EXEA_GUARDED_BY(mu_) = 0;
  long unguarded_total_ = 0;  // → guarded-by: declared after mu_, no macro
};

}  // namespace demo

#endif  // EXEA_TESTS_CORPUS_LINT_BAD_SRC_UTIL_BADLOCK_H_
