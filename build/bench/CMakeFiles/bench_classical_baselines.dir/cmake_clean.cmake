file(REMOVE_RECURSE
  "CMakeFiles/bench_classical_baselines.dir/bench_classical_baselines.cc.o"
  "CMakeFiles/bench_classical_baselines.dir/bench_classical_baselines.cc.o.d"
  "bench_classical_baselines"
  "bench_classical_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_classical_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
