file(REMOVE_RECURSE
  "libexea_emb.a"
)
