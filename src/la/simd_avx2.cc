// AVX2 kernel implementations. This translation unit is the only one
// compiled with -mavx2 (and deliberately NOT -mfma: a fused
// multiply-add would round differently from the scalar reference and
// break the bit-identity contract in simd.h — every product and sum
// here must round individually). On targets where the build does not
// enable AVX2 the file degrades to a nullptr provider.

#include "la/simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace exea::la {
namespace {

constexpr size_t kLanes = 8;

float DotAvx2(const float* a, const float* b, size_t n) {
  __m256 acc = _mm256_setzero_ps();
  size_t main = n - n % kLanes;
  for (size_t i = 0; i < main; i += kLanes) {
    __m256 va = _mm256_loadu_ps(a + i);
    __m256 vb = _mm256_loadu_ps(b + i);
    // mul + add, never fmadd (see file comment).
    acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
  }
  // Horizontal tree reduce; the scalar kernel replays this exact shape:
  // s_l = acc_l + acc_{l+4}, t_e = s_e + s_{e+2}, sum = t_0 + t_1.
  __m128 lo = _mm256_castps256_ps128(acc);
  __m128 hi = _mm256_extractf128_ps(acc, 1);
  __m128 s = _mm_add_ps(lo, hi);
  __m128 sh = _mm_movehl_ps(s, s);
  __m128 t = _mm_add_ps(s, sh);
  __m128 th = _mm_shuffle_ps(t, t, 0x1);
  float sum = _mm_cvtss_f32(_mm_add_ss(t, th));
  for (size_t i = main; i < n; ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

// Four doubles per vector; the arithmetic is purely elementwise
// (mul, sub, sub, one float round on store), so it is bit-identical to
// the scalar expression by construction.
void CslsAdjustRowAvx2(const float* sim, double r_src, const double* r_tgt,
                       float* dst, size_t n) {
  const __m256d two = _mm256_set1_pd(2.0);
  const __m256d rs = _mm256_set1_pd(r_src);
  size_t main = n - n % 4;
  for (size_t j = 0; j < main; j += 4) {
    __m256d sd = _mm256_cvtps_pd(_mm_loadu_ps(sim + j));
    __m256d v = _mm256_sub_pd(
        _mm256_sub_pd(_mm256_mul_pd(two, sd), rs), _mm256_loadu_pd(r_tgt + j));
    _mm_storeu_ps(dst + j, _mm256_cvtpd_ps(v));
  }
  for (size_t j = main; j < n; ++j) {
    dst[j] = static_cast<float>(2.0 * sim[j] - r_src - r_tgt[j]);
  }
}

constexpr SimdOps kAvx2Ops = {DotAvx2, CslsAdjustRowAvx2};

}  // namespace

const SimdOps* Avx2SimdOpsOrNull() {
  // CPUID probe, cached by the static. The build supporting AVX2 does
  // not imply the machine running the binary does.
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported ? &kAvx2Ops : nullptr;
}

}  // namespace exea::la

#else  // !defined(__AVX2__)

namespace exea::la {

const SimdOps* Avx2SimdOpsOrNull() { return nullptr; }

}  // namespace exea::la

#endif  // defined(__AVX2__)
