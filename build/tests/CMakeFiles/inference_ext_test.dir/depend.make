# Empty dependencies file for inference_ext_test.
# This may be replaced when dependencies are built.
