# Empty dependencies file for exea_data.
# This may be replaced when dependencies are built.
