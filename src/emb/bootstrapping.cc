#include "emb/bootstrapping.h"

#include <algorithm>

#include "la/similarity.h"
#include "util/logging.h"

namespace exea::emb {
namespace {

// Mutually-best test pairs above `threshold`, highest similarity first.
std::vector<std::pair<kg::AlignedPair, float>> MutualBestPromotions(
    const EAModel& model, const data::EaDataset& dataset, double threshold) {
  const la::Matrix& ent1 = model.EntityEmbeddings(kg::KgSide::kSource);
  const la::Matrix& ent2 = model.EntityEmbeddings(kg::KgSide::kTarget);
  std::vector<kg::EntityId> sources = dataset.test_sources;
  std::vector<kg::EntityId> targets;
  for (const kg::AlignedPair& pair : dataset.test) {
    targets.push_back(pair.target);
  }
  la::Matrix src(sources.size(), ent1.cols());
  la::Matrix tgt(targets.size(), ent2.cols());
  for (size_t i = 0; i < sources.size(); ++i) {
    src.SetRow(i, ent1.RowCopy(sources[i]));
  }
  for (size_t j = 0; j < targets.size(); ++j) {
    tgt.SetRow(j, ent2.RowCopy(targets[j]));
  }
  la::Matrix sim = la::CosineSimilarityMatrix(src, tgt);

  std::vector<size_t> best_col(sources.size());
  std::vector<size_t> best_row(targets.size(), 0);
  std::vector<float> best_row_score(targets.size(), -2.0f);
  for (size_t i = 0; i < sources.size(); ++i) {
    const float* row = sim.Row(i);
    size_t best = 0;
    for (size_t j = 1; j < targets.size(); ++j) {
      if (row[j] > row[best]) best = j;
    }
    best_col[i] = best;
    for (size_t j = 0; j < targets.size(); ++j) {
      if (row[j] > best_row_score[j]) {
        best_row_score[j] = row[j];
        best_row[j] = i;
      }
    }
  }
  std::vector<std::pair<kg::AlignedPair, float>> promotions;
  for (size_t i = 0; i < sources.size(); ++i) {
    size_t j = best_col[i];
    float score = sim.At(i, j);
    if (best_row[j] == i && score >= static_cast<float>(threshold)) {
      promotions.push_back({{sources[i], targets[j]}, score});
    }
  }
  std::sort(promotions.begin(), promotions.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  return promotions;
}

}  // namespace

BootstrapResult Bootstrap(const EAModel& prototype,
                          const data::EaDataset& dataset,
                          const BootstrapOptions& options) {
  EXEA_CHECK_GE(options.rounds, 1u);
  BootstrapResult result;
  kg::AlignmentSet pseudo;

  for (size_t round = 0; round < options.rounds; ++round) {
    data::EaDataset augmented = dataset;
    for (const kg::AlignedPair& pair : pseudo.SortedPairs()) {
      augmented.train.Add(pair.source, pair.target);
    }
    result.model = prototype.CloneUntrained();
    result.model->Train(augmented);
    ++result.rounds_run;
    if (round + 1 == options.rounds) break;

    // Alignment editing: pseudo-seeds are recomputed from scratch every
    // round, so earlier promotions can be revoked.
    std::vector<std::pair<kg::AlignedPair, float>> promotions =
        MutualBestPromotions(*result.model, dataset,
                             options.similarity_threshold);
    pseudo = kg::AlignmentSet();
    size_t keep = std::min(promotions.size(), options.max_new_per_round);
    for (size_t i = 0; i < keep; ++i) {
      pseudo.Add(promotions[i].first.source, promotions[i].first.target);
    }
    result.promoted_per_round.push_back(keep);
  }
  result.pseudo_seeds = std::move(pseudo);
  return result;
}

}  // namespace exea::emb
