// k-fold cross-validation splits over the gold alignment — the protocol
// the OpenEA benchmark (the paper's DBP-WD / DBP-YAGO source) ships with:
// its datasets come with 5-fold splits so reported numbers are averages
// over folds rather than one arbitrary seed/test partition.
//
// KFoldSplits re-partitions a dataset's gold pairs into k folds; fold i's
// dataset uses fold i as the test set and the remaining pairs as seeds.

#ifndef EXEA_DATA_KFOLD_H_
#define EXEA_DATA_KFOLD_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace exea::data {

// Returns k datasets sharing the input's KGs. Fold i's test set is the
// i-th slice of a seeded shuffle of the gold pairs; its train set is
// everything else. Requires k >= 2 and at least k gold pairs.
std::vector<EaDataset> KFoldSplits(const EaDataset& dataset, size_t k,
                                   uint64_t seed);

// Convenience for fold sweeps: mean and sample standard deviation.
struct FoldStats {
  double mean = 0.0;
  double stddev = 0.0;
};
FoldStats Summarize(const std::vector<double>& values);

}  // namespace exea::data

#endif  // EXEA_DATA_KFOLD_H_
