// EALime — the LIME transfer to EA (paper Section V-B1).
//
// Each candidate triple is a binary feature. Perturbed neighbourhoods are
// sampled, the model's prediction (reconstructed-pair similarity) is
// computed for each, and a locally-weighted linear surrogate is fit with
// the Eq. (11) similarity kernel
//   pi(T') = (sim(e1', e1) + sim(e2', e2)) / 2.
// The highest-weight features form the explanation.

#ifndef EXEA_BASELINES_EALIME_H_
#define EXEA_BASELINES_EALIME_H_

#include <cstdint>

#include "baselines/explainer.h"
#include "baselines/perturbation.h"

namespace exea::baselines {

class EALime : public Explainer {
 public:
  // Borrows `embedder`.
  EALime(const PerturbedEmbedder* embedder, size_t num_samples = 128,
         uint64_t seed = 11)
      : embedder_(embedder), num_samples_(num_samples), seed_(seed) {}

  std::string name() const override { return "EALime"; }

  ExplainerResult Explain(kg::EntityId e1, kg::EntityId e2,
                          const std::vector<kg::Triple>& candidates1,
                          const std::vector<kg::Triple>& candidates2,
                          size_t budget) override;

 private:
  const PerturbedEmbedder* embedder_;
  size_t num_samples_;
  uint64_t seed_;
};

}  // namespace exea::baselines

#endif  // EXEA_BASELINES_EALIME_H_
