file(REMOVE_RECURSE
  "CMakeFiles/exea_emb.dir/aligne.cc.o"
  "CMakeFiles/exea_emb.dir/aligne.cc.o.d"
  "CMakeFiles/exea_emb.dir/bootstrapping.cc.o"
  "CMakeFiles/exea_emb.dir/bootstrapping.cc.o.d"
  "CMakeFiles/exea_emb.dir/dual_amn.cc.o"
  "CMakeFiles/exea_emb.dir/dual_amn.cc.o.d"
  "CMakeFiles/exea_emb.dir/gcn_align.cc.o"
  "CMakeFiles/exea_emb.dir/gcn_align.cc.o.d"
  "CMakeFiles/exea_emb.dir/model.cc.o"
  "CMakeFiles/exea_emb.dir/model.cc.o.d"
  "CMakeFiles/exea_emb.dir/model_factory.cc.o"
  "CMakeFiles/exea_emb.dir/model_factory.cc.o.d"
  "CMakeFiles/exea_emb.dir/mtranse.cc.o"
  "CMakeFiles/exea_emb.dir/mtranse.cc.o.d"
  "CMakeFiles/exea_emb.dir/name_augmented.cc.o"
  "CMakeFiles/exea_emb.dir/name_augmented.cc.o.d"
  "CMakeFiles/exea_emb.dir/negative_sampling.cc.o"
  "CMakeFiles/exea_emb.dir/negative_sampling.cc.o.d"
  "CMakeFiles/exea_emb.dir/optimizer.cc.o"
  "CMakeFiles/exea_emb.dir/optimizer.cc.o.d"
  "CMakeFiles/exea_emb.dir/relation_embedding.cc.o"
  "CMakeFiles/exea_emb.dir/relation_embedding.cc.o.d"
  "CMakeFiles/exea_emb.dir/rotate_align.cc.o"
  "CMakeFiles/exea_emb.dir/rotate_align.cc.o.d"
  "CMakeFiles/exea_emb.dir/transe_common.cc.o"
  "CMakeFiles/exea_emb.dir/transe_common.cc.o.d"
  "libexea_emb.a"
  "libexea_emb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exea_emb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
