// Table III: EA repair results — base vs ExEA-repaired accuracy and the
// improvement Δacc, for four models on five datasets.
//
// Paper shape: repair improves every model on every dataset; the
// translation-family (MTransE/AlignE) gains exceed the GCN-family gains;
// Dual-AMN gains least; repaired MTransE rivals base Dual-AMN.

#include <cstdio>

#include "bench/common.h"
#include "explain/exea.h"
#include "repair/pipeline.h"
#include "util/logging.h"

int main() {
  using namespace exea;
  SetMinLogLevel(LogLevel::kError);
  bench::PrintBanner("Table III — EA repair results (accuracy)",
                     "ExEA paper Table III (Section V-C2)");

  data::Scale scale = data::ScaleFromEnv();
  bench::Table table(
      {"model", "dataset", "base", "ExEA", "delta_acc"});
  for (emb::ModelKind kind : bench::AllModels()) {
    for (data::Benchmark benchmark : data::AllBenchmarks()) {
      data::EaDataset dataset = data::MakeBenchmark(benchmark, scale);
      std::unique_ptr<emb::EAModel> model = bench::TrainModel(kind, dataset);
      explain::ExeaExplainer explainer(dataset, *model,
                                       explain::ExeaConfig{});
      repair::RepairPipeline pipeline(explainer, repair::RepairOptions{});
      repair::RepairReport report = pipeline.Run();
      table.AddRow({model->name(), dataset.name,
                    bench::Table::Fmt(report.base_accuracy),
                    bench::Table::Fmt(report.repaired_accuracy),
                    bench::Table::Fmt(report.AccuracyGain(), 3)});
    }
    table.AddSeparator();
  }
  table.Print();

  std::printf(
      "\nPaper reference (Table III, ZH-EN): MTransE 0.423->0.761 (+0.338), "
      "AlignE 0.488->0.705\n(+0.217), GCN-Align 0.405->0.640 (+0.235), "
      "Dual-AMN 0.670->0.797 (+0.127).\n"
      "Expected shape: positive delta everywhere; Dual-AMN smallest gain.\n");
  return 0;
}
