// Alignment auditing: batch explanation of a whole EA result set.
//
// This is the paper's user-facing motivation operationalized —
// "EA explanations can act as background knowledge to assist users in
// judging the reliability of EA results" (Section I). AuditAlignment
// explains every pair of an alignment, scores it with the ADG confidence,
// flags the suspect classes (no structural support / low confidence /
// relation-alignment conflicts), and returns the entries worst-first so a
// human reviewer starts where review effort pays most.
//
// VerbalizeExplanation renders one explanation + ADG as short English
// sentences for the review UI / CLI.

#ifndef EXEA_EXPLAIN_AUDIT_H_
#define EXEA_EXPLAIN_AUDIT_H_

#include <string>
#include <vector>

#include "explain/exea.h"
#include "kg/alignment.h"

namespace exea::explain {

// Why an audited pair is considered suspect. Multiple flags can apply.
enum class AuditFlag {
  kNoMatches,        // empty explanation: nothing in the neighbourhoods matches
  kNoStrongSupport,  // matches exist but none are strongly influential
  kLowConfidence,    // confidence <= beta
  kTargetContested,  // the target is claimed by multiple sources
};

const char* AuditFlagName(AuditFlag flag);

struct AuditEntry {
  kg::EntityId source = kg::kInvalidEntity;
  kg::EntityId target = kg::kInvalidEntity;
  double similarity = 0.0;  // model similarity
  double confidence = 0.5;  // Eq. (9) ADG confidence
  size_t matches = 0;       // matched path pairs
  size_t strong_edges = 0;
  std::vector<AuditFlag> flags;

  bool suspect() const { return !flags.empty(); }
};

struct AuditReport {
  // All pairs, most suspect first (flag count desc, confidence asc).
  std::vector<AuditEntry> entries;
  size_t suspect_count = 0;
  double mean_confidence = 0.0;
  // Histogram of confidences in 10 equal bins over [0, 1].
  std::vector<size_t> confidence_histogram = std::vector<size_t>(10, 0);
};

// Audits every pair of `alignment` under the context (alignment + seeds).
AuditReport AuditAlignment(const ExeaExplainer& explainer,
                           const kg::AlignmentSet& alignment,
                           const kg::AlignmentSet& seeds);

// Short English rendering of an explanation and its ADG, e.g.
//   "zh/X was aligned with en/Y (similarity 0.91, confidence 0.86).
//    Strong evidence: their neighbours (zh/A, en/B) are aligned and
//    connected by the matching relations zh/r / en/r'. ..."
std::string VerbalizeExplanation(const Explanation& explanation,
                                 const Adg& adg,
                                 const kg::KnowledgeGraph& kg1,
                                 const kg::KnowledgeGraph& kg2);

}  // namespace exea::explain

#endif  // EXEA_EXPLAIN_AUDIT_H_
