// Simplified PARIS (Suchanek et al., VLDB 2012) — the probabilistic,
// functionality-driven EA system the paper builds its edge weights on
// (Section III-B cites PARIS for Eqs. (3)-(5)) and cites among the
// pre-embedding EA approaches. Implemented as a classical (non-embedding)
// baseline so the benches can contrast rule-based alignment with
// embedding-based alignment + ExEA repair.
//
// This is the alignment core of PARIS, simplified:
//   * seed pairs start at probability 1;
//   * relation-pair correspondence scores are estimated from currently
//     aligned endpoint pairs;
//   * entity-pair probabilities are recomputed from neighbour evidence
//     with the PARIS noisy-or over (inverse-)functionality:
//       P(e1≡e2) = 1 - prod over matching triple pairs of
//                  (1 - R(r1,r2) * fun * P(n1≡n2))
//   * candidates are pairs sharing at least one aligned neighbour;
//   * iterate to a fixed point, then decode mutually-best pairs above a
//     threshold.
// Schema subsumption, literal handling, and the full EM machinery of the
// original are out of scope.

#ifndef EXEA_CLASSICAL_PARIS_H_
#define EXEA_CLASSICAL_PARIS_H_

#include "data/dataset.h"
#include "kg/alignment.h"

namespace exea::classical {

struct ParisOptions {
  size_t iterations = 5;
  // Pairs below this probability are dropped between iterations.
  double prune_threshold = 0.05;
  // Decoded pairs must reach this probability.
  double accept_threshold = 0.3;
  // Cap on candidate pairs tracked per source entity (keeps the sparse
  // probability table bounded).
  size_t max_candidates_per_source = 8;
};

struct ParisResult {
  kg::AlignmentSet alignment;      // decoded test-entity alignment
  size_t iterations_run = 0;
  size_t peak_pair_count = 0;      // size of the probability table
};

// Runs simplified PARIS on `dataset`, aligning the test sources against
// the test targets with the seed alignment as the anchor.
ParisResult RunParis(const data::EaDataset& dataset,
                     const ParisOptions& options);

}  // namespace exea::classical

#endif  // EXEA_CLASSICAL_PARIS_H_
