// Adapter exposing the ExEA core through the shared baselines::Explainer
// interface so the fidelity harness can evaluate ExEA and the baselines
// uniformly. ExEA ignores the budget: it "does not require pre-selecting
// the explanation length" (Section V-B2) — the baselines are instead
// matched to *its* sparsity.
//
// The adapter lives in explain/ (not baselines/) because it depends on
// both the baseline interface and the ExEA core, and the declared module
// layering (tools/layers.txt) puts baselines below explain.

#ifndef EXEA_EXPLAIN_EXEA_EXPLAINER_ADAPTER_H_
#define EXEA_EXPLAIN_EXEA_EXPLAINER_ADAPTER_H_

#include "baselines/explainer.h"
#include "explain/exea.h"
#include "explain/matcher.h"

namespace exea::explain {

class ExeaAdapter : public baselines::Explainer {
 public:
  // Borrows both; `context` must remain valid while the adapter is used.
  ExeaAdapter(const ExeaExplainer* explainer,
              const AlignmentContext* context)
      : explainer_(explainer), context_(context) {}

  std::string name() const override { return "ExEA"; }

  baselines::ExplainerResult Explain(
      kg::EntityId e1, kg::EntityId e2,
      const std::vector<kg::Triple>& candidates1,
      const std::vector<kg::Triple>& candidates2, size_t budget) override;

 private:
  const ExeaExplainer* explainer_;
  const AlignmentContext* context_;
};

}  // namespace exea::explain

#endif  // EXEA_EXPLAIN_EXEA_EXPLAINER_ADAPTER_H_
