#include "util/tsv.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace exea {

StatusOr<std::vector<std::vector<std::string>>> ReadTsv(
    const std::string& path, size_t min_fields) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::vector<std::vector<std::string>> rows;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::vector<std::string> fields = Split(trimmed, '\t');
    if (fields.size() < min_fields) {
      std::ostringstream msg;
      msg << path << ":" << line_no << ": expected at least " << min_fields
          << " fields, got " << fields.size();
      return Status::InvalidArgument(msg.str());
    }
    rows.push_back(std::move(fields));
  }
  return rows;
}

Status WriteTsv(const std::string& path,
                const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << '\t';
      out << row[i];
    }
    out << '\n';
  }
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::Ok();
}

}  // namespace exea
