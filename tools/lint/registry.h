// The rule registry and the Diagnostic type shared by every pass. The
// registry drives --list-rules, --rules validation, family expansion, and
// the SARIF rule table. Keep it in sync with the passes.

#ifndef EXEA_TOOLS_LINT_REGISTRY_H_
#define EXEA_TOOLS_LINT_REGISTRY_H_

#include <cstddef>
#include <set>
#include <string>

namespace lint {

struct RuleInfo {
  const char* name;
  const char* family;
  const char* description;
};

// The registry drives --list-rules, --rules validation, and the family →
// rule expansion. Keep it in sync with the passes below.
inline constexpr RuleInfo kRules[] = {
    {"nodiscard-status", "status",
     "Status/StatusOr-returning declarations in headers carry [[nodiscard]]"},
    {"discarded-status", "status",
     "no bare statement discards a Status/StatusOr result"},
    {"raw-rng", "determinism",
     "no rand()/srand()/std::random_device outside src/util/rng"},
    {"unordered-output", "determinism",
     "no unordered-container iteration feeding serialized output"},
    {"raw-new-delete", "memory",
     "no naked new/delete; ownership lives in containers and smart pointers"},
    {"cout-logging", "logging",
     "no std::cout in src/; library code logs via EXEA_LOG"},
    {"layering", "layering",
     "src/<module> includes must point downward in tools/layers.txt"},
    {"include-cycle", "layering",
     "no cyclic quoted-include chains between repo files"},
    {"guarded-by", "lock-discipline",
     "members declared after a class's first mutex carry EXEA_GUARDED_BY"},
    {"lock-held", "lock-discipline",
     "annotated members are only touched under a visible lock of their "
     "mutex"},
    {"guarded-by-escape", "cross-tu-locks",
     "EXEA_GUARDED_BY members are never touched from un-annotated free "
     "functions in other TUs"},
    {"requires-held", "cross-tu-locks",
     "callers of EXEA_REQUIRES methods hold the named mutex, across TU "
     "boundaries"},
    {"loop-blocking", "event-loop",
     "functions reachable from a configured event-loop entry never call "
     "the configured blocking set"},
    {"fd-leak", "resource-lifecycle",
     "acquired fds/resources reach close() on every lexical path or are "
     "handed to an owner"},
    {"relaxed-atomic", "atomics",
     "memory_order_relaxed only in counter idioms (fetch_add/fetch_sub or "
     "obs/ metric storage)"},
    {"header-guard", "header-hygiene",
     "every header has an include guard or #pragma once"},
    {"header-using-namespace", "header-hygiene",
     "no `using namespace` at header scope"},
    {"obs-no-adhoc-metrics", "observability",
     "no raw timing/counter members in src/ outside obs/; telemetry lives "
     "in the exea::obs registry"},
    {"waiver-format", "style",
     "waiver comments use the canonical 'exea-lint: allow(rule)' spelling"},
    {"atoi-on-untrusted", "taint",
     "no atoi/stoi/strtol-family parsing anywhere; untrusted numbers go "
     "through the exea::util::Parse* checked API"},
    {"taint-unchecked-sink", "taint",
     "values from configured untrusted sources (request fields, file rows, "
     "argv) never reach allocation sizes, indexing, loop bounds, or "
     "deadline arithmetic without an EXEA_CHECK bound or checked parse"},
};

inline constexpr size_t kRuleCount = sizeof(kRules) / sizeof(kRules[0]);

struct Diagnostic {
  std::string file;
  size_t line = 0;
  size_t col = 1;
  std::string rule;
  std::string message;
  bool baselined = false;  // suppressed by the committed baseline

  bool operator<(const Diagnostic& other) const {
    if (file != other.file) return file < other.file;
    if (line != other.line) return line < other.line;
    if (col != other.col) return col < other.col;
    return rule < other.rule;
  }
};

const char* FamilyOf(const std::string& rule);

// Expands a --rules list (rule names and family names, comma-separated)
// into the enabled-rule set. Returns false on an unknown name.
bool ExpandRules(const std::string& spec, std::set<std::string>* enabled,
                 std::string* unknown);

}  // namespace lint

#endif  // EXEA_TOOLS_LINT_REGISTRY_H_
