// Tab-separated-value reading/writing, the on-disk format for KG triples
// and alignment files (matching the DBP15K/OpenEA distribution format).

#ifndef EXEA_UTIL_TSV_H_
#define EXEA_UTIL_TSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace exea {

// Reads a TSV file into rows of fields. Blank lines and lines starting with
// '#' are skipped. Fails if any row has fewer than `min_fields` fields.
[[nodiscard]] StatusOr<std::vector<std::vector<std::string>>> ReadTsv(
    const std::string& path, size_t min_fields);

// Writes rows as TSV. Overwrites `path`.
[[nodiscard]] Status WriteTsv(const std::string& path,
                const std::vector<std::vector<std::string>>& rows);

}  // namespace exea

#endif  // EXEA_UTIL_TSV_H_
