#include "la/linreg.h"

#include <cmath>

#include "util/logging.h"

namespace exea::la {

StatusOr<std::vector<double>> SolveSpd(std::vector<double> a,
                                       std::vector<double> b) {
  size_t n = b.size();
  if (a.size() != n * n) {
    return Status::InvalidArgument("SolveSpd: matrix/vector size mismatch");
  }
  // In-place Cholesky: A = L L^T with L in the lower triangle.
  for (size_t j = 0; j < n; ++j) {
    double diag = a[j * n + j];
    for (size_t k = 0; k < j; ++k) diag -= a[j * n + k] * a[j * n + k];
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::FailedPrecondition(
          "SolveSpd: matrix is not positive definite");
    }
    double ljj = std::sqrt(diag);
    a[j * n + j] = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double sum = a[i * n + j];
      for (size_t k = 0; k < j; ++k) sum -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = sum / ljj;
    }
  }
  // Forward substitution: L y = b.
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= a[i * n + k] * y[k];
    y[i] = sum / a[i * n + i];
  }
  // Back substitution: L^T x = y.
  std::vector<double> x(n);
  for (size_t ii = n; ii > 0; --ii) {
    size_t i = ii - 1;
    double sum = y[i];
    for (size_t k = i + 1; k < n; ++k) sum -= a[k * n + i] * x[k];
    x[i] = sum / a[i * n + i];
  }
  return x;
}

StatusOr<LinearModel> FitWeightedRidge(
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& targets,
    const std::vector<double>& sample_weight, const RidgeOptions& options) {
  size_t n = rows.size();
  if (n == 0) {
    return Status::InvalidArgument("FitWeightedRidge: no samples");
  }
  if (targets.size() != n) {
    return Status::InvalidArgument("FitWeightedRidge: targets size mismatch");
  }
  if (!sample_weight.empty() && sample_weight.size() != n) {
    return Status::InvalidArgument("FitWeightedRidge: weights size mismatch");
  }
  size_t d = rows[0].size();
  for (const auto& row : rows) {
    if (row.size() != d) {
      return Status::InvalidArgument("FitWeightedRidge: ragged feature rows");
    }
  }
  // Augment with a bias column when fitting an intercept.
  size_t dim = d + (options.fit_intercept ? 1 : 0);
  std::vector<double> xtx(dim * dim, 0.0);
  std::vector<double> xty(dim, 0.0);
  std::vector<double> feat(dim);
  for (size_t i = 0; i < n; ++i) {
    double w = sample_weight.empty() ? 1.0 : sample_weight[i];
    if (w <= 0.0) continue;
    for (size_t j = 0; j < d; ++j) feat[j] = rows[i][j];
    if (options.fit_intercept) feat[d] = 1.0;
    for (size_t a = 0; a < dim; ++a) {
      double wa = w * feat[a];
      for (size_t b = 0; b <= a; ++b) {
        xtx[a * dim + b] += wa * feat[b];
      }
      xty[a] += wa * targets[i];
    }
  }
  // Mirror the lower triangle and apply the ridge (not on the intercept).
  for (size_t a = 0; a < dim; ++a) {
    for (size_t b = a + 1; b < dim; ++b) xtx[a * dim + b] = xtx[b * dim + a];
  }
  for (size_t j = 0; j < d; ++j) xtx[j * dim + j] += options.l2;
  // A tiny diagonal shim keeps the intercept row SPD even with degenerate
  // weighting.
  if (options.fit_intercept) xtx[d * dim + d] += 1e-12;

  auto solved = SolveSpd(std::move(xtx), std::move(xty));
  if (!solved.ok()) return solved.status();
  LinearModel model;
  model.weights.assign(solved->begin(), solved->begin() + d);
  model.intercept = options.fit_intercept ? (*solved)[d] : 0.0;
  return model;
}

double Predict(const LinearModel& model, const std::vector<double>& features) {
  EXEA_CHECK_EQ(model.weights.size(), features.size());
  double sum = model.intercept;
  for (size_t i = 0; i < features.size(); ++i) {
    sum += model.weights[i] * features[i];
  }
  return sum;
}

}  // namespace exea::la
