#include "emb/aligne.h"
#include "emb/dual_amn.h"
#include "emb/gcn_align.h"
#include "emb/model.h"
#include "emb/mtranse.h"
#include "util/logging.h"

namespace exea::emb {

std::unique_ptr<EAModel> MakeModel(ModelKind kind, const TrainConfig& config) {
  switch (kind) {
    case ModelKind::kMTransE:
      return std::make_unique<MTransE>(config);
    case ModelKind::kAlignE:
      return std::make_unique<AlignE>(config);
    case ModelKind::kGcnAlign:
      return std::make_unique<GcnAlign>(config);
    case ModelKind::kDualAmn:
      return std::make_unique<DualAmn>(config);
  }
  EXEA_LOG(Fatal) << "unknown model kind";
  return nullptr;
}

TrainConfig DefaultConfigFor(ModelKind kind) {
  TrainConfig config;
  switch (kind) {
    case ModelKind::kMTransE:
      config.epochs = 80;
      break;
    case ModelKind::kAlignE:
      config.epochs = 50;
      break;
    case ModelKind::kGcnAlign:
      config.epochs = 150;
      break;
    case ModelKind::kDualAmn:
      config.epochs = 60;
      config.dim = 48;
      config.negatives = 8;
      break;
  }
  return config;
}

std::unique_ptr<EAModel> MakeDefaultModel(ModelKind kind) {
  return MakeModel(kind, DefaultConfigFor(kind));
}

}  // namespace exea::emb
