# Empty compiler generated dependencies file for exea_la.
# This may be replaced when dependencies are built.
