
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/repair/conflicts.cc" "src/repair/CMakeFiles/exea_repair.dir/conflicts.cc.o" "gcc" "src/repair/CMakeFiles/exea_repair.dir/conflicts.cc.o.d"
  "/root/repo/src/repair/diff.cc" "src/repair/CMakeFiles/exea_repair.dir/diff.cc.o" "gcc" "src/repair/CMakeFiles/exea_repair.dir/diff.cc.o.d"
  "/root/repo/src/repair/low_confidence.cc" "src/repair/CMakeFiles/exea_repair.dir/low_confidence.cc.o" "gcc" "src/repair/CMakeFiles/exea_repair.dir/low_confidence.cc.o.d"
  "/root/repo/src/repair/neg_rules.cc" "src/repair/CMakeFiles/exea_repair.dir/neg_rules.cc.o" "gcc" "src/repair/CMakeFiles/exea_repair.dir/neg_rules.cc.o.d"
  "/root/repo/src/repair/one_to_many.cc" "src/repair/CMakeFiles/exea_repair.dir/one_to_many.cc.o" "gcc" "src/repair/CMakeFiles/exea_repair.dir/one_to_many.cc.o.d"
  "/root/repo/src/repair/pipeline.cc" "src/repair/CMakeFiles/exea_repair.dir/pipeline.cc.o" "gcc" "src/repair/CMakeFiles/exea_repair.dir/pipeline.cc.o.d"
  "/root/repo/src/repair/relation_alignment.cc" "src/repair/CMakeFiles/exea_repair.dir/relation_alignment.cc.o" "gcc" "src/repair/CMakeFiles/exea_repair.dir/relation_alignment.cc.o.d"
  "/root/repo/src/repair/seed_cleaning.cc" "src/repair/CMakeFiles/exea_repair.dir/seed_cleaning.cc.o" "gcc" "src/repair/CMakeFiles/exea_repair.dir/seed_cleaning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/explain/CMakeFiles/exea_explain.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/exea_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/emb/CMakeFiles/exea_emb.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/exea_data.dir/DependInfo.cmake"
  "/root/repo/build/src/kg/CMakeFiles/exea_kg.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/exea_la.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/exea_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
