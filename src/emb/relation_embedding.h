// Translation-based relation embedding estimation, Eq. (1) of the paper:
//
//   r = (1 / |T_r|) * sum over (s, r, o) in T_r of (e_s - e_o)
//
// Used when the underlying EA model does not learn relation embeddings
// itself (GCN-Align), and by the explanation core to obtain a uniform
// relation representation regardless of model family.

#ifndef EXEA_EMB_RELATION_EMBEDDING_H_
#define EXEA_EMB_RELATION_EMBEDDING_H_

#include "kg/graph.h"
#include "la/matrix.h"

namespace exea::emb {

// Computes one embedding row per relation of `graph` from the entity
// embeddings (rows indexed by entity id). Relations without triples get a
// zero row.
la::Matrix TranslationRelationEmbeddings(const kg::KnowledgeGraph& graph,
                                         const la::Matrix& entity_embeddings);

}  // namespace exea::emb

#endif  // EXEA_EMB_RELATION_EMBEDDING_H_
