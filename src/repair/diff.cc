#include "repair/diff.h"

#include "util/string_util.h"

namespace exea::repair {

double AlignmentDiff::EditPrecision() const {
  size_t edits = fixed + still_wrong + added_wrong;
  if (edits == 0) return 0.0;
  return static_cast<double>(fixed) / static_cast<double>(edits);
}

std::string AlignmentDiff::ToString() const {
  return StrFormat(
      "kept_correct=%zu kept_wrong=%zu fixed=%zu broken=%zu "
      "still_wrong=%zu added_wrong=%zu dropped_wrong=%zu "
      "edit_precision=%.3f",
      kept_correct, kept_wrong, fixed, broken, still_wrong, added_wrong,
      dropped_wrong, EditPrecision());
}

AlignmentDiff CompareAlignments(
    const kg::AlignmentSet& before, const kg::AlignmentSet& after,
    const std::unordered_map<kg::EntityId, kg::EntityId>& gold) {
  AlignmentDiff diff;
  for (const auto& [source, gold_target] : gold) {
    std::vector<kg::EntityId> before_targets = before.TargetsOf(source);
    std::vector<kg::EntityId> after_targets = after.TargetsOf(source);
    bool before_correct = false;
    for (kg::EntityId t : before_targets) before_correct |= t == gold_target;
    bool after_correct = false;
    for (kg::EntityId t : after_targets) after_correct |= t == gold_target;
    bool had_before = !before_targets.empty();
    bool has_after = !after_targets.empty();
    bool unchanged = before_targets == after_targets;

    if (unchanged) {
      if (!had_before) continue;  // never aligned: not an edit
      if (before_correct) {
        ++diff.kept_correct;
      } else {
        ++diff.kept_wrong;
      }
      continue;
    }
    if (after_correct && !before_correct) {
      ++diff.fixed;
    } else if (before_correct && !after_correct) {
      ++diff.broken;
    } else if (!before_correct && !after_correct) {
      if (!had_before && has_after) {
        ++diff.added_wrong;
      } else if (had_before && !has_after) {
        ++diff.dropped_wrong;
      } else {
        ++diff.still_wrong;
      }
    }
    // before_correct && after_correct with a changed *set* (e.g. extra
    // conflicting target removed) counts as kept_correct.
    if (before_correct && after_correct) ++diff.kept_correct;
  }
  return diff;
}

}  // namespace exea::repair
