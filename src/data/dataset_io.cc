#include "data/dataset_io.h"

#include <algorithm>
#include <filesystem>

#include "kg/kg_io.h"
#include "util/tsv.h"

namespace exea::data {
namespace {

Status SaveAttributes(const kg::AttributeStore& attrs,
                      const kg::KnowledgeGraph& graph,
                      const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(attrs.num_triples());
  for (const kg::AttributeTriple& t : attrs.triples()) {
    rows.push_back({graph.EntityName(t.entity),
                    attrs.AttributeName(t.attribute), t.value});
  }
  return WriteTsv(path, rows);
}

Status LoadAttributes(const std::string& path,
                      const kg::KnowledgeGraph& graph,
                      kg::AttributeStore& attrs) {
  auto rows = ReadTsv(path, 3);
  if (!rows.ok()) return rows.status();
  for (const auto& row : *rows) {
    kg::EntityId entity = graph.FindEntity(row[0]);
    if (entity == kg::kInvalidEntity) {
      return Status::NotFound("unknown entity in attribute file: " + row[0]);
    }
    attrs.AddTriple(entity, row[1], row[2]);
  }
  return Status::Ok();
}

}  // namespace

Status SaveDataset(const EaDataset& dataset, const std::string& dir) {
  if (dataset.attrs1.num_triples() > 0) {
    EXEA_RETURN_IF_ERROR(SaveAttributes(dataset.attrs1, dataset.kg1,
                                        dir + "/attr_triples_1.tsv"));
  }
  if (dataset.attrs2.num_triples() > 0) {
    EXEA_RETURN_IF_ERROR(SaveAttributes(dataset.attrs2, dataset.kg2,
                                        dir + "/attr_triples_2.tsv"));
  }
  EXEA_RETURN_IF_ERROR(
      kg::SaveTriples(dataset.kg1, dir + "/kg1_triples.tsv"));
  EXEA_RETURN_IF_ERROR(
      kg::SaveTriples(dataset.kg2, dir + "/kg2_triples.tsv"));
  EXEA_RETURN_IF_ERROR(kg::SaveAlignment(dataset.train, dataset.kg1,
                                         dataset.kg2,
                                         dir + "/train_links.tsv"));
  kg::AlignmentSet test;
  for (const kg::AlignedPair& pair : dataset.test) {
    test.Add(pair.source, pair.target);
  }
  return kg::SaveAlignment(test, dataset.kg1, dataset.kg2,
                           dir + "/test_links.tsv");
}

namespace {

// Shared loading path. When `dicts` is non-null the graphs are pre-interned
// from it (id-stable load) and triples must stay within the dictionaries.
StatusOr<EaDataset> LoadDatasetImpl(const std::string& dir,
                                    const std::string& name,
                                    const DatasetDictionaries* dicts) {
  EaDataset dataset;
  dataset.name = name;
  if (dicts != nullptr) {
    for (const std::string& entity : dicts->entities1) {
      dataset.kg1.AddEntity(entity);
    }
    for (const std::string& relation : dicts->relations1) {
      dataset.kg1.AddRelation(relation);
    }
    for (const std::string& entity : dicts->entities2) {
      dataset.kg2.AddEntity(entity);
    }
    for (const std::string& relation : dicts->relations2) {
      dataset.kg2.AddRelation(relation);
    }
  }
  EXEA_RETURN_IF_ERROR(
      kg::LoadTriplesInto(dir + "/kg1_triples.tsv", dataset.kg1));
  EXEA_RETURN_IF_ERROR(
      kg::LoadTriplesInto(dir + "/kg2_triples.tsv", dataset.kg2));
  if (dicts != nullptr &&
      (dataset.kg1.num_entities() != dicts->entities1.size() ||
       dataset.kg1.num_relations() != dicts->relations1.size() ||
       dataset.kg2.num_entities() != dicts->entities2.size() ||
       dataset.kg2.num_relations() != dicts->relations2.size())) {
    return Status::InvalidArgument(
        "triple files mention names absent from the saved dictionaries: " +
        dir);
  }

  auto train =
      kg::LoadAlignment(dir + "/train_links.tsv", dataset.kg1, dataset.kg2);
  if (!train.ok()) return train.status();
  dataset.train = std::move(*train);

  auto test =
      kg::LoadAlignment(dir + "/test_links.tsv", dataset.kg1, dataset.kg2);
  if (!test.ok()) return test.status();

  for (const kg::AlignedPair& pair : dataset.train.SortedPairs()) {
    dataset.gold[pair.source] = pair.target;
  }
  dataset.test = test->SortedPairs();
  for (const kg::AlignedPair& pair : dataset.test) {
    if (dataset.train.HasSource(pair.source)) {
      return Status::InvalidArgument(
          "entity appears in both train and test links: " +
          dataset.kg1.EntityName(pair.source));
    }
    dataset.gold[pair.source] = pair.target;
    dataset.test_gold[pair.source] = pair.target;
    dataset.test_sources.push_back(pair.source);
  }
  for (const auto& [path, graph, attrs] :
       {std::tuple<std::string, const kg::KnowledgeGraph*,
                   kg::AttributeStore*>{dir + "/attr_triples_1.tsv",
                                        &dataset.kg1, &dataset.attrs1},
        {dir + "/attr_triples_2.tsv", &dataset.kg2, &dataset.attrs2}}) {
    if (std::filesystem::exists(path)) {
      EXEA_RETURN_IF_ERROR(LoadAttributes(path, *graph, *attrs));
    }
  }
  ValidateDataset(dataset);
  return dataset;
}

}  // namespace

StatusOr<EaDataset> LoadDataset(const std::string& dir,
                                const std::string& name) {
  return LoadDatasetImpl(dir, name, nullptr);
}

StatusOr<EaDataset> LoadDataset(const std::string& dir,
                                const std::string& name,
                                const DatasetDictionaries& dicts) {
  return LoadDatasetImpl(dir, name, &dicts);
}

}  // namespace exea::data
