#include "util/counter.h"

namespace demo::util {

// The EXEA_REQUIRES contract lives on the declaration in the header; the
// definition inherits it through the include closure, so the unlocked
// ++count_ here is fine.
void Counter::BumpLocked() {
  ++count_;
}

}  // namespace demo::util
