# Empty compiler generated dependencies file for exea_llm.
# This may be replaced when dependencies are built.
