// The untrusted-input dataflow pass: a declarative taint model
// (tools/lint_taint.txt) naming the repo's sources, sanitizers and sinks,
// a config-independent per-file fact sweep (cacheable alongside the other
// FileSummary tables), and the cross-TU propagation that turns the facts
// into `taint-unchecked-sink` findings with full source→sink chains.

#ifndef EXEA_TOOLS_LINT_TAINT_H_
#define EXEA_TOOLS_LINT_TAINT_H_

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/analysis.h"
#include "lint/source.h"

namespace lint {

// How one configured source injects taint at its call sites.
struct SourceSpec {
  bool ret = false;            // the assigned result is tainted
  bool all_args = false;       // every argument identifier is tainted
  std::set<int> arg_indices;   // specific 0-based out-params are tainted
};

// The taint model. Grammar (whitespace-separated, '#' comments):
//
//   source <name> ret|args|arg <i>...
//                                calls of <name> yield untrusted data:
//                                `ret` taints the assigned variable,
//                                `args` every argument identifier, and
//                                `arg <i>...` only the listed 0-based
//                                arguments (reference out-params such as
//                                ReadLineBounded's line buffer)
//   tainted-param <fn> <param>   the named parameter of every definition
//                                whose qualified name ends with the
//                                ::-suffix <fn> starts tainted (CLI argv)
//   sanitizer <name> ...         calls of <name> kill taint on their
//                                result and argument identifiers — the
//                                checked util::Parse* API
//   barrier <name> ...           calls of <name> neither absorb nor
//                                return taint (error-Status factories:
//                                a tainted message string is a dead end,
//                                but the arguments stay tainted)
//   sink <name> <argidx|*> ...   a tainted identifier inside the given
//                                0-based argument (or any argument, '*')
//                                of a call of <name> is a finding
//
// Built in, not configured: EXEA_CHECK/EXEA_DCHECK assertions sanitize
// every identifier they mention; container indexing and loop bounds are
// always sinks.
struct TaintConfig {
  std::map<std::string, SourceSpec> sources;
  std::vector<std::pair<std::string, std::string>> tainted_params;
  std::set<std::string> sanitizers;
  std::set<std::string> barriers;
  std::map<std::string, std::set<int>> sinks;  // -1 = any argument
  std::string path;  // for diagnostics
  bool loaded = false;
};

// Parses `path` into `*config`. Returns false with `*error` set on a
// malformed line — a configuration error (exit 2), not a lint finding.
bool ParseTaint(const std::filesystem::path& path, TaintConfig* config,
                std::string* error);

// Collects the structural taint facts for one file into the summary:
// assignments with their right-hand identifiers, calls with per-argument
// identifier groups, structural sinks (indexing, loop bounds) and
// EXEA_CHECK guards. Deliberately config-independent — which names are
// sources or sinks is resolved by RunTaintPass — so a cached summary
// stays valid when tools/lint_taint.txt changes.
void CollectTaintFacts(const SourceFile& file, FileSummary* summary);

// The cross-TU propagation: seeds taint at configured sources and
// tainted parameters, propagates through assignments intra-procedurally
// and through parameter→argument binding across translation units, and
// reports every unsanitized flow into a sink. Waivers apply as usual.
std::vector<Diagnostic> RunTaintPass(const std::vector<FileAnalysis>& files,
                                     const TaintConfig& config);

}  // namespace lint

#endif  // EXEA_TOOLS_LINT_TAINT_H_
