// h-hop neighbourhood extraction and relation-path enumeration.
//
// These are the structural primitives behind explanation generation: the
// candidate triple set T_e (triples within h hops of an entity) and the
// relation paths p = (e, r1, e'_1, ..., rn, e'_n) between a central entity
// and its neighbours (paper Section III-A).

#ifndef EXEA_KG_NEIGHBORHOOD_H_
#define EXEA_KG_NEIGHBORHOOD_H_

#include <vector>

#include "kg/graph.h"

namespace exea::kg {

// One step of a relation path. `outgoing` records the direction of the
// underlying triple relative to the walk (true: (from, rel, to) exists;
// false: (to, rel, from) exists).
struct PathStep {
  RelationId rel = kInvalidRelation;
  bool outgoing = true;
  EntityId to = kInvalidEntity;
};

// A walk from `source` through one or more steps. Steps never revisit an
// entity, so length <= number of entities - 1.
struct RelationPath {
  EntityId source = kInvalidEntity;
  std::vector<PathStep> steps;

  size_t length() const { return steps.size(); }
  EntityId target() const { return steps.back().to; }

  // The underlying KG triples, oriented as stored in the graph.
  std::vector<Triple> Triples() const;
};

// All distinct triples with at least one endpoint within `hops - 1` of `e`
// (i.e. every triple reachable by a walk of at most `hops` edges starting
// at `e`). hops = 1 returns the triples incident to `e`.
std::vector<Triple> TriplesWithinHops(const KnowledgeGraph& graph, EntityId e,
                                      int hops);

// Caps protecting path enumeration on high-degree entities.
struct PathEnumerationOptions {
  int max_length = 2;          // maximum number of steps per path
  size_t max_paths = 512;      // global cap on returned paths
  size_t max_branch = 64;      // per-node fan-out cap during the walk
};

// Enumerates simple (non-revisiting) relation paths starting at `e`, in a
// deterministic order (adjacency insertion order, shorter paths first).
std::vector<RelationPath> EnumeratePaths(const KnowledgeGraph& graph,
                                         EntityId e,
                                         const PathEnumerationOptions& opts);

}  // namespace exea::kg

#endif  // EXEA_KG_NEIGHBORHOOD_H_
