#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "util/check.h"
#include "util/thread_pool.h"

namespace exea::util {
namespace {

size_t HardwareThreads() {
  size_t n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

// Guards the configured count and the lazily-built shared pool. The pool
// is held by shared_ptr so an in-flight loop keeps its pool alive across a
// concurrent SetThreadCount.
std::mutex g_pool_mu;
std::atomic<size_t> g_configured{0};  // 0 = hardware default
std::shared_ptr<ThreadPool> g_pool;
size_t g_pool_threads = 0;  // ThreadCount() the pool was built for

// Depth of ParallelFor frames on this thread; >0 means we are inside a
// loop body and must run nested loops inline to avoid pool deadlock.
thread_local int g_depth = 0;

// Returns the pool for `threads` executors (threads - 1 workers; the
// calling thread is the remaining executor), rebuilding it if the knob
// changed since the last loop.
std::shared_ptr<ThreadPool> AcquirePool(size_t threads) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool == nullptr || g_pool_threads != threads) {
    g_pool = std::make_shared<ThreadPool>(threads - 1);
    g_pool_threads = threads;
  }
  return g_pool;
}

}  // namespace

void SetThreadCount(size_t n) {
  std::shared_ptr<ThreadPool> retired;
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_configured = n;
  if (g_pool != nullptr && g_pool_threads != ThreadCount()) {
    retired = std::move(g_pool);  // joined outside the critical section
    g_pool = nullptr;
  }
}

size_t ThreadCount() {
  // Atomic (not g_pool_mu) so nested loop bodies running on pool workers
  // can read the knob while SetThreadCount holds the pool lock.
  size_t n = g_configured.load(std::memory_order_acquire);
  return n == 0 ? HardwareThreads() : n;
}

void ParallelForBlocks(size_t begin, size_t end, size_t grain,
                       const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  size_t count = end - begin;
  size_t num_blocks = (count + grain - 1) / grain;
  size_t threads = ThreadCount();
  // Partition postconditions the determinism guarantee rests on: the fixed
  // blocks cover [begin, end) exactly (no gap past the last block, last
  // block non-empty), so the work decomposition — and therefore every
  // floating-point reduction order — is a function of the range alone,
  // never of the thread count.
  EXEA_DCHECK_GE(begin + num_blocks * grain, end);
  EXEA_DCHECK_LT(begin + (num_blocks - 1) * grain, end);

  if (threads <= 1 || num_blocks <= 1 || g_depth > 0) {
    ++g_depth;
    for (size_t b = 0; b < num_blocks; ++b) {
      size_t s = begin + b * grain;
      fn(s, std::min(end, s + grain));
    }
    --g_depth;
    return;
  }

  struct BatchState {
    std::atomic<size_t> next_block{0};
    std::atomic<bool> abort{false};
    std::exception_ptr error;
    std::mutex mu;
    std::condition_variable done_cv;
    size_t active_runners = 0;
  };
  auto state = std::make_shared<BatchState>();

  auto run_blocks = [state, begin, end, grain, num_blocks, &fn] {
    ++g_depth;
    for (;;) {
      size_t b = state->next_block.fetch_add(1, std::memory_order_relaxed);
      if (b >= num_blocks || state->abort.load(std::memory_order_acquire)) {
        break;
      }
      size_t s = begin + b * grain;
      try {
        fn(s, std::min(end, s + grain));
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (state->error == nullptr) {
          state->error = std::current_exception();
        }
        state->abort.store(true, std::memory_order_release);
      }
    }
    --g_depth;
  };

  size_t helpers = std::min(threads, num_blocks) - 1;
  EXEA_DCHECK_GE(helpers, 1);  // threads > 1 and num_blocks > 1 held above
  std::shared_ptr<ThreadPool> pool = AcquirePool(threads);
  EXEA_CHECK(pool != nullptr);
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->active_runners = helpers;
  }
  for (size_t h = 0; h < helpers; ++h) {
    pool->Submit([state, run_blocks] {
      run_blocks();
      std::lock_guard<std::mutex> lock(state->mu);
      if (--state->active_runners == 0) state->done_cv.notify_all();
    });
  }
  run_blocks();  // the calling thread is an executor too
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait(lock, [&] { return state->active_runners == 0; });
  }
  if (state->error != nullptr) std::rethrow_exception(state->error);
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t)>& fn) {
  ParallelForBlocks(begin, end, grain, [&fn](size_t s, size_t e) {
    for (size_t i = s; i < e; ++i) fn(i);
  });
}

}  // namespace exea::util
