file(REMOVE_RECURSE
  "libexea_kg.a"
)
