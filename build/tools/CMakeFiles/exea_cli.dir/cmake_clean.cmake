file(REMOVE_RECURSE
  "CMakeFiles/exea_cli.dir/exea_cli.cc.o"
  "CMakeFiles/exea_cli.dir/exea_cli.cc.o.d"
  "exea_cli"
  "exea_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exea_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
