#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/status.h"

namespace exea {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_release);
}

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_acquire));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= MinLogLevel() || level_ == LogLevel::kFatal) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace exea
