// Named benchmark datasets mirroring the paper's evaluation suite:
// three cross-lingual DBP15K-style datasets (ZH-EN, JA-EN, FR-EN) and two
// heterogeneous OpenEA-style datasets (DBP-WD, DBP-YAGO).
//
// Per-dataset characteristics follow the paper's descriptions:
//   * FR-EN has a noticeably higher triple density than the others.
//   * JA-EN is the hardest cross-lingual dataset (more incompleteness).
//   * DBP-WD and DBP-YAGO have heterogeneous schemata (relation
//     splits/merges and a larger semantic gap), DBP-YAGO more so.
//
// Sizes are controlled by a Scale knob so unit tests run in milliseconds
// and benches in seconds (see DESIGN.md §1 on the scaling substitution).

#ifndef EXEA_DATA_BENCHMARKS_H_
#define EXEA_DATA_BENCHMARKS_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/synthetic.h"

namespace exea::data {

enum class Benchmark {
  kZhEn,
  kJaEn,
  kFrEn,
  kDbpWd,
  kDbpYago,
};

// All five benchmarks in paper order.
const std::vector<Benchmark>& AllBenchmarks();

// Display name ("ZH-EN", ...).
std::string BenchmarkName(Benchmark benchmark);

// Parses a display name; fatal on unknown names (bench CLI use).
Benchmark BenchmarkFromName(const std::string& name);

enum class Scale {
  kTiny,    // unit tests: ~160 entities/KG
  kSmall,   // default bench scale: ~400 entities/KG
  kMedium,  // larger runs: ~1000 entities/KG
};

// Parses "tiny"/"small"/"medium"; fatal otherwise.
Scale ScaleFromName(const std::string& name);

// Reads the EXEA_BENCH_SCALE environment variable (default small).
Scale ScaleFromEnv();

// Generator options for a benchmark at a scale (exposed so tests can
// inspect/override them).
SyntheticOptions BenchmarkOptions(Benchmark benchmark, Scale scale);

// Generates the dataset. Deterministic per (benchmark, scale).
EaDataset MakeBenchmark(Benchmark benchmark, Scale scale);

}  // namespace exea::data

#endif  // EXEA_DATA_BENCHMARKS_H_
