#!/usr/bin/env bash
# The repo's verification gate, runnable locally or in CI:
#
#   1. tier-1: full configure + build + ctest (the acceptance bar every
#      change must keep green), and
#   2. a ThreadSanitizer pass over the concurrency-sensitive suites — the
#      worker-pool kernels (parallel_test) and the serving engine's shared
#      LRU cache / request loop (serve_test).
#
# Usage: ci/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

echo "=== tier 1: build + tests ==="
cmake -B build -S .
cmake --build build -j"${JOBS}"
(cd build && ctest --output-on-failure -j"${JOBS}")

echo "=== tsan: parallel_test + serve_test ==="
cmake -B build-tsan -S . -DEXEA_SANITIZE=thread
cmake --build build-tsan -j"${JOBS}" --target parallel_test serve_test
./build-tsan/tests/parallel_test
./build-tsan/tests/serve_test

echo "=== all checks passed ==="
