// Seeded-violation fixture for lint_test (see violations.h).
#include "violations.h"

namespace demo {

void Caller() {
  DoThing();  // bare call → discarded-status

  int x = std::rand();  // → raw-rng
  std::random_device entropy;  // → raw-rng

  int* p = new int(x);  // → raw-new-delete
  delete p;  // → raw-new-delete

  std::cout << x;  // under src/ → cout-logging
}

}  // namespace demo
