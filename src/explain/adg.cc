#include "explain/adg.h"

#include <algorithm>
#include <map>
#include <utility>

#include "util/logging.h"

namespace exea::explain {

const char* EdgeInfluenceName(EdgeInfluence influence) {
  switch (influence) {
    case EdgeInfluence::kStrong:
      return "strong";
    case EdgeInfluence::kModerate:
      return "moderate";
    case EdgeInfluence::kWeak:
      return "weak";
  }
  return "?";
}

bool Adg::HasStrongEdge() const {
  for (const AdgNode& node : neighbors) {
    for (const AdgEdge& edge : node.edges) {
      if (edge.influence == EdgeInfluence::kStrong) return true;
    }
  }
  return false;
}

double PathWeight(const kg::RelationPath& path,
                  const kg::RelationFunctionality& func) {
  double weight = 1.0;
  for (const kg::PathStep& step : path.steps) {
    // Outgoing step (origin, r, next): the origin is the head, so the
    // step's determinism is the inverse functionality (Eq. (3)); incoming
    // steps use the functionality (Eq. (4)).
    weight *= step.outgoing ? func.InverseFunc(step.rel) : func.Func(step.rel);
  }
  return weight;
}

namespace {

// Classifies a matched path pair by its path lengths.
EdgeInfluence Classify(const MatchedPathPair& match) {
  bool one1 = match.p1.length() == 1;
  bool one2 = match.p2.length() == 1;
  if (one1 && one2) return EdgeInfluence::kStrong;
  if (one1 || one2) return EdgeInfluence::kModerate;
  return EdgeInfluence::kWeak;
}

double EdgeWeight(const MatchedPathPair& match, EdgeInfluence influence,
                  const kg::RelationFunctionality& func1,
                  const kg::RelationFunctionality& func2,
                  const ExeaConfig& config) {
  switch (influence) {
    case EdgeInfluence::kStrong: {
      // Eq. (5): min of the two direct path weights.
      return std::min(PathWeight(match.p1, func1),
                      PathWeight(match.p2, func2));
    }
    case EdgeInfluence::kModerate: {
      // Eq. (7): alpha * min(direct, long-product).
      return config.alpha * std::min(PathWeight(match.p1, func1),
                                     PathWeight(match.p2, func2));
    }
    case EdgeInfluence::kWeak:
      return config.weak_weight;
  }
  return 0.0;
}

}  // namespace

void RecomputeConfidence(Adg& adg, const ExeaConfig& config) {
  adg.strong_sum = 0.0;
  adg.moderate_sum = 0.0;
  adg.weak_sum = 0.0;
  for (const AdgNode& node : adg.neighbors) {
    double strong = 0.0;
    double moderate = 0.0;
    double weak = 0.0;
    for (const AdgEdge& edge : node.edges) {
      switch (edge.influence) {
        case EdgeInfluence::kStrong:
          strong += edge.weight;
          break;
        case EdgeInfluence::kModerate:
          moderate += edge.weight;
          break;
        case EdgeInfluence::kWeak:
          weak += edge.weight;
          break;
      }
    }
    adg.strong_sum += strong * node.influence;
    adg.moderate_sum += moderate * node.influence;
    adg.weak_sum += weak * node.influence;
  }
  // Eq. (9): adaptive aggregation.
  double aggregate = adg.strong_sum;
  if (adg.strong_sum < config.theta) {
    aggregate += adg.moderate_sum;
    if (adg.moderate_sum < config.gamma) {
      aggregate += adg.weak_sum;
    }
  }
  adg.confidence = SigmoidForConfig(aggregate);
}

void RemoveNeighbor(Adg& adg, size_t index, const ExeaConfig& config) {
  EXEA_CHECK_LT(index, adg.neighbors.size());
  adg.neighbors.erase(adg.neighbors.begin() +
                      static_cast<ptrdiff_t>(index));
  RecomputeConfidence(adg, config);
}

Adg BuildAdg(const Explanation& explanation,
             const kg::RelationFunctionality& func1,
             const kg::RelationFunctionality& func2,
             const PairSimilarityFn& similarity, const ExeaConfig& config) {
  Adg adg;
  adg.e1 = explanation.e1;
  adg.e2 = explanation.e2;
  adg.central_similarity = similarity(explanation.e1, explanation.e2);

  // Merge matched path pairs by their (terminal1, terminal2) neighbour
  // pair; each pair of terminals becomes one neighbour node.
  std::map<std::pair<kg::EntityId, kg::EntityId>, size_t> node_index;
  for (size_t m = 0; m < explanation.matches.size(); ++m) {
    const MatchedPathPair& match = explanation.matches[m];
    std::pair<kg::EntityId, kg::EntityId> terminals{match.p1.target(),
                                                    match.p2.target()};
    auto [it, inserted] = node_index.emplace(terminals, adg.neighbors.size());
    if (inserted) {
      AdgNode node;
      node.e1 = terminals.first;
      node.e2 = terminals.second;
      node.influence = similarity(terminals.first, terminals.second);
      adg.neighbors.push_back(std::move(node));
    }
    EdgeInfluence influence = Classify(match);
    AdgEdge edge;
    edge.influence = influence;
    edge.weight = EdgeWeight(match, influence, func1, func2, config);
    edge.match_index = m;
    adg.neighbors[it->second].edges.push_back(edge);
  }

  RecomputeConfidence(adg, config);
  return adg;
}

}  // namespace exea::explain
