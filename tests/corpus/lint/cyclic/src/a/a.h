// Minimal scannable file so the cyclic-layers fixture has an input; the
// run must fail on the layers file before any per-file rule matters.
#ifndef EXEA_TESTS_CORPUS_LINT_CYCLIC_SRC_A_A_H_
#define EXEA_TESTS_CORPUS_LINT_CYCLIC_SRC_A_A_H_

namespace demo {
struct A {};
}  // namespace demo

#endif  // EXEA_TESTS_CORPUS_LINT_CYCLIC_SRC_A_A_H_
