// Bidirectional string <-> dense-id interning for entity and relation
// names.

#ifndef EXEA_KG_DICTIONARY_H_
#define EXEA_KG_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace exea::kg {

class Dictionary {
 public:
  Dictionary() = default;

  // Returns the id of `name`, interning it if new. Ids are dense and
  // assigned in insertion order.
  uint32_t Intern(std::string_view name);

  // Returns the id of `name` or UINT32_MAX if unknown.
  uint32_t Lookup(std::string_view name) const;

  // The name for `id`. `id` must be valid.
  const std::string& Name(uint32_t id) const;

  bool Contains(std::string_view name) const {
    return Lookup(name) != UINT32_MAX;
  }

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> index_;
};

}  // namespace exea::kg

#endif  // EXEA_KG_DICTIONARY_H_
