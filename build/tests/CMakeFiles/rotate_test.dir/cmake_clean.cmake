file(REMOVE_RECURSE
  "CMakeFiles/rotate_test.dir/rotate_test.cc.o"
  "CMakeFiles/rotate_test.dir/rotate_test.cc.o.d"
  "rotate_test"
  "rotate_test.pdb"
  "rotate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rotate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
