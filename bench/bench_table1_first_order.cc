// Table I: explanation generation with first-order candidate triples —
// fidelity and sparsity of EALime, EAShapley, Anchor, LORE, and ExEA for
// four EA models on five datasets.
//
// Paper shape to reproduce: ExEA attains the highest fidelity everywhere
// at comparable sparsity; EAShapley is the second best; the perturbation
// baselines collapse hardest on GCN-Align (which gives them no relation
// signal to perturb against).

#include <cstdio>

#include "bench/common.h"
#include "util/logging.h"

int main() {
  using namespace exea;
  SetMinLogLevel(LogLevel::kError);
  bench::PrintBanner(
      "Table I — explanation generation, first-order candidates",
      "ExEA paper Table I (Section V-B3)");

  data::Scale scale = data::ScaleFromEnv();
  bench::ExplanationBenchOptions options;
  options.hops = 1;
  options.num_samples = bench::SamplesFromEnv();

  bench::Table table({"model", "dataset", "method", "fidelity", "sparsity"});
  for (emb::ModelKind kind : bench::AllModels()) {
    for (data::Benchmark benchmark : data::AllBenchmarks()) {
      data::EaDataset dataset = data::MakeBenchmark(benchmark, scale);
      std::unique_ptr<emb::EAModel> model = bench::TrainModel(kind, dataset);
      std::vector<bench::MethodResult> results =
          bench::RunExplanationBench(dataset, *model, options);
      for (const bench::MethodResult& row : results) {
        table.AddRow({model->name(), dataset.name, row.method,
                      bench::Table::Fmt(row.fidelity),
                      bench::Table::Fmt(row.sparsity)});
      }
      table.AddSeparator();
    }
  }
  table.Print();

  std::printf(
      "\nPaper reference (Table I, ZH-EN column, fidelity):\n"
      "  MTransE  : EALime 0.676  EAShapley 0.715  Anchor 0.676  "
      "LORE 0.687  ExEA 0.874\n"
      "  Dual-AMN : EALime 0.643  EAShapley 0.824  Anchor 0.805  "
      "LORE 0.808  ExEA 0.959\n"
      "Expected shape: ExEA best on every (model, dataset) cell.\n");
  return 0;
}
