#include "kg/dictionary.h"

#include "util/logging.h"

namespace exea::kg {

uint32_t Dictionary::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

uint32_t Dictionary::Lookup(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? UINT32_MAX : it->second;
}

const std::string& Dictionary::Name(uint32_t id) const {
  EXEA_CHECK_LT(id, names_.size());
  return names_[id];
}

}  // namespace exea::kg
