// Sparse row-major matrix (CSR-like) used for normalized adjacency in the
// GCN-family trainers. Supports Y = A * X and Y = A^T * X against dense
// matrices.

#ifndef EXEA_LA_SPARSE_H_
#define EXEA_LA_SPARSE_H_

#include <cstdint>
#include <vector>

#include "la/matrix.h"

namespace exea::la {

struct SparseEntry {
  uint32_t col = 0;
  float value = 0.0f;
};

class SparseMatrix {
 public:
  SparseMatrix(size_t rows, size_t cols) : rows_(rows), cols_(cols) {
    entries_.resize(rows);
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  // Accumulates into (r, c); duplicate adds are summed at Finalize().
  void Add(size_t r, size_t c, float value);

  // Merges duplicate entries per row (sums values) and sorts by column.
  void Finalize();

  // Y = this * X. X must have `cols()` rows.
  Matrix Multiply(const Matrix& x) const;

  // Y = this^T * X. X must have `rows()` rows.
  Matrix MultiplyTransposed(const Matrix& x) const;

  // Number of stored entries.
  size_t nnz() const;

  const std::vector<SparseEntry>& Row(size_t r) const { return entries_[r]; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<std::vector<SparseEntry>> entries_;
};

}  // namespace exea::la

#endif  // EXEA_LA_SPARSE_H_
