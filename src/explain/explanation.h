// The explanation data model: a semantic matching subgraph for one EA pair
// (paper Section III-A). An explanation is a set of mutually-best-matched
// relation-path pairs between the two entities' neighbourhoods; its triples
// are the union of the matched paths' triples on each side.

#ifndef EXEA_EXPLAIN_EXPLANATION_H_
#define EXEA_EXPLAIN_EXPLANATION_H_

#include <vector>

#include "kg/neighborhood.h"
#include "kg/types.h"

namespace exea::explain {

// One mutually-best pair of relation paths. The endpoints of p1/p2 are an
// aligned neighbour pair (matched neighbour entities).
struct MatchedPathPair {
  kg::RelationPath p1;  // path in the source KG, from e1
  kg::RelationPath p2;  // path in the target KG, from e2
  float similarity = 0.0f;  // cosine of the Eq. (2) path embeddings
};

struct Explanation {
  kg::EntityId e1 = kg::kInvalidEntity;  // source entity
  kg::EntityId e2 = kg::kInvalidEntity;  // target entity

  std::vector<MatchedPathPair> matches;

  // Union of the matched paths' triples, per KG (deduplicated, sorted).
  std::vector<kg::Triple> triples1;
  std::vector<kg::Triple> triples2;

  // The candidate triples T_(e1,e2) the explanation was selected from.
  std::vector<kg::Triple> candidates1;
  std::vector<kg::Triple> candidates2;

  size_t CandidateCount() const {
    return candidates1.size() + candidates2.size();
  }
  size_t TripleCount() const { return triples1.size() + triples2.size(); }
  bool empty() const { return matches.empty(); }
};

}  // namespace exea::explain

#endif  // EXEA_EXPLAIN_EXPLANATION_H_
