// The serving request loop: newline-delimited JSON, one request per line,
// one response line per request, over stdin/stdout (exea_cli serve) or an
// optional localhost TCP listener.
//
// Requests (flat JSON objects, string values):
//   {"op":"align","entity":"zh/Foo"}
//   {"op":"align","entities":"zh/Foo,zh/Bar"}        (batched)
//   {"op":"explain","source":"zh/Foo","target":"en/Bar"}
//   {"op":"neighbors","entity":"zh/Foo","side":"1"}
//   {"op":"repair_status","source":"zh/Foo","target":"en/Bar"}
//   {"op":"stats"}
//   {"op":"shutdown"}
//
// Responses: {"ok":true,"op":...,...} on success,
// {"ok":false,"error":"...","code":"NOT_FOUND"} on failure. A malformed or
// unknown request produces an error response — never a crash, never loop
// termination. Every request is subject to the configured deadline; an
// over-deadline request answers with code DEADLINE_EXCEEDED.
//
// The server keeps monotonic counters (requests, per-op counts, errors,
// cache hits/misses via the engine, p50/p99 latency) which it reports on
// {"op":"stats"} and dumps to stderr at shutdown.

#ifndef EXEA_SERVE_SERVER_H_
#define EXEA_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "serve/engine.h"
#include "util/check.h"
#include "util/status.h"

namespace exea::serve {

// Parses one flat JSON object ({"key":"value"|number|true|false|null,...})
// into a key → value map. Non-string scalars are returned as their literal
// text. Nested objects/arrays are rejected (the protocol is flat by
// design). Exposed for tests.
[[nodiscard]] StatusOr<std::map<std::string, std::string>> ParseFlatJson(
    const std::string& line);

// Escapes a string for embedding in a JSON double-quoted literal.
std::string JsonEscape(const std::string& raw);

struct ServerOptions {
  double deadline_seconds = 5.0;  // per request; <= 0 disables

  // Hard cap on one request line. Longer lines are answered with an
  // OUT_OF_RANGE error and discarded without ever being buffered
  // whole, so a hostile peer cannot balloon the server's memory by
  // withholding its newline. The loop then continues at the next line.
  size_t max_request_bytes = 1 << 20;  // 1 MiB
};

struct ServerCounters {
  uint64_t requests = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;     // well-formed requests that returned an error
  uint64_t malformed = 0;  // lines that did not parse as a request
  uint64_t oversized = 0;  // lines rejected by max_request_bytes
  uint64_t deadline_exceeded = 0;
  std::map<std::string, uint64_t> per_op;

  // Latency percentiles over all served requests (milliseconds). Samples
  // are capped; once the cap is hit new samples stop being recorded (the
  // counters above stay exact).
  double LatencyP50Ms() const;
  double LatencyP99Ms() const;

  std::vector<double> latencies_ms;
};

class Server {
 public:
  // Borrows `engine`, which must outlive the server.
  Server(QueryEngine* engine, const ServerOptions& options);

  // Handles one request line, returns the response line (no trailing
  // newline) and updates the counters. Never throws; malformed input
  // yields an {"ok":false,...} response. Public for in-process tests.
  // Thread-safe: the engine is immutable apart from its internally locked
  // cache, and the counters are guarded by counters_mu_, so concurrent
  // callers only serialize on the brief counter updates.
  std::string HandleLine(const std::string& line);

  // Reads requests from `in` until EOF or {"op":"shutdown"}; writes one
  // response line per request to `out` (flushed per line, so a pipe peer
  // can converse synchronously). Dumps the counters to stderr on exit.
  void Serve(std::istream& in, std::ostream& out);

  // Listens on 127.0.0.1:`port`, serving one client connection at a time
  // with the same protocol, until a client sends {"op":"shutdown"}.
  [[nodiscard]] Status ServeTcp(int port);

  // A snapshot of the counters taken under counters_mu_.
  ServerCounters counters() const;

  // The counters + engine cache stats as a JSON object (the "stats"
  // response payload).
  std::string StatsJson() const;

  // True once a {"op":"shutdown"} request has been handled.
  bool shutdown_requested() const { return shutdown_requested_.load(); }

 private:
  // Counts and renders the rejection of a line longer than
  // options_.max_request_bytes.
  std::string RejectOversized(size_t observed_bytes);

  QueryEngine* engine_;
  ServerOptions options_;
  std::atomic<bool> shutdown_requested_{false};

  // counters_mu_ protects everything declared after it (the class
  // convention the lock-discipline lint pass enforces).
  mutable std::mutex counters_mu_;
  ServerCounters counters_ EXEA_GUARDED_BY(counters_mu_);
};

}  // namespace exea::serve

#endif  // EXEA_SERVE_SERVER_H_
