// Core identifier and triple types for knowledge graphs.
//
// Each KnowledgeGraph owns its own dense id spaces for entities and
// relations. Structures that span two KGs (alignments, cross-KG triples)
// always carry the KG side explicitly.

#ifndef EXEA_KG_TYPES_H_
#define EXEA_KG_TYPES_H_

#include <cstdint>
#include <functional>

namespace exea::kg {

using EntityId = uint32_t;
using RelationId = uint32_t;

inline constexpr EntityId kInvalidEntity = UINT32_MAX;
inline constexpr RelationId kInvalidRelation = UINT32_MAX;

// A relation triple (subject, relation, object).
struct Triple {
  EntityId head = kInvalidEntity;
  RelationId rel = kInvalidRelation;
  EntityId tail = kInvalidEntity;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.head == b.head && a.rel == b.rel && a.tail == b.tail;
  }
  friend bool operator<(const Triple& a, const Triple& b) {
    if (a.head != b.head) return a.head < b.head;
    if (a.rel != b.rel) return a.rel < b.rel;
    return a.tail < b.tail;
  }
};

struct TripleHash {
  size_t operator()(const Triple& t) const {
    // 64-bit mix of the three 32-bit fields.
    uint64_t h = t.head;
    h = h * 0x9E3779B97F4A7C15ULL + t.rel;
    h = (h ^ (h >> 29)) * 0xBF58476D1CE4E5B9ULL + t.tail;
    h = (h ^ (h >> 32));
    return static_cast<size_t>(h);
  }
};

// One step attached to an entity: the relation, the entity on the other
// end, and whether the stored triple points outward (entity is the head).
struct AdjacentEdge {
  RelationId rel = kInvalidRelation;
  EntityId neighbor = kInvalidEntity;
  bool outgoing = true;  // true: (e, rel, neighbor); false: (neighbor, rel, e)
  uint32_t triple_index = 0;  // index into KnowledgeGraph::triples()
};

// Which of the two KGs an id belongs to.
enum class KgSide : uint8_t { kSource = 0, kTarget = 1 };

inline KgSide OtherSide(KgSide side) {
  return side == KgSide::kSource ? KgSide::kTarget : KgSide::kSource;
}

}  // namespace exea::kg

#endif  // EXEA_KG_TYPES_H_
