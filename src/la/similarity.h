// Embedding-similarity utilities: pairwise cosine similarity matrices and
// ranked top-k retrieval. These back the alignment-inference phase and the
// ranked candidate matrix M consumed by the repair algorithms.

#ifndef EXEA_LA_SIMILARITY_H_
#define EXEA_LA_SIMILARITY_H_

#include <cstdint>
#include <vector>

#include "la/matrix.h"

namespace exea::la {

// Full pairwise cosine similarity: out(i, j) = cos(a.Row(i), b.Row(j)).
// Row dimensions must match.
Matrix CosineSimilarityMatrix(const Matrix& a, const Matrix& b);

// One candidate with its similarity score.
struct ScoredIndex {
  uint32_t index = 0;
  float score = 0.0f;
};

// The canonical candidate ordering shared by every ranked entry point:
// descending score, ties broken by ascending index. Pinned by la_test so
// SIMD reduction reordering cannot silently permute equal-score
// neighbors.
bool ScoredLess(const ScoredIndex& a, const ScoredIndex& b);

// Per-row inverse L2 norms of `m`; rows with norm <= 1e-12 get 0 so
// their similarity collapses to 0 instead of NaN. Computed with the
// active SIMD kernels (see la/simd.h).
std::vector<float> RowInverseNorms(const Matrix& m);

// Top-k table rows for one query given precomputed table inverse norms
// (inv_table.size() must equal table.rows()). Result is sorted by
// ScoredLess and has min(k, table.rows()) entries. Shared by
// TopKByCosine* and the SimilarityIndex implementations.
std::vector<ScoredIndex> TopKWithNorms(const float* query, const Matrix& table,
                                       const std::vector<float>& inv_table,
                                       size_t k);

// For a query vector, returns the k highest-cosine rows of `table`,
// sorted by descending score (ties broken by ascending index for
// determinism).
std::vector<ScoredIndex> TopKByCosine(const float* query, const Matrix& table,
                                      size_t k);

// For every row of `queries`, the top-k rows of `table` by cosine.
// Result[i] is sorted descending.
std::vector<std::vector<ScoredIndex>> TopKByCosineAll(const Matrix& queries,
                                                      const Matrix& table,
                                                      size_t k);

// Returns argmax_j cos(query, table.Row(j)), or -1 if the table is empty.
int64_t ArgMaxCosine(const float* query, const Matrix& table);

}  // namespace exea::la

#endif  // EXEA_LA_SIMILARITY_H_
