// Seeded obs-no-adhoc-metrics fixture: raw telemetry members in a src/
// header outside obs/. Each flagged line re-creates a pattern the obs
// subsystem replaced (request counters, cache hit tallies, latency sample
// buffers, frozen percentile fields).

#ifndef EXEA_TESTS_CORPUS_LINT_BAD_SRC_SERVE_ADHOC_METRICS_H_
#define EXEA_TESTS_CORPUS_LINT_BAD_SRC_SERVE_ADHOC_METRICS_H_

#include <cstdint>
#include <vector>

class AdhocServerStats {
 public:
  double latency_p50_ms = 0.0;   // → obs-no-adhoc-metrics
  double latency_p99_ms = 0.0;   // → obs-no-adhoc-metrics

 private:
  uint64_t request_counter_ = 0;         // → obs-no-adhoc-metrics
  uint64_t cache_hits_ = 0;              // → obs-no-adhoc-metrics
  uint64_t cache_misses_ = 0;            // → obs-no-adhoc-metrics
  std::vector<double> latencies_ms_;     // → obs-no-adhoc-metrics
};

#endif  // EXEA_TESTS_CORPUS_LINT_BAD_SRC_SERVE_ADHOC_METRICS_H_
