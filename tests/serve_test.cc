// End-to-end tests for the serving subsystem: snapshot bundles, the query
// engine, and the NDJSON request loop. The central guarantee pinned here is
// that a served answer is byte-identical to the offline pipeline's answer
// for the same query — the snapshot round-trip must preserve the id spaces,
// the embeddings, and the alignment exactly.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "emb/model.h"
#include "eval/inference.h"
#include "explain/exea.h"
#include "explain/export.h"
#include "net/socket_io.h"
#include "obs/metrics.h"
#include "repair/pipeline.h"
#include "la/similarity_index.h"
#include "serve/async_server.h"
#include "serve/coalescer.h"
#include "serve/engine.h"
#include "serve/explain_cache.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "util/string_util.h"

namespace exea {
namespace {

// The frozen offline pipeline the whole file serves from: tiny dataset,
// MTransE (relation embeddings exercise the full bundle surface), greedy
// inference, full repair. Built once — training dominates the suite's
// runtime.
struct OfflinePipeline {
  data::EaDataset dataset;
  std::unique_ptr<emb::EAModel> model;
  kg::AlignmentSet aligned;
  kg::AlignmentSet repaired;

  explicit OfflinePipeline(size_t epochs = 30)
      : dataset(data::MakeBenchmark(data::Benchmark::kZhEn,
                                    data::Scale::kTiny)) {
    emb::TrainConfig config = emb::DefaultConfigFor(emb::ModelKind::kMTransE);
    config.epochs = epochs;
    model = emb::MakeModel(emb::ModelKind::kMTransE, config);
    model->Train(dataset);
    eval::RankedSimilarity ranked = eval::RankTestEntities(*model, dataset);
    aligned = eval::GreedyAlign(ranked);
    explain::ExeaExplainer explainer(dataset, *model, explain::ExeaConfig{});
    repair::RepairPipeline pipeline(explainer, repair::RepairOptions{});
    repaired = pipeline.Run(aligned, ranked).repaired_alignment;
  }

  serve::SnapshotBundle MakeBundle() const {
    serve::SnapshotBundle bundle;
    bundle.meta.model_name = model->name();
    bundle.meta.dataset_name = "serve-fixture";
    bundle.meta.inference = "greedy";
    bundle.meta.has_relation_embeddings = model->HasRelationEmbeddings();
    bundle.meta.has_repair = true;
    bundle.dataset = dataset;
    bundle.emb1 = model->EntityEmbeddings(kg::KgSide::kSource);
    bundle.emb2 = model->EntityEmbeddings(kg::KgSide::kTarget);
    bundle.rel1 = model->RelationEmbeddings(kg::KgSide::kSource);
    bundle.rel2 = model->RelationEmbeddings(kg::KgSide::kTarget);
    bundle.alignment = aligned;
    bundle.repaired = repaired;
    return bundle;
  }

  // The offline explanation JSON for a pair, exactly as CmdExplain renders
  // it (same config, same AlignmentContext).
  std::string OfflineExplainJson(kg::EntityId source,
                                 kg::EntityId target) const {
    explain::ExeaExplainer explainer(dataset, *model, explain::ExeaConfig{});
    explain::AlignmentContext context(&aligned, &dataset.train);
    explain::Explanation explanation =
        explainer.Explain(source, target, context);
    explain::Adg adg = explainer.BuildAdg(explanation);
    return StrFormat(
        "{\"explanation\":%s,\"adg\":%s}",
        explain::ExplanationToJson(explanation, dataset.kg1, dataset.kg2)
            .c_str(),
        explain::AdgToJson(adg, dataset.kg1, dataset.kg2).c_str());
  }
};

const OfflinePipeline& Pipeline() {
  static const OfflinePipeline* pipeline = new OfflinePipeline();
  return *pipeline;
}

// A second frozen pipeline over the SAME deterministic dataset (so entity
// ids and names coincide) but genuinely different embeddings — fewer
// training epochs. Hot-swap tests need two bundles whose answers differ.
const OfflinePipeline& AltPipeline() {
  static const OfflinePipeline* pipeline = new OfflinePipeline(12);
  return *pipeline;
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("exea_serve_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string WriteBundle() {
    std::string bundle_dir = (dir_ / "bundle").string();
    Status status = serve::WriteSnapshot(Pipeline().MakeBundle(), bundle_dir);
    EXPECT_TRUE(status.ok()) << status.ToString();
    return bundle_dir;
  }

  // AltPipeline() frozen next to the main bundle, for hot-swap tests.
  std::string WriteAltBundle() {
    std::string bundle_dir = (dir_ / "alt_bundle").string();
    Status status =
        serve::WriteSnapshot(AltPipeline().MakeBundle(), bundle_dir);
    EXPECT_TRUE(status.ok()) << status.ToString();
    return bundle_dir;
  }

  // Same pipeline state, but frozen with a trained IVF index over emb2.
  // nprobe == num_clusters so an IVF engine answers bit-identically to an
  // exact one — the tests below can compare the two engines directly.
  std::string WriteIvfBundle() {
    serve::SnapshotBundle bundle = Pipeline().MakeBundle();
    bundle.meta.index = "ivf";
    la::IvfOptions options;
    options.num_clusters = 4;
    options.nprobe = 4;
    bundle.ivf = la::TrainIvfIndex(bundle.emb2, options);
    std::string bundle_dir = (dir_ / "ivf_bundle").string();
    Status status = serve::WriteSnapshot(bundle, bundle_dir);
    EXPECT_TRUE(status.ok()) << status.ToString();
    return bundle_dir;
  }

  std::filesystem::path dir_;
};

// A (source, target) pair that is both served and in the raw inference
// output, so explain/repair_status agree on it.
kg::AlignedPair ServedPair() {
  for (const kg::AlignedPair& pair : Pipeline().repaired.SortedPairs()) {
    if (Pipeline().aligned.Contains(pair.source, pair.target)) return pair;
  }
  ADD_FAILURE() << "repair kept no pair from the base alignment";
  return {};
}

// ------------------------------------------------------------- snapshots

TEST_F(ServeTest, SnapshotRoundTripIsExact) {
  std::string bundle_dir = WriteBundle();
  auto loaded = serve::ReadSnapshot(bundle_dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const serve::SnapshotBundle& bundle = **loaded;
  const OfflinePipeline& offline = Pipeline();

  EXPECT_EQ(bundle.meta.format_version, serve::kSnapshotFormatVersion);
  EXPECT_EQ(bundle.meta.model_name, offline.model->name());
  EXPECT_EQ(bundle.meta.inference, "greedy");
  EXPECT_TRUE(bundle.meta.has_relation_embeddings);
  EXPECT_TRUE(bundle.meta.has_repair);

  // Id-stable load: the dictionaries must reproduce the training-time id
  // assignment exactly, so every embedding row still belongs to its entity.
  ASSERT_EQ(bundle.dataset.kg1.num_entities(),
            offline.dataset.kg1.num_entities());
  for (kg::EntityId e = 0; e < bundle.dataset.kg1.num_entities(); ++e) {
    ASSERT_EQ(bundle.dataset.kg1.EntityName(e),
              offline.dataset.kg1.EntityName(e));
  }
  for (kg::RelationId r = 0; r < bundle.dataset.kg2.num_relations(); ++r) {
    ASSERT_EQ(bundle.dataset.kg2.RelationName(r),
              offline.dataset.kg2.RelationName(r));
  }

  // Matrices round-trip bit-exactly (the text format is chosen for that).
  const la::Matrix& emb1 = offline.model->EntityEmbeddings(kg::KgSide::kSource);
  ASSERT_EQ(bundle.emb1.rows(), emb1.rows());
  ASSERT_EQ(bundle.emb1.cols(), emb1.cols());
  EXPECT_EQ(bundle.emb1.data(), emb1.data());
  EXPECT_EQ(bundle.emb2.data(),
            offline.model->EntityEmbeddings(kg::KgSide::kTarget).data());
  EXPECT_EQ(bundle.rel1.data(),
            offline.model->RelationEmbeddings(kg::KgSide::kSource).data());
  EXPECT_EQ(bundle.rel2.data(),
            offline.model->RelationEmbeddings(kg::KgSide::kTarget).data());

  // Alignments survive pair-for-pair.
  EXPECT_EQ(bundle.alignment.SortedPairs(), offline.aligned.SortedPairs());
  EXPECT_EQ(bundle.repaired.SortedPairs(), offline.repaired.SortedPairs());
}

TEST_F(ServeTest, VersionMismatchFailsLoudly) {
  std::string bundle_dir = WriteBundle();
  // Rewrite the version line; everything else stays intact.
  std::string manifest = bundle_dir + "/MANIFEST";
  std::ifstream in(manifest);
  std::stringstream rewritten;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("exea_snapshot_version", 0) == 0) {
      rewritten << "exea_snapshot_version\t999\n";
    } else {
      rewritten << line << "\n";
    }
  }
  in.close();
  std::ofstream(manifest) << rewritten.str();

  auto loaded = serve::ReadSnapshot(bundle_dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServeTest, CorruptPayloadFailsChecksum) {
  std::string bundle_dir = WriteBundle();
  // Flip one byte in the middle of an embedding file.
  std::string victim = bundle_dir + "/emb_ent1.txt";
  std::fstream file(victim,
                    std::ios::in | std::ios::out | std::ios::binary);
  file.seekg(0, std::ios::end);
  std::streamoff size = file.tellg();
  ASSERT_GT(size, 16);
  file.seekp(size / 2);
  file.put('#');
  file.close();

  auto loaded = serve::ReadSnapshot(bundle_dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos);
}

TEST_F(ServeTest, MissingManifestIsNotABundle) {
  auto loaded = serve::ReadSnapshot((dir_ / "nothing_here").string());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

// ---------------------------------------------------------------- engine

TEST_F(ServeTest, ServedExplainIsByteIdenticalToOffline) {
  auto engine =
      serve::QueryEngine::Open(WriteBundle(), serve::EngineOptions{});
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const OfflinePipeline& offline = Pipeline();

  size_t checked = 0;
  for (const kg::AlignedPair& pair : offline.aligned.SortedPairs()) {
    if (++checked > 5) break;  // five pairs is plenty to pin the format
    std::string source = offline.dataset.kg1.EntityName(pair.source);
    std::string target = offline.dataset.kg2.EntityName(pair.target);
    auto served =
        (*engine)->Explain(source, target, serve::Deadline::None());
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    EXPECT_EQ(served->json,
              offline.OfflineExplainJson(pair.source, pair.target))
        << "served explanation diverged for (" << source << ", " << target
        << ")";
    EXPECT_FALSE(served->cache_hit);
  }
  ASSERT_GT(checked, 0u);
}

TEST_F(ServeTest, AlignServesRepairedTargets) {
  auto engine =
      serve::QueryEngine::Open(WriteBundle(), serve::EngineOptions{});
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const OfflinePipeline& offline = Pipeline();

  size_t checked = 0;
  for (const kg::AlignedPair& pair : offline.repaired.SortedPairs()) {
    if (++checked > 10) break;
    std::string source = offline.dataset.kg1.EntityName(pair.source);
    auto result = (*engine)->Align(source, serve::Deadline::None());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::vector<std::string> expected;
    for (kg::EntityId t : offline.repaired.TargetsOf(pair.source)) {
      expected.push_back(offline.dataset.kg2.EntityName(t));
    }
    EXPECT_EQ(result->aligned, expected);
    ASSERT_FALSE(result->candidates.empty());
    // Candidates come back best-first.
    for (size_t i = 1; i < result->candidates.size(); ++i) {
      EXPECT_GE(result->candidates[i - 1].second,
                result->candidates[i].second);
    }
  }

  auto missing = (*engine)->Align("zh/NoSuchEntity", serve::Deadline::None());
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

// ------------------------------------------------------- similarity index

TEST_F(ServeTest, AlignReportsSearchStrategy) {
  // The tiny fixture is far below ivf_min_rows, so "auto" serves exact —
  // and every align response says so.
  auto engine =
      serve::QueryEngine::Open(WriteBundle(), serve::EngineOptions{});
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_STREQ((*engine)->AcquireState()->index().name(), "exact");
  kg::AlignedPair pair = ServedPair();
  auto result = (*engine)->Align(
      Pipeline().dataset.kg1.EntityName(pair.source), serve::Deadline::None());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->index, "exact");
}

TEST_F(ServeTest, IvfBundleRoundTripsAndServesIdentically) {
  std::string bundle_dir = WriteIvfBundle();

  // The persisted index survives the checksum-verified round trip.
  auto loaded = serve::ReadSnapshot(bundle_dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->meta.index, "ivf");
  ASSERT_FALSE((*loaded)->ivf.empty());
  EXPECT_TRUE(la::ValidateIvfIndexData((*loaded)->ivf, (*loaded)->emb2.rows(),
                                       (*loaded)->emb2.cols())
                  .ok());

  serve::EngineOptions ivf_options;
  ivf_options.index_policy = "ivf";
  auto ivf_engine = serve::QueryEngine::Open(bundle_dir, ivf_options);
  ASSERT_TRUE(ivf_engine.ok()) << ivf_engine.status().ToString();
  EXPECT_STREQ((*ivf_engine)->AcquireState()->index().name(), "ivf");

  serve::EngineOptions exact_options;
  exact_options.index_policy = "exact";
  auto exact_engine = serve::QueryEngine::Open(bundle_dir, exact_options);
  ASSERT_TRUE(exact_engine.ok()) << exact_engine.status().ToString();
  EXPECT_STREQ((*exact_engine)->AcquireState()->index().name(), "exact");

  // With nprobe == num_clusters the IVF engine is candidate-for-candidate
  // identical to the exact engine, and each response names its strategy.
  size_t checked = 0;
  for (const kg::AlignedPair& pair : Pipeline().repaired.SortedPairs()) {
    if (++checked > 5) break;
    std::string source = Pipeline().dataset.kg1.EntityName(pair.source);
    auto via_ivf = (*ivf_engine)->Align(source, serve::Deadline::None());
    auto via_exact = (*exact_engine)->Align(source, serve::Deadline::None());
    ASSERT_TRUE(via_ivf.ok()) << via_ivf.status().ToString();
    ASSERT_TRUE(via_exact.ok()) << via_exact.status().ToString();
    EXPECT_EQ(via_ivf->index, "ivf");
    EXPECT_EQ(via_exact->index, "exact");
    EXPECT_EQ(via_ivf->candidates, via_exact->candidates) << source;
    EXPECT_EQ(via_ivf->aligned, via_exact->aligned) << source;
  }
  ASSERT_GT(checked, 0u);
}

TEST_F(ServeTest, IvfPolicyOnIndexlessBundleDegradesToExact) {
  serve::EngineOptions options;
  options.index_policy = "ivf";  // bundle below has no trained index
  auto engine = serve::QueryEngine::Open(WriteBundle(), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_STREQ((*engine)->AcquireState()->index().name(), "exact");
}

TEST_F(ServeTest, CorruptedPersistedIndexFailsChecksum) {
  std::string bundle_dir = WriteIvfBundle();
  std::string victim = bundle_dir + "/index.ivf";
  std::fstream file(victim, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good());
  file.seekg(0, std::ios::end);
  std::streamoff size = file.tellg();
  ASSERT_GT(size, 16);
  file.seekp(size / 2);
  file.put('#');
  file.close();

  auto loaded = serve::ReadSnapshot(bundle_dir);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos);
}

TEST_F(ServeTest, SecondExplainHitsCache) {
  // A fresh registry so the exact hit/miss counts below cannot be
  // polluted by other tests sharing obs::Registry::Global().
  obs::Registry registry;
  serve::EngineOptions options;
  options.registry = &registry;
  auto engine = serve::QueryEngine::Open(WriteBundle(), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  kg::AlignedPair pair = ServedPair();
  std::string source = Pipeline().dataset.kg1.EntityName(pair.source);
  std::string target = Pipeline().dataset.kg2.EntityName(pair.target);

  auto cold = (*engine)->Explain(source, target, serve::Deadline::None());
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->cache_hit);
  auto warm = (*engine)->Explain(source, target, serve::Deadline::None());
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache_hit);
  EXPECT_EQ(warm->json, cold->json);
  EXPECT_EQ(warm->confidence, cold->confidence);

  EXPECT_EQ(registry.CounterValue("serve.explain_cache.hits"), 1u);
  EXPECT_EQ(registry.CounterValue("serve.explain_cache.misses"), 1u);
  EXPECT_EQ(registry.GaugeValue("serve.explain_cache.size"), 1.0);

  (*engine)->ClearExplainCache();
  EXPECT_EQ(registry.GaugeValue("serve.explain_cache.size"), 0.0);
  auto recold = (*engine)->Explain(source, target, serve::Deadline::None());
  ASSERT_TRUE(recold.ok());
  EXPECT_FALSE(recold->cache_hit);
}

TEST_F(ServeTest, LruEvictsLeastRecentlyUsed) {
  obs::Registry registry;
  serve::EngineOptions options;
  options.explain_cache_capacity = 2;
  options.registry = &registry;
  auto engine = serve::QueryEngine::Open(WriteBundle(), options);
  ASSERT_TRUE(engine.ok());
  const OfflinePipeline& offline = Pipeline();
  std::vector<kg::AlignedPair> pairs = offline.aligned.SortedPairs();
  ASSERT_GE(pairs.size(), 3u);

  auto explain = [&](const kg::AlignedPair& pair) {
    auto result = (*engine)->Explain(
        offline.dataset.kg1.EntityName(pair.source),
        offline.dataset.kg2.EntityName(pair.target), serve::Deadline::None());
    EXPECT_TRUE(result.ok());
    return result->cache_hit;
  };
  EXPECT_FALSE(explain(pairs[0]));
  EXPECT_FALSE(explain(pairs[1]));
  EXPECT_FALSE(explain(pairs[2]));  // evicts pairs[0]
  EXPECT_EQ(registry.GaugeValue("serve.explain_cache.size"), 2.0);
  EXPECT_FALSE(explain(pairs[0]));  // cold again
  EXPECT_TRUE(explain(pairs[0]));   // and now cached
}

// The recency discipline in isolation, including the promote-on-Put fix:
// an existing key refreshed by Put must move to the front, not stay parked
// at its old position as next in line for eviction. (That is exactly what
// happens when two threads miss on the same key, both render, and the
// second Put lands after the first.)
// Epoch 0 pair keys, matching the single-version serving steady state.
serve::ExplainLruCache::Key CacheKey(uint64_t pair, uint64_t epoch = 0) {
  return serve::ExplainLruCache::Key{epoch, pair};
}

using CacheKeys = std::vector<serve::ExplainLruCache::Key>;

TEST(ExplainLruCacheTest, PutRefreshesAndPromotesExistingKey) {
  serve::ExplainLruCache cache(2);
  cache.Put(CacheKey(1), {"one", 0.1});
  cache.Put(CacheKey(2), {"two", 0.2});
  ASSERT_EQ(cache.KeysMostRecentFirst(),
            (CacheKeys{CacheKey(2), CacheKey(1)}));

  // Re-Put of the older key: entry refreshed AND promoted to the front.
  cache.Put(CacheKey(1), {"one-rerendered", 0.15});
  EXPECT_EQ(cache.KeysMostRecentFirst(),
            (CacheKeys{CacheKey(1), CacheKey(2)}));
  serve::ExplainLruCache::Entry entry;
  ASSERT_TRUE(cache.Get(CacheKey(1), &entry));
  EXPECT_EQ(entry.json, "one-rerendered");
  EXPECT_EQ(entry.confidence, 0.15);

  // The next insert over capacity must now evict 2, not the just-used 1.
  cache.Put(CacheKey(3), {"three", 0.3});
  EXPECT_EQ(cache.KeysMostRecentFirst(),
            (CacheKeys{CacheKey(3), CacheKey(1)}));
  EXPECT_FALSE(cache.Get(CacheKey(2), nullptr));
  EXPECT_TRUE(cache.Get(CacheKey(1), nullptr));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ExplainLruCacheTest, GetPromotesAndZeroCapacityDisables) {
  serve::ExplainLruCache cache(2);
  cache.Put(CacheKey(1), {"one", 0.0});
  cache.Put(CacheKey(2), {"two", 0.0});
  ASSERT_TRUE(cache.Get(CacheKey(1), nullptr));  // promote 1 over 2
  EXPECT_EQ(cache.KeysMostRecentFirst(),
            (CacheKeys{CacheKey(1), CacheKey(2)}));
  cache.Put(CacheKey(3), {"three", 0.0});  // evicts 2
  EXPECT_EQ(cache.KeysMostRecentFirst(),
            (CacheKeys{CacheKey(3), CacheKey(1)}));

  serve::ExplainLruCache disabled(0);
  disabled.Put(CacheKey(7), {"seven", 0.0});
  EXPECT_FALSE(disabled.Get(CacheKey(7), nullptr));
  EXPECT_EQ(disabled.size(), 0u);
}

// The epoch is part of the identity: the same pair rendered under two
// snapshot versions occupies two slots, and a lookup under the new epoch
// can never be satisfied by a stale entry — even if a laggard renderer of
// the old version Puts after the swap's Clear.
TEST(ExplainLruCacheTest, EpochSeparatesIdenticalPairKeys) {
  serve::ExplainLruCache cache(4);
  cache.Put(CacheKey(9, /*epoch=*/1), {"old-version", 0.1});
  cache.Put(CacheKey(9, /*epoch=*/2), {"new-version", 0.9});
  EXPECT_EQ(cache.size(), 2u);

  serve::ExplainLruCache::Entry entry;
  ASSERT_TRUE(cache.Get(CacheKey(9, 2), &entry));
  EXPECT_EQ(entry.json, "new-version");
  ASSERT_TRUE(cache.Get(CacheKey(9, 1), &entry));
  EXPECT_EQ(entry.json, "old-version");

  // A laggard Put of the old epoch after a swap-triggered Clear leaves
  // new-epoch lookups cold instead of serving the stale render.
  cache.Clear();
  cache.Put(CacheKey(9, 1), {"laggard", 0.1});
  EXPECT_FALSE(cache.Get(CacheKey(9, 2), nullptr));
}

// serve.explain_cache.size stays exact through every mutation path —
// Put inserts, Put evictions, refresh Puts, and Clear. The old engine set
// the gauge only after its own Put calls, so Clear left it stale high.
TEST(ExplainLruCacheTest, SizeGaugeTracksEveryMutation) {
  obs::Registry registry;
  obs::Gauge& gauge = registry.GetGauge("serve.explain_cache.size");
  serve::ExplainLruCache cache(2, &gauge);
  EXPECT_EQ(registry.GaugeValue("serve.explain_cache.size"), 0.0);

  cache.Put(CacheKey(1), {"one", 0.0});
  EXPECT_EQ(registry.GaugeValue("serve.explain_cache.size"), 1.0);
  cache.Put(CacheKey(2), {"two", 0.0});
  EXPECT_EQ(registry.GaugeValue("serve.explain_cache.size"), 2.0);
  cache.Put(CacheKey(1), {"one-refreshed", 0.0});  // refresh: no growth
  EXPECT_EQ(registry.GaugeValue("serve.explain_cache.size"), 2.0);
  cache.Put(CacheKey(3), {"three", 0.0});  // insert + evict: still 2
  EXPECT_EQ(registry.GaugeValue("serve.explain_cache.size"), 2.0);
  cache.Clear();
  EXPECT_EQ(registry.GaugeValue("serve.explain_cache.size"), 0.0);
}

// ------------------------------------------------- hot swap + sharding

// The stale-explain-cache regression. Before the epoch-keyed cache +
// clear-on-swap, this failed: the post-swap explain served the OLD
// version's render out of the cache instead of the new bundle's answer.
TEST_F(ServeTest, SwapInvalidatesExplainCacheAndChangesAnswers) {
  obs::Registry registry;
  serve::EngineOptions options;
  options.registry = &registry;
  auto engine = serve::QueryEngine::Open(WriteBundle(), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  kg::AlignedPair pair = ServedPair();
  std::string source = Pipeline().dataset.kg1.EntityName(pair.source);
  std::string target = Pipeline().dataset.kg2.EntityName(pair.target);
  // The two pipelines share the deterministic dataset, so the ids the
  // offline renders below use mean the same entities in both bundles.
  ASSERT_EQ(AltPipeline().dataset.kg1.EntityName(pair.source), source);
  ASSERT_EQ(AltPipeline().dataset.kg2.EntityName(pair.target), target);

  auto before = (*engine)->Explain(source, target, serve::Deadline::None());
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_EQ(before->json,
            Pipeline().OfflineExplainJson(pair.source, pair.target));
  auto warm = (*engine)->Explain(source, target, serve::Deadline::None());
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache_hit);

  auto epoch = (*engine)->LoadSnapshot(WriteAltBundle());
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(registry.CounterValue("serve.explain_cache.invalidations"), 1u);
  EXPECT_EQ(registry.GaugeValue("serve.explain_cache.size"), 0.0);

  auto after = (*engine)->Explain(source, target, serve::Deadline::None());
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_FALSE(after->cache_hit);  // the stale render must not be served
  EXPECT_EQ(after->json,
            AltPipeline().OfflineExplainJson(pair.source, pair.target));
  EXPECT_NE(after->json, before->json)
      << "the two fixture bundles must disagree for this test to bite";
}

TEST_F(ServeTest, FailedLoadSnapshotKeepsCurrentVersionServing) {
  obs::Registry registry;
  serve::EngineOptions options;
  options.registry = &registry;
  auto engine = serve::QueryEngine::Open(WriteBundle(), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  uint64_t epoch0 = (*engine)->EngineStatus().epoch;

  auto missing =
      (*engine)->LoadSnapshot((dir_ / "no_such_bundle").string());
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  auto traversal = (*engine)->LoadSnapshot("bundles/../../etc/passwd");
  ASSERT_FALSE(traversal.ok());
  EXPECT_EQ(traversal.status().code(), StatusCode::kInvalidArgument);

  auto empty = (*engine)->LoadSnapshot("");
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);

  // A present-but-corrupt bundle: rejected at checksum, version kept.
  std::string corrupt_dir = WriteAltBundle();
  {
    std::fstream file(corrupt_dir + "/emb_ent2.txt",
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekg(0, std::ios::end);
    std::streamoff size = file.tellg();
    ASSERT_GT(size, 16);
    file.seekp(size / 2);
    file.put('#');
  }
  auto corrupt = (*engine)->LoadSnapshot(corrupt_dir);
  ASSERT_FALSE(corrupt.ok());
  EXPECT_EQ(corrupt.status().code(), StatusCode::kInvalidArgument);

  serve::EngineStatusResult status = (*engine)->EngineStatus();
  EXPECT_EQ(status.epoch, epoch0);
  EXPECT_EQ(status.swaps, 0u);
  EXPECT_EQ(registry.CounterValue("serve.explain_cache.invalidations"), 0u);

  kg::AlignedPair pair = ServedPair();
  auto still = (*engine)->Align(
      Pipeline().dataset.kg1.EntityName(pair.source), serve::Deadline::None());
  EXPECT_TRUE(still.ok()) << still.status().ToString();
}

TEST_F(ServeTest, EngineStatusTracksVersionsAcrossSwaps) {
  obs::Registry registry;
  serve::EngineOptions options;
  options.registry = &registry;
  options.max_resident_versions = 2;
  auto engine = serve::QueryEngine::Open(WriteBundle(), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  serve::EngineStatusResult fresh = (*engine)->EngineStatus();
  EXPECT_EQ(fresh.epoch, 1u);
  EXPECT_EQ(fresh.shards, 1u);
  EXPECT_EQ(fresh.index, "exact");
  EXPECT_EQ(fresh.index_size, Pipeline().dataset.kg2.num_entities());
  EXPECT_EQ(fresh.resident_versions, 1u);
  EXPECT_EQ(fresh.live_versions, 1.0);
  EXPECT_EQ(fresh.swaps, 0u);

  std::string alt = WriteAltBundle();
  auto second = (*engine)->LoadSnapshot(alt);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 2u);
  serve::EngineStatusResult swapped = (*engine)->EngineStatus();
  EXPECT_EQ(swapped.epoch, 2u);
  EXPECT_EQ(swapped.swaps, 1u);
  // max_resident_versions = 2: the retired version stays pinned by the
  // manager itself, so both are alive.
  EXPECT_EQ(swapped.resident_versions, 2u);
  EXPECT_EQ(swapped.live_versions, 2.0);
  EXPECT_EQ(swapped.source, alt);

  // A third install evicts the oldest resident; with no reader pinning
  // it, the version count settles back to the resident cap.
  auto third = (*engine)->LoadSnapshot(WriteBundle());
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(*third, 3u);
  serve::EngineStatusResult settled = (*engine)->EngineStatus();
  EXPECT_EQ(settled.resident_versions, 2u);
  EXPECT_EQ(settled.live_versions, 2.0);
  EXPECT_EQ(settled.swaps, 2u);
}

// The index-borrow lifetime regression, shaped for TSAN: readers align
// against whatever version they pinned while the main thread churns
// swaps with max_resident_versions = 1, so every retired version's only
// lifeline is the readers' refcounted handles. With the old raw
// `&bundle_->emb2` borrow this was a use-after-free under swap.
TEST_F(ServeTest, SwapChurnWhileAlignsStayInFlight) {
  obs::Registry registry;
  serve::EngineOptions options;
  options.registry = &registry;
  options.max_resident_versions = 1;
  auto engine = serve::QueryEngine::Open(WriteBundle(), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  std::string a = WriteBundle();
  std::string b = WriteAltBundle();

  std::vector<std::string> names;
  for (kg::EntityId e = 0; e < Pipeline().dataset.kg1.num_entities(); ++e) {
    names.push_back(Pipeline().dataset.kg1.EntityName(e));
  }
  ASSERT_FALSE(names.empty());

  std::atomic<bool> stop{false};
  std::atomic<size_t> answered{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t);
      while (!stop.load()) {
        auto result = (*engine)->Align(names[i++ % names.size()],
                                       serve::Deadline::None());
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        answered.fetch_add(1);
      }
    });
  }

  constexpr size_t kSwaps = 6;
  for (size_t swap = 0; swap < kSwaps; ++swap) {
    auto epoch = (*engine)->LoadSnapshot(swap % 2 == 0 ? b : a);
    ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();

  EXPECT_GT(answered.load(), 0u);
  EXPECT_EQ(registry.CounterValue("serve.snapshot.swaps"), kSwaps);
  // Every retired version was actually freed once its readers drained:
  // the versions gauge decrements in the handle's deleter.
  EXPECT_EQ(registry.GaugeValue("serve.snapshot.versions"), 1.0);
}

// Sharded serving is an implementation detail: for every shard count the
// full response bytes — candidates, scores, ordering, index name — must
// match the single-index engine exactly on the exact-scan path.
TEST_F(ServeTest, ShardedServingIsByteIdenticalToSingleShard) {
  std::string bundle_dir = WriteBundle();
  std::vector<std::string> names;
  for (kg::EntityId e = 0; e < Pipeline().dataset.kg1.num_entities(); ++e) {
    names.push_back(Pipeline().dataset.kg1.EntityName(e));
  }

  for (size_t k : {size_t{1}, size_t{3}, size_t{10}}) {
    serve::EngineOptions single_options;
    single_options.top_k = k;
    auto single = serve::QueryEngine::Open(bundle_dir, single_options);
    ASSERT_TRUE(single.ok()) << single.status().ToString();
    serve::Server single_server((*single).get(), serve::ServerOptions{});

    for (size_t shards : {size_t{2}, size_t{3}, size_t{5}, size_t{8}}) {
      serve::EngineOptions sharded_options;
      sharded_options.top_k = k;
      sharded_options.shards = shards;
      auto sharded = serve::QueryEngine::Open(bundle_dir, sharded_options);
      ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
      EXPECT_EQ((*sharded)->EngineStatus().shards,
                std::min(shards, Pipeline().dataset.kg2.num_entities()));
      // The shard layout is invisible in the reported strategy…
      EXPECT_STREQ((*sharded)->AcquireState()->index().name(), "exact");
      // …and in every served byte.
      serve::Server sharded_server((*sharded).get(), serve::ServerOptions{});
      for (const std::string& name : names) {
        std::string request = StrFormat(
            "{\"op\":\"align\",\"entity\":\"%s\"}", name.c_str());
        EXPECT_EQ(sharded_server.HandleLine(request),
                  single_server.HandleLine(request))
            << "k=" << k << " shards=" << shards << " entity=" << name;
      }
    }
  }
}

TEST_F(ServeTest, NeighborsAndRepairStatus) {
  auto engine =
      serve::QueryEngine::Open(WriteBundle(), serve::EngineOptions{});
  ASSERT_TRUE(engine.ok());
  const OfflinePipeline& offline = Pipeline();
  kg::AlignedPair pair = ServedPair();
  std::string source = offline.dataset.kg1.EntityName(pair.source);
  std::string target = offline.dataset.kg2.EntityName(pair.target);

  auto neighbors = (*engine)->Neighbors(source, 1, serve::Deadline::None());
  ASSERT_TRUE(neighbors.ok());
  EXPECT_EQ(neighbors->edges.size(),
            offline.dataset.kg1.Edges(pair.source).size());

  auto bad_side = (*engine)->Neighbors(source, 3, serve::Deadline::None());
  ASSERT_FALSE(bad_side.ok());
  EXPECT_EQ(bad_side.status().code(), StatusCode::kInvalidArgument);

  auto status = (*engine)->RepairStatus(source, target,
                                        serve::Deadline::None());
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(status->in_base);
  EXPECT_TRUE(status->in_repaired);
  EXPECT_EQ(status->verdict, "kept");
  ASSERT_FALSE(status->repaired_targets.empty());
  EXPECT_EQ(status->repaired_targets[0], target);
}

TEST_F(ServeTest, ExpiredDeadlineRejectsButCacheStillServes) {
  auto engine =
      serve::QueryEngine::Open(WriteBundle(), serve::EngineOptions{});
  ASSERT_TRUE(engine.ok());
  kg::AlignedPair pair = ServedPair();
  std::string source = Pipeline().dataset.kg1.EntityName(pair.source);
  std::string target = Pipeline().dataset.kg2.EntityName(pair.target);

  auto expired = (*engine)->Explain(source, target, serve::Deadline(1e-12));
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded);

  // Warm the cache with no deadline; a cached answer is then served even
  // under an already-expired deadline.
  ASSERT_TRUE((*engine)->Explain(source, target, serve::Deadline::None()).ok());
  auto cached = (*engine)->Explain(source, target, serve::Deadline(1e-12));
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->cache_hit);
}

// ---------------------------------------------------------------- server

TEST(ParseFlatJsonTest, AcceptsFlatObjects) {
  auto fields = serve::ParseFlatJson(
      "{\"op\":\"align\",\"entity\":\"zh/A\",\"k\":5,\"flag\":true}");
  ASSERT_TRUE(fields.ok()) << fields.status().ToString();
  EXPECT_EQ((*fields)["op"], "align");
  EXPECT_EQ((*fields)["entity"], "zh/A");
  EXPECT_EQ((*fields)["k"], "5");
  EXPECT_EQ((*fields)["flag"], "true");
}

TEST(ParseFlatJsonTest, DecodesEscapes) {
  auto fields =
      serve::ParseFlatJson("{\"a\":\"x\\n\\\"y\\\"\",\"b\":\"\\u0041\"}");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ((*fields)["a"], "x\n\"y\"");
  EXPECT_EQ((*fields)["b"], "A");
}

TEST(ParseFlatJsonTest, RejectsGarbage) {
  EXPECT_FALSE(serve::ParseFlatJson("not json").ok());
  EXPECT_FALSE(serve::ParseFlatJson("").ok());
  EXPECT_FALSE(serve::ParseFlatJson("{\"a\":{\"nested\":1}}").ok());
  EXPECT_FALSE(serve::ParseFlatJson("{\"a\":[1,2]}").ok());
  EXPECT_FALSE(serve::ParseFlatJson("{\"a\":\"unterminated").ok());
  EXPECT_FALSE(serve::ParseFlatJson("{\"a\":\"b\"} trailing").ok());
  EXPECT_FALSE(serve::ParseFlatJson("{\"a\" \"b\"}").ok());
}

TEST(JsonEscapeTest, EscapesControlAndQuotes) {
  EXPECT_EQ(serve::JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(serve::JsonEscape(std::string(1, '\x01')), "\\u0001");
}

class ServerTest : public ServeTest {
 protected:
  void StartServer(double deadline_seconds = 5.0) {
    serve::EngineOptions engine_options;
    engine_options.registry = &registry_;
    auto engine = serve::QueryEngine::Open(WriteBundle(), engine_options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(*engine);
    serve::ServerOptions options;
    options.deadline_seconds = deadline_seconds;
    // options.registry stays nullptr: the server must then share the
    // engine's (injected) registry, which is the production default too.
    server_ = std::make_unique<serve::Server>(engine_.get(), options);
  }

  uint64_t Requests() const {
    return registry_.CounterValue("serve.requests");
  }

  // A fresh registry per test so exact-count assertions never see another
  // test's traffic through obs::Registry::Global().
  obs::Registry registry_;
  std::unique_ptr<serve::QueryEngine> engine_;
  std::unique_ptr<serve::Server> server_;
};

TEST_F(ServerTest, MalformedRequestDoesNotKillTheLoop) {
  StartServer();
  std::string bad = server_->HandleLine("this is not json");
  EXPECT_EQ(bad.rfind("{\"ok\":false", 0), 0u) << bad;
  EXPECT_NE(bad.find("INVALID_ARGUMENT"), std::string::npos);

  std::string unknown_op = server_->HandleLine("{\"op\":\"frobnicate\"}");
  EXPECT_EQ(unknown_op.rfind("{\"ok\":false", 0), 0u);

  std::string missing_field = server_->HandleLine("{\"op\":\"align\"}");
  EXPECT_EQ(missing_field.rfind("{\"ok\":false", 0), 0u);

  // The server is still fully functional afterwards.
  kg::AlignedPair pair = ServedPair();
  std::string request = StrFormat(
      "{\"op\":\"align\",\"entity\":\"%s\"}",
      Pipeline().dataset.kg1.EntityName(pair.source).c_str());
  std::string good = server_->HandleLine(request);
  EXPECT_EQ(good.rfind("{\"ok\":true,\"op\":\"align\"", 0), 0u) << good;

  EXPECT_EQ(Requests(), 4u);
  EXPECT_EQ(registry_.CounterValue("serve.malformed"), 1u);
  EXPECT_EQ(registry_.CounterValue("serve.errors"), 3u);
  EXPECT_EQ(registry_.CounterValue("serve.ok"), 1u);
}

TEST_F(ServerTest, UnknownEntityMapsToNotFound) {
  StartServer();
  std::string response =
      server_->HandleLine("{\"op\":\"align\",\"entity\":\"zh/Nope\"}");
  EXPECT_EQ(response.rfind("{\"ok\":false", 0), 0u);
  EXPECT_NE(response.find("\"NOT_FOUND\""), std::string::npos);
}

TEST_F(ServerTest, NeighborsSideFieldIsCheckParsed) {
  StartServer();
  kg::AlignedPair pair = ServedPair();
  std::string source = Pipeline().dataset.kg1.EntityName(pair.source);
  std::string target = Pipeline().dataset.kg2.EntityName(pair.target);

  // The pre-repair handler ran atoi on `side`: "abc" became side 0 and
  // "2junk" became a valid-looking side 2. Both must now be rejected up
  // front with a Status that names the field.
  for (const char* bad : {"abc", "2junk", "0", "3", "-1", ""}) {
    std::string response = server_->HandleLine(StrFormat(
        "{\"op\":\"neighbors\",\"entity\":\"%s\",\"side\":\"%s\"}",
        source.c_str(), bad));
    EXPECT_EQ(response.rfind("{\"ok\":false", 0), 0u) << bad;
    EXPECT_NE(response.find("INVALID_ARGUMENT"), std::string::npos) << bad;
    EXPECT_NE(response.find("'side'"), std::string::npos) << bad;
  }

  std::string side2 = server_->HandleLine(StrFormat(
      "{\"op\":\"neighbors\",\"entity\":\"%s\",\"side\":\"2\"}",
      target.c_str()));
  EXPECT_EQ(side2.rfind("{\"ok\":true", 0), 0u) << side2;
}

TEST_F(ServerTest, AlignKFieldIsCheckParsed) {
  StartServer();
  kg::AlignedPair pair = ServedPair();
  std::string source = Pipeline().dataset.kg1.EntityName(pair.source);
  for (const char* bad : {"abc", "0", "-2", "1001", "5junk"}) {
    std::string response = server_->HandleLine(StrFormat(
        "{\"op\":\"align\",\"entity\":\"%s\",\"k\":\"%s\"}",
        source.c_str(), bad));
    EXPECT_EQ(response.rfind("{\"ok\":false", 0), 0u) << bad;
    EXPECT_NE(response.find("'k'"), std::string::npos) << bad;
  }
  std::string good = server_->HandleLine(StrFormat(
      "{\"op\":\"align\",\"entity\":\"%s\",\"k\":\"1\"}", source.c_str()));
  EXPECT_EQ(good.rfind("{\"ok\":true", 0), 0u) << good;
}

TEST_F(ServerTest, DeadlineMsFieldIsCheckParsed) {
  StartServer();
  kg::AlignedPair pair = ServedPair();
  std::string source = Pipeline().dataset.kg1.EntityName(pair.source);
  for (const char* bad :
       {"abc", "0", "-5", "3600001", "99999999999999999999", "250ms"}) {
    std::string response = server_->HandleLine(StrFormat(
        "{\"op\":\"align\",\"entity\":\"%s\",\"deadline_ms\":\"%s\"}",
        source.c_str(), bad));
    EXPECT_EQ(response.rfind("{\"ok\":false", 0), 0u) << bad;
    EXPECT_NE(response.find("'deadline_ms'"), std::string::npos) << bad;
  }
  std::string good = server_->HandleLine(StrFormat(
      "{\"op\":\"align\",\"entity\":\"%s\",\"deadline_ms\":\"5000\"}",
      source.c_str()));
  EXPECT_EQ(good.rfind("{\"ok\":true", 0), 0u) << good;
}

TEST_F(ServerTest, FullSessionOverStreams) {
  StartServer();
  kg::AlignedPair pair = ServedPair();
  std::string source = Pipeline().dataset.kg1.EntityName(pair.source);
  std::string target = Pipeline().dataset.kg2.EntityName(pair.target);

  std::stringstream in;
  in << StrFormat("{\"op\":\"align\",\"entity\":\"%s\"}\n", source.c_str())
     << StrFormat("{\"op\":\"explain\",\"source\":\"%s\",\"target\":\"%s\"}\n",
                  source.c_str(), target.c_str())
     << StrFormat("{\"op\":\"explain\",\"source\":\"%s\",\"target\":\"%s\"}\n",
                  source.c_str(), target.c_str())
     << "\n"  // blank lines are skipped, not answered
     << "{\"op\":\"stats\"}\n"
     << "{\"op\":\"shutdown\"}\n"
     << "{\"op\":\"stats\"}\n";  // after shutdown: never read
  std::stringstream out;
  server_->Serve(in, out);

  std::vector<std::string> lines;
  std::string line;
  while (std::getline(out, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(lines[0].rfind("{\"ok\":true,\"op\":\"align\"", 0), 0u);
  EXPECT_NE(lines[1].find("\"cache_hit\":false"), std::string::npos);
  EXPECT_NE(lines[2].find("\"cache_hit\":true"), std::string::npos);
  EXPECT_NE(lines[3].find("\"explain_cache_hits\":1"), std::string::npos);
  EXPECT_EQ(lines[4], "{\"ok\":true,\"op\":\"shutdown\"}");
  EXPECT_TRUE(server_->shutdown_requested());
  EXPECT_EQ(Requests(), 5u);
}

TEST_F(ServerTest, BatchedAlignAnswersEveryEntity) {
  StartServer();
  const OfflinePipeline& offline = Pipeline();
  std::vector<kg::AlignedPair> pairs = offline.repaired.SortedPairs();
  ASSERT_GE(pairs.size(), 2u);
  std::string names =
      offline.dataset.kg1.EntityName(pairs[0].source) + "," +
      offline.dataset.kg1.EntityName(pairs[1].source);
  std::string response = server_->HandleLine(
      StrFormat("{\"op\":\"align\",\"entities\":\"%s\"}", names.c_str()));
  EXPECT_EQ(response.rfind("{\"ok\":true,\"op\":\"align\",\"results\":[", 0),
            0u)
      << response;
  EXPECT_NE(
      response.find(offline.dataset.kg1.EntityName(pairs[1].source)),
      std::string::npos);
}

TEST_F(ServerTest, AlignAndStatsResponsesCarryIndexField) {
  StartServer();
  kg::AlignedPair pair = ServedPair();
  std::string response = server_->HandleLine(StrFormat(
      "{\"op\":\"align\",\"entity\":\"%s\"}",
      Pipeline().dataset.kg1.EntityName(pair.source).c_str()));
  EXPECT_NE(response.find("\"index\":\"exact\""), std::string::npos)
      << response;
  std::string stats = server_->HandleLine("{\"op\":\"stats\"}");
  EXPECT_NE(stats.find("\"index\":\"exact\""), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"index_size\":"), std::string::npos) << stats;
}

TEST_F(ServerTest, LoadSnapshotOpSwapsAndEngineStatusReports) {
  StartServer();
  std::string alt = WriteAltBundle();

  std::string status0 = server_->HandleLine("{\"op\":\"engine_status\"}");
  EXPECT_EQ(status0.rfind("{\"ok\":true", 0), 0u) << status0;
  EXPECT_NE(status0.find("\"epoch\":1"), std::string::npos) << status0;
  EXPECT_NE(status0.find("\"swaps\":0"), std::string::npos) << status0;
  EXPECT_NE(status0.find("\"shards\":1"), std::string::npos) << status0;

  std::string swap = server_->HandleLine(StrFormat(
      "{\"op\":\"load_snapshot\",\"dir\":\"%s\"}",
      serve::JsonEscape(alt).c_str()));
  EXPECT_EQ(swap.rfind("{\"ok\":true", 0), 0u) << swap;
  EXPECT_NE(swap.find("\"epoch\":2"), std::string::npos) << swap;

  std::string status1 = server_->HandleLine("{\"op\":\"engine_status\"}");
  EXPECT_NE(status1.find("\"epoch\":2"), std::string::npos) << status1;
  EXPECT_NE(status1.find("\"swaps\":1"), std::string::npos) << status1;

  // The stats payload carries the versioning keys too.
  std::string stats = server_->HandleLine("{\"op\":\"stats\"}");
  EXPECT_NE(stats.find("\"epoch\":2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"snapshot_swaps\":1"), std::string::npos) << stats;
}

TEST_F(ServerTest, LoadSnapshotOpRejectsHostileDirsAndKeepsServing) {
  StartServer();
  kg::AlignedPair pair = ServedPair();
  std::string align = StrFormat(
      "{\"op\":\"align\",\"entity\":\"%s\"}",
      Pipeline().dataset.kg1.EntityName(pair.source).c_str());
  std::string baseline = server_->HandleLine(align);
  ASSERT_EQ(baseline.rfind("{\"ok\":true", 0), 0u) << baseline;

  std::string no_dir = server_->HandleLine("{\"op\":\"load_snapshot\"}");
  EXPECT_EQ(no_dir.rfind("{\"ok\":false", 0), 0u) << no_dir;
  EXPECT_NE(no_dir.find("INVALID_ARGUMENT"), std::string::npos) << no_dir;

  std::string missing = server_->HandleLine(
      "{\"op\":\"load_snapshot\",\"dir\":\"/nonexistent/bundle\"}");
  EXPECT_EQ(missing.rfind("{\"ok\":false", 0), 0u) << missing;
  EXPECT_NE(missing.find("NOT_FOUND"), std::string::npos) << missing;

  std::string traversal = server_->HandleLine(
      "{\"op\":\"load_snapshot\",\"dir\":\"bundles/../../etc\"}");
  EXPECT_EQ(traversal.rfind("{\"ok\":false", 0), 0u) << traversal;
  EXPECT_NE(traversal.find("INVALID_ARGUMENT"), std::string::npos)
      << traversal;

  // Every rejection left the current version untouched: same bytes out.
  EXPECT_EQ(server_->HandleLine(align), baseline);
  std::string status = server_->HandleLine("{\"op\":\"engine_status\"}");
  EXPECT_NE(status.find("\"epoch\":1"), std::string::npos) << status;
  EXPECT_NE(status.find("\"swaps\":0"), std::string::npos) << status;
}

// Exercised under TSAN by ci/check.sh: concurrent HandleLine callers must
// not race on the registry counters (atomics), the latency histogram
// (mutex per Record), or the engine's explain cache. Pinning exact totals
// also proves no increment was lost to a torn update.
TEST_F(ServerTest, ConcurrentHandleLineKeepsCountersExact) {
  StartServer();
  kg::AlignedPair pair = ServedPair();
  const std::string align_request = StrFormat(
      "{\"op\":\"align\",\"entity\":\"%s\"}",
      Pipeline().dataset.kg1.EntityName(pair.source).c_str());
  const std::string explain_request = StrFormat(
      "{\"op\":\"explain\",\"source\":\"%s\",\"target\":\"%s\"}",
      Pipeline().dataset.kg1.EntityName(pair.source).c_str(),
      Pipeline().dataset.kg2.EntityName(pair.target).c_str());
  constexpr int kPerThread = 25;
  std::vector<std::thread> workers;
  workers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string request;
        switch (t) {
          case 0: request = align_request; break;
          case 1: request = explain_request; break;
          case 2: request = "{\"op\":\"stats\"}"; break;
          default: request = "not json"; break;
        }
        std::string response = server_->HandleLine(request);
        EXPECT_FALSE(response.empty());
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  EXPECT_EQ(Requests(), 4u * kPerThread);
  EXPECT_EQ(registry_.CounterValue("serve.malformed"), 1u * kPerThread);
  EXPECT_EQ(registry_.CounterValue("serve.ok"), 3u * kPerThread);
  EXPECT_EQ(registry_.CounterValue("serve.errors"), 1u * kPerThread);
  EXPECT_EQ(registry_.HistogramSnapshot("serve.latency_ms").count,
            4u * kPerThread);
  EXPECT_EQ(registry_.CounterValue("serve.op.align"),
            static_cast<uint64_t>(kPerThread));
}

TEST_F(ServerTest, OverDeadlineRequestAnswersAndLoopContinues) {
  StartServer(/*deadline_seconds=*/1e-12);
  kg::AlignedPair pair = ServedPair();
  std::string response = server_->HandleLine(StrFormat(
      "{\"op\":\"explain\",\"source\":\"%s\",\"target\":\"%s\"}",
      Pipeline().dataset.kg1.EntityName(pair.source).c_str(),
      Pipeline().dataset.kg2.EntityName(pair.target).c_str()));
  EXPECT_EQ(response.rfind("{\"ok\":false", 0), 0u) << response;
  EXPECT_NE(response.find("\"DEADLINE_EXCEEDED\""), std::string::npos);
  EXPECT_EQ(registry_.CounterValue("serve.deadline_exceeded"), 1u);

  // stats carries no deadline-bound work and still answers.
  std::string stats = server_->HandleLine("{\"op\":\"stats\"}");
  EXPECT_EQ(stats.rfind("{\"ok\":true,\"op\":\"stats\"", 0), 0u);
}

// Pulls one "key":number value out of a flat JSON stats line.
double JsonNumber(const std::string& json, const std::string& key) {
  std::string needle = "\"" + key + "\":";
  size_t pos = json.find(needle);
  EXPECT_NE(pos, std::string::npos) << "no " << key << " in " << json;
  if (pos == std::string::npos) return -1.0;
  return std::atof(json.c_str() + pos + needle.size());
}

// The latency-accounting bias this PR fixes. The old server kept at most
// 2^20 raw latency samples and silently dropped the rest, freezing the
// reported percentiles on the warm-up window: a service that turned slow
// after a million fast requests reported fast percentiles forever. The
// histogram has no cap, so a slow tail arriving after the old cap must
// move the served p99. This test drives the path through the public stats
// op, pre-filling the same registry histogram HandleLine records into.
TEST_F(ServerTest, StatsPercentilesSeeSamplesPastTheOldCap) {
  StartServer();
  constexpr size_t kOldCap = 1u << 20;  // the retired kMaxLatencySamples
  obs::Histogram& latency = registry_.GetHistogram("serve.latency_ms");
  for (size_t i = 0; i < kOldCap; ++i) latency.Record(0.1);

  std::string before = server_->HandleLine("{\"op\":\"stats\"}");
  ASSERT_EQ(before.rfind("{\"ok\":true,\"op\":\"stats\"", 0), 0u) << before;
  EXPECT_LT(JsonNumber(before, "latency_p99_ms"), 1.0);

  // A slow regression arrives after the old cap: 2% of total traffic at
  // 400ms. Under the capped scheme every one of these samples would have
  // been dropped; with the histogram the p99 rank lands in the slow tail.
  size_t slow = kOldCap / 50;
  for (size_t i = 0; i < slow; ++i) latency.Record(400.0);

  std::string after = server_->HandleLine("{\"op\":\"stats\"}");
  double p99 = JsonNumber(after, "latency_p99_ms");
  EXPECT_GT(p99, 300.0) << after;  // ≈400 up to one bucket width (~9%)
  EXPECT_LT(p99, 500.0) << after;
  // Every sample is accounted for: the cap is really gone. (+2 stats ops,
  // minus nothing.)
  EXPECT_EQ(registry_.HistogramSnapshot("serve.latency_ms").count,
            kOldCap + slow + 2);
}

// ------------------------------------------------------------- coalescer

class CoalescerTest : public ServeTest {
 protected:
  void OpenEngine() {
    serve::EngineOptions engine_options;
    engine_options.registry = &registry_;
    auto engine = serve::QueryEngine::Open(WriteBundle(), engine_options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(*engine);
  }

  serve::CoalescerOptions Options(double wait_ms, size_t max_batch = 32) {
    serve::CoalescerOptions options;
    options.max_wait_ms = wait_ms;
    options.max_batch = max_batch;
    options.registry = &registry_;
    return options;
  }

  obs::Registry registry_;
  std::unique_ptr<serve::QueryEngine> engine_;
};

// Field-by-field equality, which for doubles means bit-equality: the
// coalescer's contract is *byte*-identity, not approximate agreement.
void ExpectSameAlignResults(const std::vector<serve::AlignResult>& got,
                            const std::vector<serve::AlignResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].source, want[i].source);
    EXPECT_EQ(got[i].aligned, want[i].aligned);
    EXPECT_EQ(got[i].candidates, want[i].candidates);
    EXPECT_EQ(got[i].index, want[i].index);
  }
}

TEST_F(CoalescerTest, SoloRequestMatchesAlignBatchExactly) {
  OpenEngine();
  serve::AlignCoalescer coalescer(engine_.get(), Options(/*wait_ms=*/0));
  kg::AlignedPair pair = ServedPair();
  std::vector<std::string> sources = {
      Pipeline().dataset.kg1.EntityName(pair.source)};

  auto batched = coalescer.Align(sources, serve::Deadline(5.0));
  auto direct = engine_->AlignBatch(sources, serve::Deadline(5.0));
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  ExpectSameAlignResults(*batched, *direct);
  EXPECT_EQ(registry_.CounterValue("serve.batch.ticks"), 1u);
}

TEST_F(CoalescerTest, ConcurrentCallersShareDispatchesByteIdentically) {
  OpenEngine();
  // A generous hold so every thread below lands in the leader's window;
  // the assertion tolerates a straggler getting its own dispatch anyway.
  serve::AlignCoalescer coalescer(engine_.get(), Options(/*wait_ms=*/100.0));

  std::vector<kg::AlignedPair> pairs = Pipeline().repaired.SortedPairs();
  constexpr size_t kCallers = 4;
  ASSERT_GE(pairs.size(), kCallers);
  std::vector<std::string> names(kCallers);
  for (size_t i = 0; i < kCallers; ++i) {
    names[i] = Pipeline().dataset.kg1.EntityName(pairs[i].source);
  }

  std::vector<std::vector<serve::AlignResult>> rows(kCallers);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kCallers; ++i) {
    threads.emplace_back([&, i] {
      auto result = coalescer.Align({names[i]}, serve::Deadline(5.0));
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      rows[i] = std::move(*result);
    });
  }
  for (auto& thread : threads) thread.join();

  // Every caller got exactly the bytes a solo AlignBatch would produce,
  // no matter which dispatch its row rode.
  for (size_t i = 0; i < kCallers; ++i) {
    auto solo = engine_->AlignBatch({names[i]}, serve::Deadline(5.0));
    ASSERT_TRUE(solo.ok());
    ExpectSameAlignResults(rows[i], *solo);
  }

  // At least two callers shared a dispatch, and the histogram saw every
  // row: coalescing actually happened and accounted for all the work.
  uint64_t ticks = registry_.CounterValue("serve.batch.ticks");
  EXPECT_GE(ticks, 1u);
  EXPECT_LT(ticks, kCallers);
  obs::Histogram::Snapshot sizes =
      registry_.HistogramSnapshot("serve.batch.size");
  EXPECT_EQ(sizes.count, ticks);
  EXPECT_EQ(sizes.sum, static_cast<double>(kCallers));
}

TEST_F(CoalescerTest, UnknownEntityFailsAloneWithAlignBatchStatus) {
  OpenEngine();
  serve::AlignCoalescer coalescer(engine_.get(), Options(/*wait_ms=*/0));
  auto batched = coalescer.Align({"zh/NoSuchEntity"}, serve::Deadline(5.0));
  auto direct = engine_->AlignBatch({"zh/NoSuchEntity"}, serve::Deadline(5.0));
  ASSERT_FALSE(batched.ok());
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(batched.status().ToString(), direct.status().ToString());
  // The failed resolution never reached the index.
  EXPECT_EQ(registry_.CounterValue("serve.batch.ticks"), 0u);
}

TEST_F(CoalescerTest, DrainShedsRequestsThatExpiredInTheBatchWindow) {
  OpenEngine();
  // The hold (80ms) outlives the deadline (20ms): the request is admitted
  // alive, goes stale while the leader waits, and must be shed at drain
  // with AlignBatch's pre-lookup status — and zero index work.
  serve::AlignCoalescer coalescer(engine_.get(), Options(/*wait_ms=*/80.0));
  kg::AlignedPair pair = ServedPair();
  std::string name = Pipeline().dataset.kg1.EntityName(pair.source);

  auto result = coalescer.Align({name}, serve::Deadline(0.02));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(result.status().ToString().find("deadline expired before lookup"),
            std::string::npos);
  EXPECT_EQ(registry_.CounterValue("serve.batch.ticks"), 0u);
}

// ----------------------------------------------------------- async server

// A blocking NDJSON client against the async server, built on the same
// net/ primitives the server uses.
int ConnectOrFail(int port) {
  auto connected = net::ConnectLocal(port);
  EXPECT_TRUE(connected.ok()) << connected.status().ToString();
  return connected.ok() ? *connected : -1;
}

class AsyncClient {
 public:
  explicit AsyncClient(int port)
      : fd_(ConnectOrFail(port)), reader_(fd_) {}
  ~AsyncClient() { Close(); }

  bool connected() const { return fd_ >= 0; }
  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  [[nodiscard]] bool Send(const std::string& line) {
    return net::WriteAll(fd_, line + "\n").ok();
  }

  // One response line, or "" on EOF.
  std::string ReadLine() {
    std::string line;
    bool truncated = false;
    size_t observed = 0;
    if (!reader_.ReadLine(1 << 24, &line, &truncated, &observed)) return "";
    return line;
  }

  // Round trip: one request, its response.
  std::string Ask(const std::string& request) {
    if (!Send(request)) return "";
    return ReadLine();
  }

 private:
  int fd_;
  net::LineReader reader_;
};

class AsyncServerTest : public ServeTest {
 protected:
  void StartAsync(serve::AsyncServerOptions options = {}) {
    serve::EngineOptions engine_options;
    engine_options.registry = &registry_;
    auto engine = serve::QueryEngine::Open(WriteBundle(), engine_options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(*engine);
    // options.server.registry stays nullptr: the async server must share
    // the engine's (injected) registry, like the blocking path does.
    async_ = std::make_unique<serve::AsyncServer>(engine_.get(), options);
    Status started = async_->Start(0);
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  void TearDown() override {
    async_.reset();  // joins loop + workers before the engine dies
    engine_.reset();
    ServeTest::TearDown();
  }

  obs::Registry registry_;
  std::unique_ptr<serve::QueryEngine> engine_;
  std::unique_ptr<serve::AsyncServer> async_;
};

TEST_F(AsyncServerTest, ServedBytesMatchHandleLineForEveryOp) {
  StartAsync();
  kg::AlignedPair pair = ServedPair();
  std::string source = Pipeline().dataset.kg1.EntityName(pair.source);
  std::string target = Pipeline().dataset.kg2.EntityName(pair.target);
  std::vector<kg::AlignedPair> pairs = Pipeline().repaired.SortedPairs();
  ASSERT_GE(pairs.size(), 2u);
  std::string other = Pipeline().dataset.kg1.EntityName(pairs[1].source);

  // The reference: an ordinary blocking Server over the same engine. The
  // async path routes align through the coalescer and everything through
  // the queue and worker pool — none of which may change a single byte.
  serve::Server reference(engine_.get(), serve::ServerOptions{});

  std::vector<std::string> requests = {
      StrFormat("{\"op\":\"align\",\"entity\":\"%s\"}", source.c_str()),
      StrFormat("{\"op\":\"align\",\"entities\":\"%s,%s\"}", source.c_str(),
                other.c_str()),
      StrFormat("{\"op\":\"explain\",\"source\":\"%s\",\"target\":\"%s\"}",
                source.c_str(), target.c_str()),
      StrFormat("{\"op\":\"neighbors\",\"entity\":\"%s\"}", source.c_str()),
      StrFormat("{\"op\":\"repair_status\",\"source\":\"%s\","
                "\"target\":\"%s\"}",
                source.c_str(), target.c_str()),
      "{\"op\":\"align\",\"entity\":\"zh/NoSuchEntity\"}",
      "{\"op\":\"align\"}",
      "{\"op\":\"frobnicate\"}",
      "this is not json",
      // Hostile numeric fields: the checked-parse rejections must also be
      // byte-identical between the async and blocking paths.
      StrFormat("{\"op\":\"align\",\"entity\":\"%s\",\"k\":\"1junk\"}",
                source.c_str()),
      StrFormat("{\"op\":\"neighbors\",\"entity\":\"%s\",\"side\":\"-1\"}",
                source.c_str()),
      StrFormat("{\"op\":\"align\",\"entity\":\"%s\","
                "\"deadline_ms\":\"99999999999999999999\"}",
                source.c_str()),
  };

  AsyncClient client(async_->port());
  ASSERT_TRUE(client.connected());
  for (const std::string& request : requests) {
    // Cold explain cache on both sides, so cache_hit agrees.
    engine_->ClearExplainCache();
    std::string served = client.Ask(request);
    engine_->ClearExplainCache();
    std::string expected = reference.HandleLine(request);
    EXPECT_EQ(served, expected) << "request: " << request;
  }
}

TEST_F(AsyncServerTest, HostileNumericFieldsRejectWithoutAllocating) {
  StartAsync();
  kg::AlignedPair pair = ServedPair();
  std::string source = Pipeline().dataset.kg1.EntityName(pair.source);
  AsyncClient client(async_->port());
  ASSERT_TRUE(client.connected());
  // A huge or garbage k/side/deadline_ms must come back as a structured
  // INVALID_ARGUMENT without the worker ever sizing a buffer from the
  // hostile value (the parse rejects before any allocation can happen).
  for (const char* request :
       {"{\"op\":\"align\",\"entity\":\"%s\",\"k\":\"987654321987\"}",
        "{\"op\":\"align\",\"entity\":\"%s\",\"k\":\"-999999\"}",
        "{\"op\":\"align\",\"entity\":\"%s\",\"k\":\"1e9\"}",
        "{\"op\":\"neighbors\",\"entity\":\"%s\",\"side\":\"2junk\"}",
        "{\"op\":\"align\",\"entity\":\"%s\",\"deadline_ms\":\"-1\"}"}) {
    std::string response =
        client.Ask(StrFormat(request, source.c_str()));
    EXPECT_EQ(response.rfind("{\"ok\":false", 0), 0u) << response;
    EXPECT_NE(response.find("INVALID_ARGUMENT"), std::string::npos)
        << response;
  }
  // The loop (and its counters) survived all five rejections.
  std::string stats = client.Ask("{\"op\":\"stats\"}");
  EXPECT_EQ(stats.rfind("{\"ok\":true,\"op\":\"stats\"", 0), 0u) << stats;
}

TEST_F(AsyncServerTest, StatsCarriesAdmissionCounters) {
  StartAsync();
  AsyncClient client(async_->port());
  ASSERT_TRUE(client.connected());
  std::string stats = client.Ask("{\"op\":\"stats\"}");
  EXPECT_EQ(stats.rfind("{\"ok\":true,\"op\":\"stats\"", 0), 0u) << stats;
  EXPECT_NE(stats.find("\"rejected\":0"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"shed\":0"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"queue_depth\":"), std::string::npos) << stats;
}

TEST_F(AsyncServerTest, FullQueueRejectsImmediatelyWithUnavailable) {
  serve::AsyncServerOptions options;
  options.workers = 1;
  options.queue_capacity = 2;
  // A gate that parks the single worker on its first dequeue, so the
  // queue's fill level is fully under the test's control.
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool worker_parked = false;
  bool gate_open = false;
  options.worker_hook_for_test = [&] {
    std::unique_lock<std::mutex> lock(gate_mu);
    worker_parked = true;
    gate_cv.notify_all();
    gate_cv.wait(lock, [&] { return gate_open; });
  };
  StartAsync(options);

  kg::AlignedPair pair = ServedPair();
  std::string request = StrFormat("{\"op\":\"align\",\"entity\":\"%s\"}",
                                  Pipeline().dataset.kg1.EntityName(
                                      pair.source).c_str());

  AsyncClient client(async_->port());
  ASSERT_TRUE(client.connected());
  // First request: popped by the worker, which parks in the gate.
  ASSERT_TRUE(client.Send(request));
  {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return worker_parked; });
  }
  // The worker is held and the queue is empty: the next two requests
  // fill it, and the two after that must be rejected at admission.
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(client.Send(request));
  {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_open = true;
    gate_cv.notify_all();
  }

  // Responses still arrive in request order: the rejections were
  // generated first but the loop holds them behind the slower worker
  // responses for the earlier sequence numbers.
  for (int i = 0; i < 3; ++i) {
    std::string response = client.ReadLine();
    EXPECT_EQ(response.rfind("{\"ok\":true,\"op\":\"align\"", 0), 0u)
        << "response " << i << ": " << response;
  }
  for (int i = 3; i < 5; ++i) {
    std::string response = client.ReadLine();
    EXPECT_EQ(response.rfind("{\"ok\":false", 0), 0u)
        << "response " << i << ": " << response;
    EXPECT_NE(response.find("UNAVAILABLE"), std::string::npos) << response;
    EXPECT_NE(response.find("queue is full"), std::string::npos) << response;
  }

  EXPECT_EQ(registry_.CounterValue("serve.rejected"), 2u);
  std::string stats = client.Ask("{\"op\":\"stats\"}");
  EXPECT_NE(stats.find("\"rejected\":2"), std::string::npos) << stats;
}

TEST_F(AsyncServerTest, ExpiredRequestIsShedAfterDequeueBeforeParsing) {
  serve::AsyncServerOptions options;
  options.workers = 1;
  options.server.deadline_seconds = 0.05;
  // The second dequeue stalls past the first request's admission
  // deadline; the request it picked up expires in the hook and must be
  // shed before any parsing or engine work.
  std::atomic<int> pops{0};
  options.worker_hook_for_test = [&] {
    if (pops.fetch_add(1) + 1 == 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
    }
  };
  StartAsync(options);

  kg::AlignedPair pair = ServedPair();
  std::string request = StrFormat("{\"op\":\"align\",\"entity\":\"%s\"}",
                                  Pipeline().dataset.kg1.EntityName(
                                      pair.source).c_str());

  AsyncClient client(async_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(request));
  ASSERT_TRUE(client.Send(request));

  std::string first = client.ReadLine();
  EXPECT_EQ(first.rfind("{\"ok\":true,\"op\":\"align\"", 0), 0u) << first;
  std::string second = client.ReadLine();
  EXPECT_EQ(second.rfind("{\"ok\":false", 0), 0u) << second;
  EXPECT_NE(second.find("DEADLINE_EXCEEDED"), std::string::npos) << second;
  EXPECT_NE(second.find("shed from queue"), std::string::npos) << second;

  EXPECT_EQ(registry_.CounterValue("serve.shed"), 1u);
  EXPECT_EQ(registry_.CounterValue("serve.deadline_exceeded"), 1u);
  // A fresh request's deadline starts at its own admission: the server
  // recovered and serves normally.
  std::string third = client.Ask(request);
  EXPECT_EQ(third.rfind("{\"ok\":true,\"op\":\"align\"", 0), 0u) << third;
  std::string stats = client.Ask("{\"op\":\"stats\"}");
  EXPECT_NE(stats.find("\"shed\":1"), std::string::npos) << stats;
}

TEST_F(AsyncServerTest, ShutdownOpAnswersAndDrains) {
  StartAsync();
  kg::AlignedPair pair = ServedPair();
  std::string request = StrFormat("{\"op\":\"align\",\"entity\":\"%s\"}",
                                  Pipeline().dataset.kg1.EntityName(
                                      pair.source).c_str());

  AsyncClient client(async_->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(request));
  ASSERT_TRUE(client.Send("{\"op\":\"shutdown\"}"));
  EXPECT_EQ(client.ReadLine().rfind("{\"ok\":true,\"op\":\"align\"", 0), 0u);
  EXPECT_EQ(client.ReadLine(), "{\"ok\":true,\"op\":\"shutdown\"}");
  async_->Wait();  // returns once the drain completes
  EXPECT_EQ(client.ReadLine(), "");  // server closed the connection
}

TEST_F(AsyncServerTest, ConcurrentClientChurnServesEveryReader) {
  serve::AsyncServerOptions options;
  options.workers = 2;
  StartAsync(options);
  kg::AlignedPair pair = ServedPair();
  std::string align = StrFormat("{\"op\":\"align\",\"entity\":\"%s\"}",
                                Pipeline().dataset.kg1.EntityName(
                                    pair.source).c_str());

  constexpr int kThreads = 4;
  constexpr int kRounds = 5;
  std::atomic<int> answered{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        AsyncClient client(async_->port());
        ASSERT_TRUE(client.connected());
        ASSERT_TRUE(client.Send(align));
        ASSERT_TRUE(client.Send("{\"op\":\"stats\"}"));
        if ((t + round) % 3 == 0) continue;  // vanish without reading
        for (int i = 0; i < 2; ++i) {
          std::string response = client.ReadLine();
          ASSERT_EQ(response.rfind("{\"ok\":true", 0), 0u) << response;
          answered.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_GT(answered.load(), 0);
}

// Swap-under-load over the real TCP path: clients stream align requests
// through the epoll loop + workers + coalescer while another connection
// hot-swaps the engine between two genuinely different bundles. Every
// response must be well-formed and ok — a swap is invisible to in-flight
// traffic except for which version answers. TSAN runs this in CI.
TEST_F(AsyncServerTest, HotSwapUnderConcurrentLoadDropsNothing) {
  serve::AsyncServerOptions options;
  options.workers = 2;
  StartAsync(options);
  std::string a = WriteBundle();
  std::string b = WriteAltBundle();

  std::vector<std::string> requests;
  for (kg::EntityId e = 0; e < Pipeline().dataset.kg1.num_entities(); ++e) {
    requests.push_back(StrFormat(
        "{\"op\":\"align\",\"entity\":\"%s\"}",
        Pipeline().dataset.kg1.EntityName(e).c_str()));
  }
  ASSERT_FALSE(requests.empty());

  constexpr int kClients = 3;
  constexpr int kRounds = 4;
  std::atomic<int> answered{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int round = 0; round < kRounds && !stop.load(); ++round) {
        AsyncClient client(async_->port());
        ASSERT_TRUE(client.connected());
        for (size_t i = 0; i < requests.size(); ++i) {
          std::string response =
              client.Ask(requests[(i + static_cast<size_t>(t)) %
                                  requests.size()]);
          ASSERT_EQ(response.rfind("{\"ok\":true", 0), 0u) << response;
          answered.fetch_add(1);
        }
      }
    });
  }

  std::thread swapper([&] {
    for (int swap = 0; swap < 5; ++swap) {
      AsyncClient client(async_->port());
      ASSERT_TRUE(client.connected());
      std::string response = client.Ask(StrFormat(
          "{\"op\":\"load_snapshot\",\"dir\":\"%s\"}",
          serve::JsonEscape(swap % 2 == 0 ? b : a).c_str()));
      ASSERT_EQ(response.rfind("{\"ok\":true", 0), 0u) << response;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  swapper.join();
  stop.store(true);
  for (std::thread& client : clients) client.join();

  EXPECT_GT(answered.load(), 0);
  EXPECT_EQ(registry_.CounterValue("serve.snapshot.swaps"), 5u);
  EXPECT_EQ(registry_.CounterValue("serve.malformed"), 0u);
}

}  // namespace
}  // namespace exea
