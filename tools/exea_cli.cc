// exea_cli — the command-line entry point to the ExEA toolkit. Works on
// disk-backed datasets in the DBP15K/OpenEA TSV layout (see
// data/dataset_io.h).
//
// Subcommands:
//   generate  --benchmark ZH-EN --scale small --out DIR
//             Generate a synthetic benchmark and write its four TSV files.
//   stats     --dir DIR | --port N
//             Print dataset statistics, or query a running server's
//             {"op":"stats"} endpoint.
//   align     --dir DIR --model Dual-AMN [--inference greedy|mutual|csls|stable]
//             [--out FILE] [--embeddings PREFIX]
//             Train a model, infer alignment, report accuracy; optionally
//             write the predicted alignment TSV and the embedding tables.
//   repair    --dir DIR --model Dual-AMN [--out FILE]
//             [--no-cr1] [--no-cr2] [--no-cr3] [--rounds N]
//             Full ExEA repair; optionally write the repaired alignment.
//   explain   --dir DIR --model Dual-AMN --source NAME [--target NAME]
//             [--format text|dot|json] [--hops 1|2]
//             Explain one pair (default target: the model's prediction).
//   evaluate  --dir DIR --alignment FILE
//             Accuracy of an alignment TSV against the dataset's test gold.
//   audit     --dir DIR --model Dual-AMN [--limit N] [--verbalize]
//             Explain every predicted pair, rank the suspect ones first,
//             and print the review queue (optionally with verbalized
//             explanations).
//   snapshot  --dir DIR --model Dual-AMN --out BUNDLE
//             [--inference greedy|mutual|csls|stable] [--repair] [--rounds N]
//             [--index exact|ivf] [--clusters N] [--nprobe N]
//             Run the offline pipeline once and freeze its state into a
//             versioned, checksummed snapshot bundle (see serve/snapshot.h);
//             --index=ivf also trains and persists the IVF coarse quantizer.
//   serve     --bundle BUNDLE [--port N] [--deadline-ms N] [--cache N]
//             [--topk N] [--index auto|exact|ivf] [--workers N]
//             [--queue N] [--max-conns N] [--max-batch N] [--blocking]
//             Load a snapshot bundle and answer newline-delimited JSON
//             queries on stdin/stdout (or on 127.0.0.1:PORT with --port;
//             the TCP path runs the concurrent async core unless
//             --blocking asks for the single-client loop).
//   bench-recall  [--rows N] [--dim N] [--queries N] [--k N] [--clusters N]
//             [--seed N]
//             Synthetic recall@k vs. QPS sweep: exact scan vs. the IVF
//             index across a range of nprobe values.
//   bench-load  --bundle BUNDLE [--clients N] [--requests N] [--pipeline N]
//             [--op align|explain|stats|mixed] | --port N [--op stats]
//             Concurrent-client load generator against the async serving
//             core (self-hosted from a bundle, or attached to a running
//             server): reports QPS, reject rate, and p50/p99 latency,
//             and fails on any malformed or missing response.
//
// Global flags (any subcommand):
//   --threads N   worker threads for the parallel kernels (default all
//                 hardware threads, 1 = serial; output is identical at any
//                 value — see DESIGN.md "Concurrency model").
//   --help        per-subcommand flag summary (exits 0)
//   --version     print the snapshot format version (exits 0)

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "data/benchmarks.h"
#include "data/dataset_io.h"
#include "emb/model.h"
#include "eval/csls.h"
#include "eval/inference.h"
#include "eval/metrics.h"
#include "explain/audit.h"
#include "explain/exea.h"
#include "explain/export.h"
#include "kg/kg_io.h"
#include "kg/stats.h"
#include "la/matrix_io.h"
#include "la/simd.h"
#include "la/similarity_index.h"
#include "net/socket_io.h"
#include "obs/metrics.h"
#include "repair/pipeline.h"
#include "serve/async_server.h"
#include "serve/engine.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/timer.h"

namespace exea {
namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

const char* const kUsageText =
    "usage: exea_cli <generate|stats|align|repair|explain|"
    "evaluate|audit|snapshot|serve|swap|bench-recall|bench-load> "
    "[--flags]\n"
    "global flags:\n"
    "  --threads N   worker threads for the similarity/CSLS/"
    "explanation kernels\n"
    "                (default: all hardware threads; 1 forces the "
    "serial path;\n"
    "                results are identical at any value)\n"
    "  --help        per-subcommand flag summary (exits 0)\n"
    "  --version     print the snapshot format version (exits 0)\n"
    "(run `exea_cli <subcommand> --help` for per-subcommand flags)\n";

int Usage() {
  std::fprintf(stderr, "%s", kUsageText);
  return 2;
}

// Per-subcommand flag summaries for `exea_cli <subcommand> --help`.
// Returns nullptr for unknown subcommands.
const char* SubcommandHelp(const std::string& command) {
  if (command == "generate") {
    return "exea_cli generate --out DIR [--benchmark ZH-EN] [--scale small]\n"
           "  Generate a synthetic benchmark and write its four TSV files.\n";
  }
  if (command == "stats") {
    return "exea_cli stats --dir DIR [--name NAME]\n"
           "exea_cli stats --port N\n"
           "  Print dataset statistics; with --port, query a running\n"
           "  `exea_cli serve` instance's {\"op\":\"stats\"} endpoint\n"
           "  (request counters, cache hit rates, and the latency\n"
           "  percentiles kept by the obs registry).\n";
  }
  if (command == "align") {
    return "exea_cli align --dir DIR [--model Dual-AMN]\n"
           "  [--inference greedy|mutual|csls|stable] [--epochs N] "
           "[--seed N]\n"
           "  [--out FILE] [--embeddings PREFIX]\n"
           "  Train a model, infer alignment, report accuracy; optionally\n"
           "  write the predicted alignment TSV and the embedding tables.\n";
  }
  if (command == "repair") {
    return "exea_cli repair --dir DIR [--model Dual-AMN] [--out FILE]\n"
           "  [--no-cr1] [--no-cr2] [--no-cr3] [--rounds N] [--hops 1|2]\n"
           "  [--epochs N] [--seed N]\n"
           "  Full ExEA repair; optionally write the repaired alignment.\n";
  }
  if (command == "explain") {
    return "exea_cli explain --dir DIR --source NAME [--target NAME]\n"
           "  [--model Dual-AMN] [--format text|dot|json] [--hops 1|2]\n"
           "  [--epochs N] [--seed N]\n"
           "  Explain one pair (default target: the model's prediction).\n";
  }
  if (command == "evaluate") {
    return "exea_cli evaluate --dir DIR --alignment FILE\n"
           "  Accuracy of an alignment TSV against the dataset's test "
           "gold.\n";
  }
  if (command == "audit") {
    return "exea_cli audit --dir DIR [--model Dual-AMN] [--limit N]\n"
           "  [--verbalize] [--epochs N] [--seed N]\n"
           "  Explain every predicted pair, rank the suspect ones first,\n"
           "  and print the review queue.\n";
  }
  if (command == "snapshot") {
    return "exea_cli snapshot --dir DIR --out BUNDLE [--model Dual-AMN]\n"
           "  [--inference greedy|mutual|csls|stable] [--repair] "
           "[--rounds N]\n"
           "  [--epochs N] [--seed N] [--index exact|ivf] [--clusters N]\n"
           "  [--nprobe N]\n"
           "  Run the offline pipeline (train, infer, optionally repair)\n"
           "  and freeze its state into a versioned, checksummed snapshot\n"
           "  bundle for `exea_cli serve`. --index=ivf additionally trains\n"
           "  the IVF coarse quantizer over the target embeddings and\n"
           "  persists it in the bundle (index.ivf), so serving can probe\n"
           "  --nprobe lists instead of scanning every entity.\n";
  }
  if (command == "serve") {
    return "exea_cli serve --bundle BUNDLE [--port N] [--deadline-ms N]\n"
           "  [--cache N] [--topk N] [--index auto|exact|ivf]\n"
           "  [--shards N] [--resident N]\n"
           "  [--workers N] [--queue N] [--max-conns N] [--max-batch N]\n"
           "  [--blocking]\n"
           "  Load a snapshot bundle and answer newline-delimited JSON\n"
           "  requests on stdin/stdout, one response line per request\n"
           "  (or on 127.0.0.1:PORT with --port). Ops: align, explain,\n"
           "  neighbors, repair_status, stats, load_snapshot,\n"
           "  engine_status, shutdown. --index picks the\n"
           "  align search strategy (auto: ivf when the bundle has one and\n"
           "  the table is large enough); the live choice is echoed in\n"
           "  every align response and the stats op.\n"
           "  With --port the concurrent async core serves: --workers\n"
           "  request threads behind a --queue-bounded admission queue\n"
           "  (full queue => UNAVAILABLE), at most --max-conns clients,\n"
           "  align micro-batched up to --max-batch rows per dispatch.\n"
           "  --blocking falls back to the single-client synchronous\n"
           "  loop; responses are byte-identical either way.\n"
           "  --shards N partitions the target table row-wise across N\n"
           "  per-shard indexes searched in parallel; results are\n"
           "  bit-identical to --shards 1 on the exact path. --resident N\n"
           "  keeps the newest N snapshot versions pinned after hot swaps\n"
           "  (in-flight requests retain older versions until they "
           "drain).\n";
  }
  if (command == "swap") {
    return "exea_cli swap --port N --bundle DIR\n"
           "  Hot-swap a running `exea_cli serve --port N` instance onto\n"
           "  the snapshot bundle at DIR via {\"op\":\"load_snapshot\"}.\n"
           "  Prints the server's response line; exits non-zero if the\n"
           "  swap was rejected (the server keeps serving its current\n"
           "  version on any failure).\n";
  }
  if (command == "bench-recall") {
    return "exea_cli bench-recall [--rows N] [--dim N] [--queries N] "
           "[--k N]\n"
           "  [--clusters N] [--seed N]\n"
           "  Build a clustered synthetic embedding table, train the IVF\n"
           "  index, and sweep nprobe: prints recall@1 / recall@k and QPS\n"
           "  for the exact scan and each probe width.\n";
  }
  if (command == "bench-load") {
    return "exea_cli bench-load --bundle BUNDLE [--clients N] "
           "[--requests N]\n"
           "  [--pipeline N] [--op align|explain|stats|mixed]\n"
           "  [--deadline-ms N] [--workers N] [--queue N] [--max-batch N]\n"
           "  [--swap-bundle DIR] [--swaps N]\n"
           "exea_cli bench-load --port N [--clients N] [--requests N]\n"
           "  [--pipeline N]\n"
           "  Drive --clients concurrent connections, --requests each,\n"
           "  against the async serving core — self-hosted in-process\n"
           "  from --bundle (kernel-assigned port, no port races), or an\n"
           "  already-running server with --port (stats op only).\n"
           "  --pipeline K keeps up to K requests in flight per client.\n"
           "  Prints one machine-greppable result line (QPS, reject and\n"
           "  shed counts, p50/p99 latency) and exits non-zero if any\n"
           "  response is malformed or missing.\n"
           "  --swap-bundle DIR hot-swaps the self-hosted server between\n"
           "  DIR and --bundle --swaps times (default 5) while the load\n"
           "  clients run, proving zero dropped or malformed responses\n"
           "  across version churn; any failed swap fails the run.\n";
  }
  return nullptr;
}

StatusOr<data::EaDataset> LoadFromFlags(const Flags& flags) {
  std::string dir = flags.GetString("dir", "");
  if (dir.empty()) {
    return Status::InvalidArgument("--dir is required");
  }
  return data::LoadDataset(dir, flags.GetString("name", dir));
}

std::unique_ptr<emb::EAModel> ModelFromFlags(const Flags& flags) {
  std::string name = flags.GetString("model", "Dual-AMN");
  for (emb::ModelKind kind :
       {emb::ModelKind::kMTransE, emb::ModelKind::kAlignE,
        emb::ModelKind::kGcnAlign, emb::ModelKind::kDualAmn}) {
    if (emb::ModelKindName(kind) == name) {
      emb::TrainConfig config = emb::DefaultConfigFor(kind);
      if (flags.Has("epochs")) {
        config.epochs = static_cast<size_t>(flags.GetInt("epochs", 0));
      }
      if (flags.Has("seed")) {
        config.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
      }
      return emb::MakeModel(kind, config);
    }
  }
  return nullptr;
}

struct InferenceResult {
  eval::RankedSimilarity ranked;
  kg::AlignmentSet aligned;
};

// The inference dispatch shared by align and snapshot.
StatusOr<InferenceResult> InferAlignment(const emb::EAModel& model,
                                         const data::EaDataset& dataset,
                                         const std::string& inference) {
  if (inference == "csls") {
    InferenceResult result{eval::RankTestEntitiesCsls(model, dataset), {}};
    result.aligned = eval::GreedyAlign(result.ranked);
    return result;
  }
  InferenceResult result{eval::RankTestEntities(model, dataset), {}};
  if (inference == "greedy") {
    result.aligned = eval::GreedyAlign(result.ranked);
  } else if (inference == "mutual") {
    result.aligned = eval::MutualBestAlign(result.ranked);
  } else if (inference == "stable") {
    result.aligned = eval::StableMatchAlign(result.ranked);
  } else {
    return Status::InvalidArgument(
        "unknown --inference (greedy|mutual|csls|stable)");
  }
  return result;
}

int CmdGenerate(const Flags& flags) {
  std::string out = flags.GetString("out", "");
  if (out.empty()) return Fail("--out is required");
  data::EaDataset dataset = data::MakeBenchmark(
      data::BenchmarkFromName(flags.GetString("benchmark", "ZH-EN")),
      data::ScaleFromName(flags.GetString("scale", "small")));
  Status status = data::SaveDataset(dataset, out);
  if (!status.ok()) return Fail(status.ToString());
  std::printf("wrote %s: kg1 %zu triples, kg2 %zu triples, %zu train / %zu "
              "test links\n",
              out.c_str(), dataset.kg1.num_triples(),
              dataset.kg2.num_triples(), dataset.train.size(),
              dataset.test.size());
  return 0;
}

// Connects to a serving exea_cli on 127.0.0.1:`port`, issues one
// {"op":"stats"} request, and prints the raw response line (a JSON
// object; see serve::Server::StatsJson for the payload keys).
int StatsFromServer(int port) {
  auto fd = net::ConnectLocal(port);
  if (!fd.ok()) {
    return Fail(StrFormat("cannot connect to 127.0.0.1:%d "
                          "(is `exea_cli serve --port %d` running?)",
                          port, port));
  }
  if (!net::WriteAll(*fd, "{\"op\":\"stats\"}\n").ok()) {
    ::close(*fd);
    return Fail("cannot send stats request");
  }
  net::LineReader reader(*fd);
  std::string line;
  bool truncated;
  size_t truncated_bytes;
  bool got = reader.ReadLine(1 << 24, &line, &truncated, &truncated_bytes);
  ::close(*fd);
  if (!got || line.empty()) return Fail("no response from server");
  std::printf("%s\n", line.c_str());
  return 0;
}

int CmdStats(const Flags& flags) {
  if (flags.Has("port")) {
    return StatsFromServer(static_cast<int>(flags.GetInt("port", 0)));
  }
  auto dataset = LoadFromFlags(flags);
  if (!dataset.ok()) return Fail(dataset.status().ToString());
  std::printf("KG1: %s\n", kg::ComputeStats(dataset->kg1).ToString().c_str());
  std::printf("KG2: %s\n", kg::ComputeStats(dataset->kg2).ToString().c_str());
  std::printf("links: %zu train, %zu test\n", dataset->train.size(),
              dataset->test.size());
  return 0;
}

int CmdAlign(const Flags& flags) {
  auto dataset = LoadFromFlags(flags);
  if (!dataset.ok()) return Fail(dataset.status().ToString());
  std::unique_ptr<emb::EAModel> model = ModelFromFlags(flags);
  if (model == nullptr) return Fail("unknown --model");
  model->Train(*dataset);

  std::string inference = flags.GetString("inference", "greedy");
  auto inferred = InferAlignment(*model, *dataset, inference);
  if (!inferred.ok()) return Fail(inferred.status().ToString());
  kg::AlignmentSet& aligned = inferred->aligned;
  std::printf("%s + %s inference: %zu pairs, accuracy %.3f\n",
              model->name().c_str(), inference.c_str(), aligned.size(),
              eval::Accuracy(aligned, dataset->test_gold));

  std::string out = flags.GetString("out", "");
  if (!out.empty()) {
    Status status =
        kg::SaveAlignment(aligned, dataset->kg1, dataset->kg2, out);
    if (!status.ok()) return Fail(status.ToString());
    std::printf("wrote %s\n", out.c_str());
  }
  std::string embeddings = flags.GetString("embeddings", "");
  if (!embeddings.empty()) {
    for (const auto& [suffix, side] :
         {std::pair<const char*, kg::KgSide>{"_ent1.txt",
                                             kg::KgSide::kSource},
          {"_ent2.txt", kg::KgSide::kTarget}}) {
      Status status = la::SaveMatrix(model->EntityEmbeddings(side),
                                     embeddings + suffix);
      if (!status.ok()) return Fail(status.ToString());
    }
    std::printf("wrote %s_ent{1,2}.txt\n", embeddings.c_str());
  }
  return 0;
}

int CmdRepair(const Flags& flags) {
  auto dataset = LoadFromFlags(flags);
  if (!dataset.ok()) return Fail(dataset.status().ToString());
  std::unique_ptr<emb::EAModel> model = ModelFromFlags(flags);
  if (model == nullptr) return Fail("unknown --model");
  model->Train(*dataset);

  explain::ExeaConfig config;
  config.hops = static_cast<int>(flags.GetInt("hops", 1));
  explain::ExeaExplainer explainer(*dataset, *model, config);
  repair::RepairOptions options;
  options.enable_cr1 = !flags.Has("no-cr1");
  options.enable_cr2 = !flags.Has("no-cr2");
  options.enable_cr3 = !flags.Has("no-cr3");
  repair::RepairPipeline pipeline(explainer, options);
  size_t rounds = static_cast<size_t>(flags.GetInt("rounds", 1));
  repair::RepairReport report =
      rounds > 1 ? pipeline.RunIterative(rounds) : pipeline.Run();

  std::printf("base accuracy:      %.3f\n", report.base_accuracy);
  std::printf("repaired accuracy:  %.3f  (delta %+.3f)\n",
              report.repaired_accuracy, report.AccuracyGain());
  std::printf("one-to-many:        %zu conflicts, %zu swaps\n",
              report.one_to_many_conflicts, report.one_to_many_swaps);
  std::printf("low-confidence:     %zu removed, %zu swaps, %zu greedy\n",
              report.low_confidence_removed, report.low_confidence_swaps,
              report.greedy_fallback_matches);
  std::printf("cr1 neighbour prunes: %zu\n", report.relation_conflict_prunes);

  std::string out = flags.GetString("out", "");
  if (!out.empty()) {
    Status status = kg::SaveAlignment(report.repaired_alignment,
                                      dataset->kg1, dataset->kg2, out);
    if (!status.ok()) return Fail(status.ToString());
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

int CmdExplain(const Flags& flags) {
  auto dataset = LoadFromFlags(flags);
  if (!dataset.ok()) return Fail(dataset.status().ToString());
  std::unique_ptr<emb::EAModel> model = ModelFromFlags(flags);
  if (model == nullptr) return Fail("unknown --model");
  std::string source_name = flags.GetString("source", "");
  if (source_name.empty()) return Fail("--source is required");
  kg::EntityId source = dataset->kg1.FindEntity(source_name);
  if (source == kg::kInvalidEntity) {
    return Fail("unknown KG1 entity: " + source_name);
  }
  model->Train(*dataset);

  eval::RankedSimilarity ranked = eval::RankTestEntities(*model, *dataset);
  kg::AlignmentSet aligned = eval::GreedyAlign(ranked);

  kg::EntityId target = kg::kInvalidEntity;
  std::string target_name = flags.GetString("target", "");
  if (!target_name.empty()) {
    target = dataset->kg2.FindEntity(target_name);
    if (target == kg::kInvalidEntity) {
      return Fail("unknown KG2 entity: " + target_name);
    }
  } else {
    std::vector<kg::EntityId> targets = aligned.TargetsOf(source);
    if (targets.empty()) {
      return Fail("model did not align " + source_name +
                  "; pass --target explicitly");
    }
    target = targets[0];
  }

  explain::ExeaConfig config;
  config.hops = static_cast<int>(flags.GetInt("hops", 1));
  explain::ExeaExplainer explainer(*dataset, *model, config);
  explain::AlignmentContext context(&aligned, &dataset->train);
  explain::Explanation explanation =
      explainer.Explain(source, target, context);
  explain::Adg adg = explainer.BuildAdg(explanation);

  std::string format = flags.GetString("format", "text");
  if (format == "dot") {
    std::printf("%s\n%s",
                explain::ExplanationToDot(explanation, dataset->kg1,
                                          dataset->kg2)
                    .c_str(),
                explain::AdgToDot(adg, dataset->kg1, dataset->kg2).c_str());
  } else if (format == "json") {
    std::printf(
        "{\"explanation\":%s,\"adg\":%s}\n",
        explain::ExplanationToJson(explanation, dataset->kg1, dataset->kg2)
            .c_str(),
        explain::AdgToJson(adg, dataset->kg1, dataset->kg2).c_str());
  } else {
    std::printf("pair: (%s, %s), similarity %.3f\n",
                dataset->kg1.EntityName(source).c_str(),
                dataset->kg2.EntityName(target).c_str(),
                model->Similarity(source, target));
    std::printf("matches: %zu, confidence %.3f\n",
                explanation.matches.size(), adg.confidence);
    for (const kg::Triple& t : explanation.triples1) {
      std::printf("  KG1 (%s, %s, %s)\n",
                  dataset->kg1.EntityName(t.head).c_str(),
                  dataset->kg1.RelationName(t.rel).c_str(),
                  dataset->kg1.EntityName(t.tail).c_str());
    }
    for (const kg::Triple& t : explanation.triples2) {
      std::printf("  KG2 (%s, %s, %s)\n",
                  dataset->kg2.EntityName(t.head).c_str(),
                  dataset->kg2.RelationName(t.rel).c_str(),
                  dataset->kg2.EntityName(t.tail).c_str());
    }
  }
  return 0;
}

int CmdAudit(const Flags& flags) {
  auto dataset = LoadFromFlags(flags);
  if (!dataset.ok()) return Fail(dataset.status().ToString());
  std::unique_ptr<emb::EAModel> model = ModelFromFlags(flags);
  if (model == nullptr) return Fail("unknown --model");
  model->Train(*dataset);
  eval::RankedSimilarity ranked = eval::RankTestEntities(*model, *dataset);
  kg::AlignmentSet aligned = eval::GreedyAlign(ranked);

  explain::ExeaConfig config;
  explain::ExeaExplainer explainer(*dataset, *model, config);
  explain::AuditReport report =
      explain::AuditAlignment(explainer, aligned, dataset->train);

  std::printf("audited %zu pairs: %zu suspect, mean confidence %.3f\n",
              report.entries.size(), report.suspect_count,
              report.mean_confidence);
  std::printf("confidence histogram (0.0..1.0): ");
  for (size_t count : report.confidence_histogram) {
    std::printf("%zu ", count);
  }
  std::printf("\n\n");

  size_t limit = static_cast<size_t>(flags.GetInt("limit", 10));
  bool verbalize = flags.Has("verbalize");
  explain::AlignmentContext context(&aligned, &dataset->train);
  for (size_t i = 0; i < std::min(limit, report.entries.size()); ++i) {
    const explain::AuditEntry& entry = report.entries[i];
    std::string flags_text;
    for (explain::AuditFlag flag : entry.flags) {
      if (!flags_text.empty()) flags_text += ",";
      flags_text += explain::AuditFlagName(flag);
    }
    std::printf("#%zu (%s, %s)  sim %.3f  conf %.3f  matches %zu  [%s]\n",
                i + 1, dataset->kg1.EntityName(entry.source).c_str(),
                dataset->kg2.EntityName(entry.target).c_str(),
                entry.similarity, entry.confidence, entry.matches,
                flags_text.empty() ? "ok" : flags_text.c_str());
    if (verbalize) {
      explain::Explanation explanation =
          explainer.Explain(entry.source, entry.target, context);
      explain::Adg adg = explainer.BuildAdg(explanation);
      std::printf("%s\n",
                  explain::VerbalizeExplanation(explanation, adg,
                                                dataset->kg1, dataset->kg2)
                      .c_str());
    }
  }
  return 0;
}

int CmdEvaluate(const Flags& flags) {
  auto dataset = LoadFromFlags(flags);
  if (!dataset.ok()) return Fail(dataset.status().ToString());
  std::string path = flags.GetString("alignment", "");
  if (path.empty()) return Fail("--alignment is required");
  auto alignment = kg::LoadAlignment(path, dataset->kg1, dataset->kg2);
  if (!alignment.ok()) return Fail(alignment.status().ToString());
  std::printf("pairs:    %zu\n", alignment->size());
  std::printf("accuracy: %.3f\n",
              eval::Accuracy(*alignment, dataset->test_gold));
  std::printf("1-to-1:   %s\n", alignment->IsOneToOne() ? "yes" : "no");
  return 0;
}

int CmdSnapshot(const Flags& flags) {
  std::string out = flags.GetString("out", "");
  if (out.empty()) return Fail("--out is required");
  std::string index = flags.GetString("index", "exact");
  if (index != "exact" && index != "ivf") {
    return Fail("--index must be exact or ivf");
  }
  auto dataset = LoadFromFlags(flags);
  if (!dataset.ok()) return Fail(dataset.status().ToString());
  std::unique_ptr<emb::EAModel> model = ModelFromFlags(flags);
  if (model == nullptr) return Fail("unknown --model");
  model->Train(*dataset);

  std::string inference = flags.GetString("inference", "greedy");
  auto inferred = InferAlignment(*model, *dataset, inference);
  if (!inferred.ok()) return Fail(inferred.status().ToString());

  serve::SnapshotBundle bundle;
  bundle.meta.model_name = model->name();
  bundle.meta.dataset_name =
      flags.GetString("name", flags.GetString("dir", ""));
  bundle.meta.inference = inference;
  bundle.meta.has_relation_embeddings = model->HasRelationEmbeddings();
  bundle.meta.has_repair = flags.Has("repair");
  bundle.meta.index = index;
  bundle.emb1 = model->EntityEmbeddings(kg::KgSide::kSource);
  bundle.emb2 = model->EntityEmbeddings(kg::KgSide::kTarget);
  if (index == "ivf") {
    la::IvfOptions ivf_options;
    ivf_options.num_clusters =
        static_cast<size_t>(flags.GetInt("clusters", 0));
    ivf_options.nprobe = static_cast<size_t>(flags.GetInt("nprobe", 8));
    if (flags.Has("seed")) {
      ivf_options.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
    }
    bundle.ivf = la::TrainIvfIndex(bundle.emb2, ivf_options);
    std::printf("trained ivf index: %zu clusters over %zu entities, "
                "nprobe %u\n",
                bundle.ivf.centroids.rows(), bundle.emb2.rows(),
                bundle.ivf.nprobe);
  }
  if (bundle.meta.has_relation_embeddings) {
    bundle.rel1 = model->RelationEmbeddings(kg::KgSide::kSource);
    bundle.rel2 = model->RelationEmbeddings(kg::KgSide::kTarget);
  }
  bundle.alignment = inferred->aligned;
  if (bundle.meta.has_repair) {
    explain::ExeaConfig config;
    explain::ExeaExplainer explainer(*dataset, *model, config);
    repair::RepairPipeline pipeline(explainer, repair::RepairOptions{});
    size_t rounds = static_cast<size_t>(flags.GetInt("rounds", 1));
    repair::RepairReport report =
        rounds > 1 ? pipeline.RunIterative(rounds)
                   : pipeline.Run(inferred->aligned, inferred->ranked);
    bundle.repaired = report.repaired_alignment;
    std::printf("repair: accuracy %.3f -> %.3f\n", report.base_accuracy,
                report.repaired_accuracy);
  } else {
    bundle.repaired = inferred->aligned;
  }
  // Move the dataset in only after repair — the explainer above borrows it.
  bundle.dataset = std::move(*dataset);

  Status status = serve::WriteSnapshot(bundle, out);
  if (!status.ok()) return Fail(status.ToString());
  std::printf(
      "wrote snapshot %s: format v%d, %s + %s, index %s, %zu aligned "
      "pairs, %zu served pairs%s\n",
      out.c_str(), bundle.meta.format_version,
      bundle.meta.model_name.c_str(), inference.c_str(),
      bundle.meta.index.c_str(), bundle.alignment.size(),
      bundle.repaired.size(), bundle.meta.has_repair ? " (repaired)" : "");
  return 0;
}

int CmdServe(const Flags& flags) {
  std::string bundle_dir = flags.GetString("bundle", "");
  if (bundle_dir.empty()) return Fail("--bundle is required");
  serve::EngineOptions engine_options;
  engine_options.explain_cache_capacity =
      static_cast<size_t>(flags.GetInt("cache", 256));
  engine_options.top_k = static_cast<size_t>(flags.GetInt("topk", 5));
  engine_options.index_policy = flags.GetString("index", "auto");
  engine_options.shards = static_cast<size_t>(flags.GetInt("shards", 1));
  engine_options.max_resident_versions =
      static_cast<size_t>(flags.GetInt("resident", 2));
  auto engine = serve::QueryEngine::Open(bundle_dir, engine_options);
  if (!engine.ok()) return Fail(engine.status().ToString());
  {
    std::shared_ptr<const serve::ServingState> state =
        (*engine)->AcquireState();
    std::fprintf(stderr,
                 "serving %s (%s, %zu pairs, index %s over %zu "
                 "entities, %zu shard%s, epoch %llu)\n",
                 bundle_dir.c_str(),
                 state->bundle().meta.model_name.c_str(),
                 state->bundle().repaired.size(), state->index().name(),
                 state->index().size(), state->shards(),
                 state->shards() == 1 ? "" : "s",
                 static_cast<unsigned long long>(state->epoch()));
  }

  serve::ServerOptions server_options;
  server_options.deadline_seconds =
      static_cast<double>(flags.GetInt("deadline-ms", 5000)) / 1e3;
  if (flags.Has("port")) {
    int port = static_cast<int>(flags.GetInt("port", 0));
    if (flags.Has("blocking")) {
      serve::Server server(engine->get(), server_options);
      Status status = server.ServeTcp(port);
      if (!status.ok()) return Fail(status.ToString());
      return 0;
    }
    serve::AsyncServerOptions async_options;
    async_options.server = server_options;
    async_options.workers = static_cast<size_t>(flags.GetInt("workers", 4));
    async_options.queue_capacity =
        static_cast<size_t>(flags.GetInt("queue", 1024));
    async_options.max_connections =
        static_cast<size_t>(flags.GetInt("max-conns", 256));
    async_options.max_batch =
        static_cast<size_t>(flags.GetInt("max-batch", 32));
    serve::AsyncServer server(engine->get(), async_options);
    Status status = server.Start(port);
    if (!status.ok()) return Fail(status.ToString());
    std::fprintf(stderr,
                 "listening on 127.0.0.1:%d (async: %zu workers, queue %zu, "
                 "max %zu conns)\n",
                 server.port(), async_options.workers,
                 async_options.queue_capacity, async_options.max_connections);
    server.Wait();
    std::fprintf(stderr, "server exiting; final stats: %s\n",
                 server.server().StatsJson().c_str());
    return 0;
  }
  // stdin/stdout keeps the synchronous loop: one caller, one pipe, no
  // reason for an event loop.
  serve::Server server(engine->get(), server_options);
  server.Serve(std::cin, std::cout);
  return 0;
}

// Synthetic recall@k vs. QPS sweep. The table is a mixture of Gaussian
// clusters (entity embeddings trained for alignment are strongly
// clustered, which is exactly the structure IVF exploits); queries are
// noisy copies of random table rows, mimicking a counterpart lookup.
int CmdBenchRecall(const Flags& flags) {
  size_t rows = static_cast<size_t>(flags.GetInt("rows", 20000));
  size_t dim = static_cast<size_t>(flags.GetInt("dim", 64));
  size_t num_queries = static_cast<size_t>(flags.GetInt("queries", 256));
  size_t k = static_cast<size_t>(flags.GetInt("k", 10));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  if (rows == 0 || dim == 0 || num_queries == 0 || k == 0) {
    return Fail("--rows/--dim/--queries/--k must all be positive");
  }

  Rng rng(seed);
  size_t data_centers = std::max<size_t>(
      4, static_cast<size_t>(std::sqrt(static_cast<double>(rows))));
  la::Matrix centers(data_centers, dim);
  centers.FillNormal(rng, 1.0f);
  la::Matrix table(rows, dim);
  for (size_t i = 0; i < rows; ++i) {
    const float* c = centers.Row(i % data_centers);
    float* dst = table.Row(i);
    for (size_t d = 0; d < dim; ++d) {
      dst[d] = c[d] + 0.15f * static_cast<float>(rng.Normal());
    }
  }
  la::Matrix queries(num_queries, dim);
  for (size_t q = 0; q < num_queries; ++q) {
    const float* src = table.Row(rng.UniformInt(rows));
    float* dst = queries.Row(q);
    for (size_t d = 0; d < dim; ++d) {
      dst[d] = src[d] + 0.05f * static_cast<float>(rng.Normal());
    }
  }

  la::IvfOptions ivf_options;
  ivf_options.num_clusters =
      static_cast<size_t>(flags.GetInt("clusters", 0));
  ivf_options.seed = seed;
  WallTimer train_timer;
  la::IvfIndexData ivf_data = la::TrainIvfIndex(table, ivf_options);
  double train_seconds = train_timer.ElapsedSeconds();

  la::ExactIndex exact(&table);
  WallTimer exact_timer;
  auto truth = exact.TopKAll(queries, k);
  double exact_seconds = exact_timer.ElapsedSeconds();
  double exact_qps = static_cast<double>(num_queries) / exact_seconds;

  std::printf("table %zux%zu, %zu queries, k=%zu, simd=%s\n", rows, dim,
              num_queries, k,
              la::SimdLevelName(la::ActiveSimdLevel()));
  std::printf("ivf: %zu clusters, trained in %.2fs\n",
              ivf_data.centroids.rows(), train_seconds);
  std::printf("%-8s %9s %9s %12s %9s\n", "index", "recall@1",
              StrFormat("recall@%zu", k).c_str(), "QPS", "speedup");
  std::printf("%-8s %9.4f %9.4f %12.0f %8.2fx\n", "exact", 1.0, 1.0,
              exact_qps, 1.0);

  la::IvfIndex ivf(&table, &ivf_data);
  for (size_t nprobe = 1; nprobe <= ivf.num_clusters(); nprobe *= 2) {
    ivf.set_nprobe(nprobe);
    WallTimer timer;
    auto got = ivf.TopKAll(queries, k);
    double seconds = timer.ElapsedSeconds();
    size_t hit1 = 0;
    size_t hitk = 0;
    for (size_t q = 0; q < num_queries; ++q) {
      if (!truth[q].empty() && !got[q].empty() &&
          got[q][0].index == truth[q][0].index) {
        ++hit1;
      }
      for (const la::ScoredIndex& t : truth[q]) {
        for (const la::ScoredIndex& g : got[q]) {
          if (g.index == t.index) {
            ++hitk;
            break;
          }
        }
      }
    }
    double denom = static_cast<double>(num_queries);
    double qps = denom / seconds;
    std::printf("ivf/%-4zu %9.4f %9.4f %12.0f %8.2fx\n", nprobe,
                static_cast<double>(hit1) / denom,
                static_cast<double>(hitk) /
                    (denom * static_cast<double>(std::min(k, rows))),
                qps, qps / exact_qps);
    if (nprobe == ivf.num_clusters()) break;
  }
  return 0;
}

// ------------------------------------------------------------ bench-load

// One client's verdicts over its responses. Latency is measured per
// request, send to response, via a FIFO of send timestamps (exact in
// lockstep mode, and still per-request under --pipeline).
struct LoadTally {
  size_t sent = 0;
  size_t received = 0;
  size_t ok = 0;
  size_t unavailable = 0;        // queue-full rejections
  size_t deadline_exceeded = 0;  // sheds + compute timeouts
  size_t other_errors = 0;
  size_t malformed = 0;          // response that is not a protocol line
  std::vector<double> per_request_ms;
};

void ClassifyResponse(const std::string& line, LoadTally& tally) {
  ++tally.received;
  if (StartsWith(line, "{\"ok\":true")) {
    ++tally.ok;
  } else if (StartsWith(line, "{\"ok\":false")) {
    if (line.find("\"UNAVAILABLE\"") != std::string::npos) {
      ++tally.unavailable;
    } else if (line.find("\"DEADLINE_EXCEEDED\"") != std::string::npos) {
      ++tally.deadline_exceeded;
    } else {
      ++tally.other_errors;
    }
  } else {
    ++tally.malformed;
  }
}

// Runs one connection: sends `requests` (keeping up to `pipeline` in
// flight), reads one response line per request, tallies verdicts.
void RunLoadClient(int port, const std::vector<std::string>& requests,
                   size_t pipeline, LoadTally& tally) {
  auto fd = net::ConnectLocal(port);
  if (!fd.ok()) return;  // sent stays 0; the caller sees the shortfall
  net::LineReader reader(*fd);
  std::deque<WallTimer> in_flight;
  size_t next_send = 0;
  size_t next_read = 0;
  while (next_read < requests.size()) {
    while (next_send < requests.size() &&
           next_send - next_read < pipeline) {
      if (!net::WriteAll(*fd, requests[next_send] + "\n").ok()) {
        ::close(*fd);
        return;
      }
      in_flight.emplace_back();
      ++next_send;
      ++tally.sent;
    }
    std::string line;
    bool truncated;
    size_t truncated_bytes;
    if (!reader.ReadLine(1 << 24, &line, &truncated, &truncated_bytes)) {
      break;  // early EOF: received < sent fails the run
    }
    tally.per_request_ms.push_back(in_flight.front().ElapsedMillis());
    in_flight.pop_front();
    ClassifyResponse(line, tally);
    ++next_read;
  }
  ::close(*fd);
}

// Hot-swaps a running server onto a new bundle: one load_snapshot
// request, one response line echoed to stdout. The server keeps serving
// its current version on any failure, so a non-zero exit here never
// means an outage.
int CmdSwap(const Flags& flags) {
  if (!flags.Has("port")) return Fail("--port is required");
  int port = static_cast<int>(flags.GetInt("port", 0));
  std::string bundle = flags.GetString("bundle", "");
  if (bundle.empty()) return Fail("--bundle is required");

  auto fd = net::ConnectLocal(port);
  if (!fd.ok()) {
    return Fail(StrFormat("cannot connect to 127.0.0.1:%d "
                          "(is `exea_cli serve --port %d` running?)",
                          port, port));
  }
  std::string request = "{\"op\":\"load_snapshot\",\"dir\":\"" +
                        serve::JsonEscape(bundle) + "\"}\n";
  if (!net::WriteAll(*fd, request).ok()) {
    ::close(*fd);
    return Fail("cannot send load_snapshot request");
  }
  net::LineReader reader(*fd);
  std::string line;
  bool truncated;
  size_t truncated_bytes;
  bool got = reader.ReadLine(1 << 20, &line, &truncated, &truncated_bytes);
  ::close(*fd);
  if (!got || line.empty()) return Fail("no response from server");
  std::printf("%s\n", line.c_str());
  if (line.find("\"ok\":true") == std::string::npos) {
    return Fail("swap rejected; the server kept its current snapshot");
  }
  return 0;
}

int CmdBenchLoad(const Flags& flags) {
  size_t clients = static_cast<size_t>(flags.GetInt("clients", 8));
  size_t requests = static_cast<size_t>(flags.GetInt("requests", 50));
  size_t pipeline = static_cast<size_t>(flags.GetInt("pipeline", 1));
  if (clients == 0 || requests == 0 || pipeline == 0) {
    return Fail("--clients/--requests/--pipeline must all be positive");
  }

  // Two modes: attach to a running server (--port; stats op only, the
  // bench knows no entity names), or self-host the async core from a
  // bundle on a kernel-assigned port — no port races, which is what the
  // CI smoke uses.
  std::unique_ptr<serve::QueryEngine> engine;
  std::unique_ptr<serve::AsyncServer> hosted;
  int port = 0;
  std::string op = flags.GetString("op", "");
  std::vector<std::string> align_entities;
  std::vector<std::pair<std::string, std::string>> explain_pairs;

  std::string bundle_dir = flags.GetString("bundle", "");
  if (bundle_dir.empty()) {
    if (!flags.Has("port")) return Fail("--bundle or --port is required");
    port = static_cast<int>(flags.GetInt("port", 0));
    if (op.empty()) op = "stats";
    if (op != "stats") {
      return Fail("--port mode supports only --op stats "
                  "(use --bundle to self-host with entity traffic)");
    }
  } else {
    if (op.empty()) op = "align";
    serve::EngineOptions engine_options;
    engine_options.explain_cache_capacity =
        static_cast<size_t>(flags.GetInt("cache", 256));
    engine_options.top_k = static_cast<size_t>(flags.GetInt("topk", 5));
    engine_options.index_policy = flags.GetString("index", "auto");
    auto opened = serve::QueryEngine::Open(bundle_dir, engine_options);
    if (!opened.ok()) return Fail(opened.status().ToString());
    engine = std::move(*opened);

    // Pin the initial serving state for the duration of harvest; the
    // request streams stay valid across hot swaps because entity names
    // are resolved per request against whatever version is live.
    std::shared_ptr<const serve::ServingState> state = engine->AcquireState();
    const serve::SnapshotBundle& bundle = state->bundle();
    for (const kg::AlignedPair& pair : bundle.repaired.SortedPairs()) {
      align_entities.push_back(bundle.dataset.kg1.EntityName(pair.source));
      explain_pairs.emplace_back(bundle.dataset.kg1.EntityName(pair.source),
                                 bundle.dataset.kg2.EntityName(pair.target));
    }
    if (align_entities.empty()) {
      for (kg::EntityId e = 0; e < bundle.dataset.kg1.num_entities(); ++e) {
        align_entities.push_back(bundle.dataset.kg1.EntityName(e));
      }
    }
    if (align_entities.empty() && op != "stats") {
      return Fail("bundle has no entities to query");
    }
    if (explain_pairs.empty() && (op == "explain" || op == "mixed")) {
      return Fail("bundle has no aligned pairs for --op " + op);
    }

    serve::AsyncServerOptions async_options;
    async_options.server.deadline_seconds =
        static_cast<double>(flags.GetInt("deadline-ms", 5000)) / 1e3;
    async_options.workers = static_cast<size_t>(flags.GetInt("workers", 4));
    async_options.queue_capacity =
        static_cast<size_t>(flags.GetInt("queue", 1024));
    async_options.max_batch =
        static_cast<size_t>(flags.GetInt("max-batch", 32));
    hosted = std::make_unique<serve::AsyncServer>(engine.get(),
                                                  async_options);
    Status started = hosted->Start(0);
    if (!started.ok()) return Fail(started.ToString());
    port = hosted->port();
  }

  // Optional hot-swap churn: a side thread alternates the self-hosted
  // server between --swap-bundle and --bundle while the load clients
  // run, so the run proves that version swaps drop nothing.
  std::string swap_bundle = flags.GetString("swap-bundle", "");
  size_t swaps = static_cast<size_t>(flags.GetInt("swaps", 5));
  if (!swap_bundle.empty() && hosted == nullptr) {
    return Fail("--swap-bundle requires self-hosted mode (--bundle)");
  }

  // Deterministic request streams: client c's i-th request walks the
  // entity list at a client-specific stride, so concurrent clients hit
  // distinct entities (real batches, not one cached row).
  auto request_for = [&](size_t client, size_t i) -> std::string {
    std::string kind = op;
    if (op == "mixed") {
      switch (i % 3) {
        case 0: kind = "align"; break;
        case 1: kind = "explain"; break;
        default: kind = "stats"; break;
      }
    }
    size_t pick = client * requests + i;
    if (kind == "align") {
      const std::string& name =
          align_entities[pick % align_entities.size()];
      return "{\"op\":\"align\",\"entity\":\"" + serve::JsonEscape(name) +
             "\"}";
    }
    if (kind == "explain") {
      const auto& pair = explain_pairs[pick % explain_pairs.size()];
      return "{\"op\":\"explain\",\"source\":\"" +
             serve::JsonEscape(pair.first) + "\",\"target\":\"" +
             serve::JsonEscape(pair.second) + "\"}";
    }
    return "{\"op\":\"stats\"}";
  };

  std::vector<std::vector<std::string>> streams(clients);
  for (size_t c = 0; c < clients; ++c) {
    streams[c].reserve(requests);
    for (size_t i = 0; i < requests; ++i) {
      streams[c].push_back(request_for(c, i));
    }
  }

  std::vector<LoadTally> tallies(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  WallTimer wall;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      RunLoadClient(port, streams[c], pipeline, tallies[c]);
    });
  }
  std::atomic<size_t> swaps_done{0};
  std::atomic<size_t> swap_failures{0};
  std::thread swapper;
  if (!swap_bundle.empty()) {
    swapper = std::thread([&] {
      for (size_t i = 0; i < swaps; ++i) {
        // Alternate between the two bundles so every swap installs a
        // genuinely different version, not a no-op reload.
        const std::string& dir = (i % 2 == 0) ? swap_bundle : bundle_dir;
        bool ok = false;
        auto fd = net::ConnectLocal(port);
        if (fd.ok()) {
          std::string request = "{\"op\":\"load_snapshot\",\"dir\":\"" +
                                serve::JsonEscape(dir) + "\"}\n";
          if (net::WriteAll(*fd, request).ok()) {
            net::LineReader reader(*fd);
            std::string line;
            bool truncated;
            size_t truncated_bytes;
            if (reader.ReadLine(1 << 20, &line, &truncated,
                                &truncated_bytes)) {
              ok = line.find("\"ok\":true") != std::string::npos;
            }
          }
          ::close(*fd);
        }
        if (ok) {
          swaps_done.fetch_add(1);
        } else {
          swap_failures.fetch_add(1);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (swapper.joinable()) swapper.join();
  double seconds = wall.ElapsedSeconds();

  LoadTally total;
  std::vector<double> latencies;
  for (const LoadTally& tally : tallies) {
    total.sent += tally.sent;
    total.received += tally.received;
    total.ok += tally.ok;
    total.unavailable += tally.unavailable;
    total.deadline_exceeded += tally.deadline_exceeded;
    total.other_errors += tally.other_errors;
    total.malformed += tally.malformed;
    latencies.insert(latencies.end(), tally.per_request_ms.begin(),
                     tally.per_request_ms.end());
  }
  if (hosted != nullptr) hosted->Shutdown();

  size_t expected = clients * requests;
  size_t missing = expected - std::min(expected, total.received);
  double qps = seconds > 0 ? static_cast<double>(total.received) / seconds
                           : 0.0;
  std::printf(
      "bench-load: op=%s clients=%zu requests=%zu pipeline=%zu sent=%zu "
      "responses=%zu ok=%zu rejected=%zu deadline_exceeded=%zu errors=%zu "
      "malformed=%zu missing=%zu qps=%.1f p50_ms=%.3f p99_ms=%.3f "
      "wall_s=%.2f\n",
      op.c_str(), clients, requests, pipeline, total.sent, total.received,
      total.ok, total.unavailable, total.deadline_exceeded,
      total.other_errors, total.malformed, missing, qps,
      obs::NearestRankQuantile(latencies, 0.5),
      obs::NearestRankQuantile(latencies, 0.99), seconds);
  if (!swap_bundle.empty()) {
    std::printf("bench-load-swaps: attempted=%zu ok=%zu failed=%zu\n",
                swaps, swaps_done.load(), swap_failures.load());
  }
  if (total.malformed > 0 || missing > 0) {
    return Fail(StrFormat("load run unhealthy: %zu malformed, %zu missing "
                          "responses",
                          total.malformed, missing));
  }
  if (swap_failures.load() > 0) {
    return Fail(StrFormat("load run unhealthy: %zu of %zu hot swaps failed",
                          swap_failures.load(), swaps));
  }
  return 0;
}

int Main(int argc, char** argv) {
  SetMinLogLevel(LogLevel::kWarning);
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) return Fail(flags.status().ToString());
  int64_t threads = flags->GetInt("threads", 0);
  if (threads < 0) return Fail("--threads must be >= 0 (0 = hardware)");
  util::SetThreadCount(static_cast<size_t>(threads));
  if (flags->Has("version")) {
    std::printf("exea_cli snapshot format version %d\n",
                serve::kSnapshotFormatVersion);
    return 0;
  }
  if (flags->positional().empty()) {
    if (flags->Has("help")) {
      std::printf("%s", kUsageText);
      return 0;
    }
    return Usage();
  }
  const std::string& command = flags->positional()[0];
  if (flags->Has("help")) {
    const char* help = SubcommandHelp(command);
    if (help == nullptr) return Usage();
    std::printf("%s", help);
    return 0;
  }
  if (command == "generate") return CmdGenerate(*flags);
  if (command == "stats") return CmdStats(*flags);
  if (command == "align") return CmdAlign(*flags);
  if (command == "repair") return CmdRepair(*flags);
  if (command == "explain") return CmdExplain(*flags);
  if (command == "evaluate") return CmdEvaluate(*flags);
  if (command == "audit") return CmdAudit(*flags);
  if (command == "snapshot") return CmdSnapshot(*flags);
  if (command == "serve") return CmdServe(*flags);
  if (command == "swap") return CmdSwap(*flags);
  if (command == "bench-recall") return CmdBenchRecall(*flags);
  if (command == "bench-load") return CmdBenchLoad(*flags);
  return Usage();
}

}  // namespace
}  // namespace exea

int main(int argc, char** argv) { return exea::Main(argc, argv); }
