#include "explain/path_embedding.h"

#include "util/logging.h"

namespace exea::explain {

la::Vec PathEmbedding(const kg::RelationPath& path,
                      const la::Matrix& entity_embeddings,
                      const la::Matrix& relation_embeddings) {
  EXEA_CHECK(!path.steps.empty());
  EXEA_CHECK_EQ(entity_embeddings.cols(), relation_embeddings.cols());
  size_t dim = entity_embeddings.cols();
  float n = static_cast<float>(path.length());

  la::Vec entity_part(dim, 0.0f);
  la::Vec relation_part(dim, 0.0f);

  // Entity mean: the central entity plus internal entities (all step
  // endpoints except the last one).
  la::Axpy(1.0f, entity_embeddings.Row(path.source), entity_part.data(), dim);
  for (size_t i = 0; i + 1 < path.steps.size(); ++i) {
    la::Axpy(1.0f, entity_embeddings.Row(path.steps[i].to),
             entity_part.data(), dim);
  }
  la::Scale(1.0f / n, entity_part);

  // Relation mean, direction-signed.
  for (const kg::PathStep& step : path.steps) {
    float sign = step.outgoing ? 1.0f : -1.0f;
    la::Axpy(sign, relation_embeddings.Row(step.rel), relation_part.data(),
             dim);
  }
  la::Scale(1.0f / n, relation_part);

  return la::Concat(entity_part, relation_part);
}

}  // namespace exea::explain
