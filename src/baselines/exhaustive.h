// The "naive method" the paper's Section III-A motivation discusses and
// rejects for exponential cost: treat each triple as a feature and search
// subsets directly for the smallest one that preserves the model's
// prediction (per the Section II definition of an EA explanation).
//
// Exponential in the candidate count, so it only runs when the candidate
// set is small (<= max_features); above that it falls back to a greedy
// forward selection. Useful as a ground-truth reference for evaluating the
// fast methods on small instances, and as a living illustration of *why*
// ExEA's matching-based shortcut matters.

#ifndef EXEA_BASELINES_EXHAUSTIVE_H_
#define EXEA_BASELINES_EXHAUSTIVE_H_

#include "baselines/explainer.h"
#include "baselines/perturbation.h"

namespace exea::baselines {

class ExhaustiveExplainer : public Explainer {
 public:
  // `threshold_ratio`: a subset preserves the prediction when its
  // reconstructed similarity reaches threshold_ratio * full similarity.
  ExhaustiveExplainer(const PerturbedEmbedder* embedder,
                      size_t max_features = 16,
                      double threshold_ratio = 0.95)
      : embedder_(embedder),
        max_features_(max_features),
        threshold_ratio_(threshold_ratio) {}

  std::string name() const override { return "Exhaustive"; }

  // Ignores `budget` when exhaustive search applies (it returns the
  // *minimal* preserving subset); the greedy fallback honours it.
  ExplainerResult Explain(kg::EntityId e1, kg::EntityId e2,
                          const std::vector<kg::Triple>& candidates1,
                          const std::vector<kg::Triple>& candidates2,
                          size_t budget) override;

  // Number of model evaluations spent by the last Explain call — the
  // cost the paper's motivation warns about.
  size_t last_evaluations() const { return last_evaluations_; }

 private:
  const PerturbedEmbedder* embedder_;
  size_t max_features_;
  double threshold_ratio_;
  size_t last_evaluations_ = 0;
};

}  // namespace exea::baselines

#endif  // EXEA_BASELINES_EXHAUSTIVE_H_
