#include "net/event_loop.h"

#include <errno.h>
#include <string.h>
#include <algorithm>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "net/socket_io.h"
#include "util/check.h"
#include "util/string_util.h"

namespace exea::net {
namespace {

// epoll user-data tags for the two non-connection fds; connection ids
// start above them.
constexpr uint64_t kListenerTag = 1;
constexpr uint64_t kWakeTag = 2;
constexpr uint64_t kFirstConnId = 3;

constexpr int kMaxEvents = 64;
constexpr int kPollMillis = 100;  // bounds drain/stop latency

}  // namespace

EventLoop::EventLoop(const EventLoopOptions& options, LineHandler on_line)
    : options_(options),
      on_line_(std::move(on_line)),
      registry_(options.registry != nullptr ? options.registry
                                            : &obs::Registry::Global()),
      next_conn_id_(kFirstConnId),
      accepted_(registry_->GetCounter("net.accepted")),
      conn_rejected_(registry_->GetCounter("net.conn_rejected")),
      conn_closed_(registry_->GetCounter("net.conn_closed")),
      lines_in_(registry_->GetCounter("net.lines_in")),
      responses_out_(registry_->GetCounter("net.responses_out")),
      responses_dropped_(registry_->GetCounter("net.responses_dropped")),
      partial_writes_(registry_->GetCounter("net.partial_writes")),
      conns_gauge_(registry_->GetGauge("net.connections")) {
  EXEA_CHECK(on_line_ != nullptr) << "EventLoop needs a line handler";
}

EventLoop::~EventLoop() {
  for (auto& [id, conn] : conns_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  if (listener_ >= 0) ::close(listener_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::Listen(int port) {
  EXEA_CHECK_EQ(epoll_fd_, -1) << "Listen called twice";
  auto listener = ListenOn(port, kListenBacklog);
  if (!listener.ok()) return listener.status();
  listener_ = *listener;
  Status nonblocking = SetNonBlocking(listener_);
  if (!nonblocking.ok()) return nonblocking;
  auto bound = BoundPort(listener_);
  if (!bound.ok()) return bound.status();
  port_ = *bound;

  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) return Status::IoError("epoll_create1() failed");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK);
  if (wake_fd_ < 0) return Status::IoError("eventfd() failed");

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_, &ev) < 0) {
    return Status::IoError("epoll_ctl(listener) failed");
  }
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    return Status::IoError("epoll_ctl(eventfd) failed");
  }
  return Status::Ok();
}

void EventLoop::Run() {
  EXEA_CHECK_GE(epoll_fd_, 0) << "Run before a successful Listen";
  epoll_event events[kMaxEvents];
  while (true) {
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, kPollMillis);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable epoll failure; exit rather than spin
    }
    for (int i = 0; i < n; ++i) {
      uint64_t tag = events[i].data.u64;
      if (tag == kWakeTag) {
        uint64_t drained;
        // wake_fd_ is EFD_NONBLOCK; the drain loop ends on EAGAIN.
        // exea-lint: allow(loop-blocking)
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;  // mailbox handled below, once per wakeup batch
      }
      if (tag == kListenerTag) {
        HandleAccept();
        continue;
      }
      auto it = conns_.find(tag);
      if (it == conns_.end()) continue;  // closed earlier this batch
      uint32_t flags = events[i].events;
      if ((flags & (EPOLLHUP | EPOLLERR)) != 0 &&
          (flags & EPOLLIN) == 0) {
        CloseConn(tag);
        continue;
      }
      if ((flags & EPOLLOUT) != 0) {
        if (!FlushOut(it->second)) continue;  // connection closed
        CloseIfFinished(tag);
        it = conns_.find(tag);
        if (it == conns_.end()) continue;
      }
      if ((flags & EPOLLIN) != 0) {
        HandleReadable(it->second);
      }
    }
    DrainMailbox();

    if (drain_requested_.load(std::memory_order_acquire) && !drained_) {
      ApplyDrain();
    }
    if (stop_requested_.load(std::memory_order_acquire)) {
      if (!stopping_) {
        stopping_ = true;
        stop_timer_.Reset();
        if (!drained_) ApplyDrain();
      }
      // Exit once every pending response byte is flushed, or after the
      // bounded grace period for peers that stopped reading.
      bool flushed = true;
      for (const auto& [id, conn] : conns_) {
        if (conn.out_pos < conn.out.size() || !conn.ready.empty() ||
            conn.next_send < conn.next_seq) {
          flushed = false;
          break;
        }
      }
      if (flushed ||
          stop_timer_.ElapsedSeconds() > options_.stop_flush_seconds) {
        break;
      }
    }
  }
  std::vector<uint64_t> open;
  open.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) open.push_back(id);
  for (uint64_t id : open) CloseConn(id);
}

void EventLoop::BeginDrain() {
  drain_requested_.store(true, std::memory_order_release);
  WakeLoop();
}

void EventLoop::Stop() {
  drain_requested_.store(true, std::memory_order_release);
  stop_requested_.store(true, std::memory_order_release);
  WakeLoop();
}

void EventLoop::Send(uint64_t conn, uint64_t seq, std::string text) {
  {
    std::lock_guard<std::mutex> lock(mailbox_mu_);
    mailbox_.push_back({conn, seq, std::move(text)});
  }
  WakeLoop();
}

void EventLoop::WakeLoop() {
  uint64_t one = 1;
  // The eventfd is a counter; a full (EAGAIN) or interrupted write still
  // leaves a nonzero count behind, so the loop wakes either way.
  ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
  (void)ignored;
}

void EventLoop::HandleAccept() {
  // Drain the whole accept backlog: with a burst of connects, one epoll
  // wakeup may stand for many pending sockets.
  while (true) {
    // accept4(SOCK_NONBLOCK): the client is non-blocking from birth, so
    // there is no window where the loop thread could block on it.
    int client = AcceptNonBlocking(listener_);
    if (client < 0) return;  // EAGAIN: backlog drained (or transient)
    if (conns_.size() >= options_.max_connections) {
      // Over the cap: shed at the edge. Count before close so an
      // observer who saw the EOF also sees the rejection.
      conn_rejected_.Increment();
      ::close(client);
      continue;
    }
    uint64_t id = next_conn_id_++;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, client, &ev) < 0) {
      ::close(client);
      continue;
    }
    Connection conn;
    conn.fd = client;
    conn.id = id;
    conns_.emplace(id, std::move(conn));
    accepted_.Increment();
    conns_gauge_.Set(static_cast<double>(conns_.size()));
  }
}

void EventLoop::HandleReadable(Connection& conn) {
  uint64_t id = conn.id;
  char chunk[65536];
  while (true) {
    // conn.fd is non-blocking (accept4 SOCK_NONBLOCK); EAGAIN ends the
    // read loop below instead of parking the thread.
    // exea-lint: allow(loop-blocking)
    ssize_t n = ::read(conn.fd, chunk, sizeof(chunk));
    if (n > 0) {
      conn.in_buf.append(chunk, static_cast<size_t>(n));
      ExtractLines(conn);
      if (conns_.find(id) == conns_.end()) return;  // handler closed it
      continue;
    }
    if (n == 0) {
      conn.peer_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(id);  // ECONNRESET and friends
    return;
  }
  CloseIfFinished(id);
}

void EventLoop::ExtractLines(Connection& conn) {
  while (true) {
    size_t nl = conn.in_buf.find('\n');
    if (nl == std::string::npos) {
      if (conn.discarding) {
        conn.discarded += conn.in_buf.size();
        conn.in_buf.clear();
      } else if (conn.in_buf.size() > options_.max_line_bytes) {
        // The line already exceeds the cap with no newline in sight:
        // stop buffering, keep measuring (bounded memory, hostile peer).
        conn.discarding = true;
        conn.discarded = conn.in_buf.size();
        conn.in_buf.clear();
      }
      return;
    }
    std::string text = conn.in_buf.substr(0, nl);
    conn.in_buf.erase(0, nl + 1);
    Line line;
    line.conn = conn.id;
    if (conn.discarding) {
      line.oversized = true;
      line.observed_bytes = conn.discarded + text.size();
      conn.discarding = false;
      conn.discarded = 0;
    } else if (text.size() > options_.max_line_bytes) {
      line.oversized = true;
      line.observed_bytes = text.size();
    } else if (Trim(text).empty()) {
      continue;  // blank lines: skipped, unanswered (blocking-path parity)
    } else {
      line.text = std::move(text);
    }
    line.seq = conn.next_seq++;
    lines_in_.Increment();
    on_line_(line);
  }
}

void EventLoop::ReleaseReady(Connection& conn) {
  while (true) {
    auto it = conn.ready.find(conn.next_send);
    if (it == conn.ready.end()) break;
    conn.out += it->second;
    conn.out += '\n';
    conn.ready.erase(it);
    ++conn.next_send;
    responses_out_.Increment();
  }
}

bool EventLoop::FlushOut(Connection& conn) {
  uint64_t id = conn.id;
  while (conn.out_pos < conn.out.size()) {
    // Non-blocking fd: a full kernel buffer surfaces as EAGAIN and the
    // remainder waits for EPOLLOUT.
    // exea-lint: allow(loop-blocking)
    ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_pos,
                       conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_pos += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      partial_writes_.Increment();
      break;  // kernel buffer full; EPOLLOUT re-arms the rest
    }
    CloseConn(id);  // EPIPE / ECONNRESET: peer is gone, drop the rest
    return false;
  }
  if (conn.out_pos == conn.out.size()) {
    conn.out.clear();
    conn.out_pos = 0;
  }
  UpdateInterest(conn);
  return true;
}

void EventLoop::UpdateInterest(Connection& conn) {
  bool want_write = conn.out_pos < conn.out.size();
  if (want_write == conn.want_write) return;
  conn.want_write = want_write;
  epoll_event ev{};
  ev.events = (drained_ ? 0u : EPOLLIN) | (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = conn.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void EventLoop::CloseConn(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  size_t unanswered = conn.ready.size();
  if (unanswered > 0) responses_dropped_.Increment(unanswered);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  conns_.erase(it);
  conn_closed_.Increment();
  conns_gauge_.Set(static_cast<double>(conns_.size()));
}

void EventLoop::CloseIfFinished(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  const Connection& conn = it->second;
  // A half-closed peer still gets every response it is owed; the
  // connection lingers until the last admitted line is answered and the
  // bytes have left the process.
  if (conn.peer_eof && conn.next_send == conn.next_seq &&
      conn.out_pos >= conn.out.size()) {
    CloseConn(id);
  }
}

void EventLoop::DrainMailbox() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(mailbox_mu_);
    batch.swap(mailbox_);
  }
  for (Completion& completion : batch) {
    auto it = conns_.find(completion.conn);
    if (it == conns_.end()) {
      responses_dropped_.Increment();
      continue;
    }
    it->second.ready[completion.seq] = std::move(completion.text);
  }
  // Flush once per connection per batch, not once per completion.
  std::vector<uint64_t> touched;
  touched.reserve(batch.size());
  for (const Completion& completion : batch) {
    touched.push_back(completion.conn);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (uint64_t id : touched) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    ReleaseReady(it->second);
    if (FlushOut(it->second)) CloseIfFinished(id);
  }
}

void EventLoop::ApplyDrain() {
  drained_ = true;
  if (listener_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listener_, nullptr);
    ::close(listener_);
    listener_ = -1;
  }
  std::vector<uint64_t> open;
  open.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) open.push_back(id);
  for (uint64_t id : open) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    Connection& conn = it->second;
    // Stop reading: unread request bytes are abandoned, answers already
    // owed still flush.
    ::shutdown(conn.fd, SHUT_RD);
    conn.peer_eof = true;
    conn.in_buf.clear();
    conn.discarding = false;
    epoll_event ev{};
    ev.events = conn.want_write ? EPOLLOUT : 0u;
    ev.data.u64 = id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
    CloseIfFinished(id);
  }
}

}  // namespace exea::net
