# Empty compiler generated dependencies file for emb_test.
# This may be replaced when dependencies are built.
