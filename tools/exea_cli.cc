// exea_cli — the command-line entry point to the ExEA toolkit. Works on
// disk-backed datasets in the DBP15K/OpenEA TSV layout (see
// data/dataset_io.h).
//
// Subcommands:
//   generate  --benchmark ZH-EN --scale small --out DIR
//             Generate a synthetic benchmark and write its four TSV files.
//   stats     --dir DIR
//             Print dataset statistics.
//   align     --dir DIR --model Dual-AMN [--inference greedy|mutual|csls|stable]
//             [--out FILE] [--embeddings PREFIX]
//             Train a model, infer alignment, report accuracy; optionally
//             write the predicted alignment TSV and the embedding tables.
//   repair    --dir DIR --model Dual-AMN [--out FILE]
//             [--no-cr1] [--no-cr2] [--no-cr3] [--rounds N]
//             Full ExEA repair; optionally write the repaired alignment.
//   explain   --dir DIR --model Dual-AMN --source NAME [--target NAME]
//             [--format text|dot|json] [--hops 1|2]
//             Explain one pair (default target: the model's prediction).
//   evaluate  --dir DIR --alignment FILE
//             Accuracy of an alignment TSV against the dataset's test gold.
//   audit     --dir DIR --model Dual-AMN [--limit N] [--verbalize]
//             Explain every predicted pair, rank the suspect ones first,
//             and print the review queue (optionally with verbalized
//             explanations).
//
// Global flags (any subcommand):
//   --threads N   worker threads for the parallel kernels (default all
//                 hardware threads, 1 = serial; output is identical at any
//                 value — see DESIGN.md "Concurrency model").

#include <cstdio>
#include <memory>
#include <string>

#include "data/benchmarks.h"
#include "data/dataset_io.h"
#include "emb/model.h"
#include "eval/csls.h"
#include "eval/inference.h"
#include "eval/metrics.h"
#include "explain/audit.h"
#include "explain/exea.h"
#include "explain/export.h"
#include "kg/kg_io.h"
#include "kg/stats.h"
#include "la/matrix_io.h"
#include "repair/pipeline.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace exea {
namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: exea_cli <generate|stats|align|repair|explain|"
               "evaluate|audit> [--flags]\n"
               "global flags:\n"
               "  --threads N   worker threads for the similarity/CSLS/"
               "explanation kernels\n"
               "                (default: all hardware threads; 1 forces the "
               "serial path;\n"
               "                results are identical at any value)\n"
               "(see the header of tools/exea_cli.cc for per-subcommand "
               "flags)\n");
  return 2;
}

StatusOr<data::EaDataset> LoadFromFlags(const Flags& flags) {
  std::string dir = flags.GetString("dir", "");
  if (dir.empty()) {
    return Status::InvalidArgument("--dir is required");
  }
  return data::LoadDataset(dir, flags.GetString("name", dir));
}

std::unique_ptr<emb::EAModel> ModelFromFlags(const Flags& flags) {
  std::string name = flags.GetString("model", "Dual-AMN");
  for (emb::ModelKind kind :
       {emb::ModelKind::kMTransE, emb::ModelKind::kAlignE,
        emb::ModelKind::kGcnAlign, emb::ModelKind::kDualAmn}) {
    if (emb::ModelKindName(kind) == name) {
      emb::TrainConfig config = emb::DefaultConfigFor(kind);
      if (flags.Has("epochs")) {
        config.epochs = static_cast<size_t>(flags.GetInt("epochs", 0));
      }
      if (flags.Has("seed")) {
        config.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
      }
      return emb::MakeModel(kind, config);
    }
  }
  return nullptr;
}

int CmdGenerate(const Flags& flags) {
  std::string out = flags.GetString("out", "");
  if (out.empty()) return Fail("--out is required");
  data::EaDataset dataset = data::MakeBenchmark(
      data::BenchmarkFromName(flags.GetString("benchmark", "ZH-EN")),
      data::ScaleFromName(flags.GetString("scale", "small")));
  Status status = data::SaveDataset(dataset, out);
  if (!status.ok()) return Fail(status.ToString());
  std::printf("wrote %s: kg1 %zu triples, kg2 %zu triples, %zu train / %zu "
              "test links\n",
              out.c_str(), dataset.kg1.num_triples(),
              dataset.kg2.num_triples(), dataset.train.size(),
              dataset.test.size());
  return 0;
}

int CmdStats(const Flags& flags) {
  auto dataset = LoadFromFlags(flags);
  if (!dataset.ok()) return Fail(dataset.status().ToString());
  std::printf("KG1: %s\n", kg::ComputeStats(dataset->kg1).ToString().c_str());
  std::printf("KG2: %s\n", kg::ComputeStats(dataset->kg2).ToString().c_str());
  std::printf("links: %zu train, %zu test\n", dataset->train.size(),
              dataset->test.size());
  return 0;
}

int CmdAlign(const Flags& flags) {
  auto dataset = LoadFromFlags(flags);
  if (!dataset.ok()) return Fail(dataset.status().ToString());
  std::unique_ptr<emb::EAModel> model = ModelFromFlags(flags);
  if (model == nullptr) return Fail("unknown --model");
  model->Train(*dataset);

  std::string inference = flags.GetString("inference", "greedy");
  kg::AlignmentSet aligned;
  if (inference == "csls") {
    aligned = eval::GreedyAlign(eval::RankTestEntitiesCsls(*model, *dataset));
  } else {
    eval::RankedSimilarity ranked = eval::RankTestEntities(*model, *dataset);
    if (inference == "greedy") {
      aligned = eval::GreedyAlign(ranked);
    } else if (inference == "mutual") {
      aligned = eval::MutualBestAlign(ranked);
    } else if (inference == "stable") {
      aligned = eval::StableMatchAlign(ranked);
    } else {
      return Fail("unknown --inference (greedy|mutual|csls|stable)");
    }
  }
  std::printf("%s + %s inference: %zu pairs, accuracy %.3f\n",
              model->name().c_str(), inference.c_str(), aligned.size(),
              eval::Accuracy(aligned, dataset->test_gold));

  std::string out = flags.GetString("out", "");
  if (!out.empty()) {
    Status status =
        kg::SaveAlignment(aligned, dataset->kg1, dataset->kg2, out);
    if (!status.ok()) return Fail(status.ToString());
    std::printf("wrote %s\n", out.c_str());
  }
  std::string embeddings = flags.GetString("embeddings", "");
  if (!embeddings.empty()) {
    for (const auto& [suffix, side] :
         {std::pair<const char*, kg::KgSide>{"_ent1.txt",
                                             kg::KgSide::kSource},
          {"_ent2.txt", kg::KgSide::kTarget}}) {
      Status status = la::SaveMatrix(model->EntityEmbeddings(side),
                                     embeddings + suffix);
      if (!status.ok()) return Fail(status.ToString());
    }
    std::printf("wrote %s_ent{1,2}.txt\n", embeddings.c_str());
  }
  return 0;
}

int CmdRepair(const Flags& flags) {
  auto dataset = LoadFromFlags(flags);
  if (!dataset.ok()) return Fail(dataset.status().ToString());
  std::unique_ptr<emb::EAModel> model = ModelFromFlags(flags);
  if (model == nullptr) return Fail("unknown --model");
  model->Train(*dataset);

  explain::ExeaConfig config;
  config.hops = static_cast<int>(flags.GetInt("hops", 1));
  explain::ExeaExplainer explainer(*dataset, *model, config);
  repair::RepairOptions options;
  options.enable_cr1 = !flags.Has("no-cr1");
  options.enable_cr2 = !flags.Has("no-cr2");
  options.enable_cr3 = !flags.Has("no-cr3");
  repair::RepairPipeline pipeline(explainer, options);
  size_t rounds = static_cast<size_t>(flags.GetInt("rounds", 1));
  repair::RepairReport report =
      rounds > 1 ? pipeline.RunIterative(rounds) : pipeline.Run();

  std::printf("base accuracy:      %.3f\n", report.base_accuracy);
  std::printf("repaired accuracy:  %.3f  (delta %+.3f)\n",
              report.repaired_accuracy, report.AccuracyGain());
  std::printf("one-to-many:        %zu conflicts, %zu swaps\n",
              report.one_to_many_conflicts, report.one_to_many_swaps);
  std::printf("low-confidence:     %zu removed, %zu swaps, %zu greedy\n",
              report.low_confidence_removed, report.low_confidence_swaps,
              report.greedy_fallback_matches);
  std::printf("cr1 neighbour prunes: %zu\n", report.relation_conflict_prunes);

  std::string out = flags.GetString("out", "");
  if (!out.empty()) {
    Status status = kg::SaveAlignment(report.repaired_alignment,
                                      dataset->kg1, dataset->kg2, out);
    if (!status.ok()) return Fail(status.ToString());
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

int CmdExplain(const Flags& flags) {
  auto dataset = LoadFromFlags(flags);
  if (!dataset.ok()) return Fail(dataset.status().ToString());
  std::unique_ptr<emb::EAModel> model = ModelFromFlags(flags);
  if (model == nullptr) return Fail("unknown --model");
  std::string source_name = flags.GetString("source", "");
  if (source_name.empty()) return Fail("--source is required");
  kg::EntityId source = dataset->kg1.FindEntity(source_name);
  if (source == kg::kInvalidEntity) {
    return Fail("unknown KG1 entity: " + source_name);
  }
  model->Train(*dataset);

  eval::RankedSimilarity ranked = eval::RankTestEntities(*model, *dataset);
  kg::AlignmentSet aligned = eval::GreedyAlign(ranked);

  kg::EntityId target = kg::kInvalidEntity;
  std::string target_name = flags.GetString("target", "");
  if (!target_name.empty()) {
    target = dataset->kg2.FindEntity(target_name);
    if (target == kg::kInvalidEntity) {
      return Fail("unknown KG2 entity: " + target_name);
    }
  } else {
    std::vector<kg::EntityId> targets = aligned.TargetsOf(source);
    if (targets.empty()) {
      return Fail("model did not align " + source_name +
                  "; pass --target explicitly");
    }
    target = targets[0];
  }

  explain::ExeaConfig config;
  config.hops = static_cast<int>(flags.GetInt("hops", 1));
  explain::ExeaExplainer explainer(*dataset, *model, config);
  explain::AlignmentContext context(&aligned, &dataset->train);
  explain::Explanation explanation =
      explainer.Explain(source, target, context);
  explain::Adg adg = explainer.BuildAdg(explanation);

  std::string format = flags.GetString("format", "text");
  if (format == "dot") {
    std::printf("%s\n%s",
                explain::ExplanationToDot(explanation, dataset->kg1,
                                          dataset->kg2)
                    .c_str(),
                explain::AdgToDot(adg, dataset->kg1, dataset->kg2).c_str());
  } else if (format == "json") {
    std::printf(
        "{\"explanation\":%s,\"adg\":%s}\n",
        explain::ExplanationToJson(explanation, dataset->kg1, dataset->kg2)
            .c_str(),
        explain::AdgToJson(adg, dataset->kg1, dataset->kg2).c_str());
  } else {
    std::printf("pair: (%s, %s), similarity %.3f\n",
                dataset->kg1.EntityName(source).c_str(),
                dataset->kg2.EntityName(target).c_str(),
                model->Similarity(source, target));
    std::printf("matches: %zu, confidence %.3f\n",
                explanation.matches.size(), adg.confidence);
    for (const kg::Triple& t : explanation.triples1) {
      std::printf("  KG1 (%s, %s, %s)\n",
                  dataset->kg1.EntityName(t.head).c_str(),
                  dataset->kg1.RelationName(t.rel).c_str(),
                  dataset->kg1.EntityName(t.tail).c_str());
    }
    for (const kg::Triple& t : explanation.triples2) {
      std::printf("  KG2 (%s, %s, %s)\n",
                  dataset->kg2.EntityName(t.head).c_str(),
                  dataset->kg2.RelationName(t.rel).c_str(),
                  dataset->kg2.EntityName(t.tail).c_str());
    }
  }
  return 0;
}

int CmdAudit(const Flags& flags) {
  auto dataset = LoadFromFlags(flags);
  if (!dataset.ok()) return Fail(dataset.status().ToString());
  std::unique_ptr<emb::EAModel> model = ModelFromFlags(flags);
  if (model == nullptr) return Fail("unknown --model");
  model->Train(*dataset);
  eval::RankedSimilarity ranked = eval::RankTestEntities(*model, *dataset);
  kg::AlignmentSet aligned = eval::GreedyAlign(ranked);

  explain::ExeaConfig config;
  explain::ExeaExplainer explainer(*dataset, *model, config);
  explain::AuditReport report =
      explain::AuditAlignment(explainer, aligned, dataset->train);

  std::printf("audited %zu pairs: %zu suspect, mean confidence %.3f\n",
              report.entries.size(), report.suspect_count,
              report.mean_confidence);
  std::printf("confidence histogram (0.0..1.0): ");
  for (size_t count : report.confidence_histogram) {
    std::printf("%zu ", count);
  }
  std::printf("\n\n");

  size_t limit = static_cast<size_t>(flags.GetInt("limit", 10));
  bool verbalize = flags.Has("verbalize");
  explain::AlignmentContext context(&aligned, &dataset->train);
  for (size_t i = 0; i < std::min(limit, report.entries.size()); ++i) {
    const explain::AuditEntry& entry = report.entries[i];
    std::string flags_text;
    for (explain::AuditFlag flag : entry.flags) {
      if (!flags_text.empty()) flags_text += ",";
      flags_text += explain::AuditFlagName(flag);
    }
    std::printf("#%zu (%s, %s)  sim %.3f  conf %.3f  matches %zu  [%s]\n",
                i + 1, dataset->kg1.EntityName(entry.source).c_str(),
                dataset->kg2.EntityName(entry.target).c_str(),
                entry.similarity, entry.confidence, entry.matches,
                flags_text.empty() ? "ok" : flags_text.c_str());
    if (verbalize) {
      explain::Explanation explanation =
          explainer.Explain(entry.source, entry.target, context);
      explain::Adg adg = explainer.BuildAdg(explanation);
      std::printf("%s\n",
                  explain::VerbalizeExplanation(explanation, adg,
                                                dataset->kg1, dataset->kg2)
                      .c_str());
    }
  }
  return 0;
}

int CmdEvaluate(const Flags& flags) {
  auto dataset = LoadFromFlags(flags);
  if (!dataset.ok()) return Fail(dataset.status().ToString());
  std::string path = flags.GetString("alignment", "");
  if (path.empty()) return Fail("--alignment is required");
  auto alignment = kg::LoadAlignment(path, dataset->kg1, dataset->kg2);
  if (!alignment.ok()) return Fail(alignment.status().ToString());
  std::printf("pairs:    %zu\n", alignment->size());
  std::printf("accuracy: %.3f\n",
              eval::Accuracy(*alignment, dataset->test_gold));
  std::printf("1-to-1:   %s\n", alignment->IsOneToOne() ? "yes" : "no");
  return 0;
}

int Main(int argc, char** argv) {
  SetMinLogLevel(LogLevel::kWarning);
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) return Fail(flags.status().ToString());
  int64_t threads = flags->GetInt("threads", 0);
  if (threads < 0) return Fail("--threads must be >= 0 (0 = hardware)");
  util::SetThreadCount(static_cast<size_t>(threads));
  if (flags->positional().empty()) return Usage();
  const std::string& command = flags->positional()[0];
  if (command == "generate") return CmdGenerate(*flags);
  if (command == "stats") return CmdStats(*flags);
  if (command == "align") return CmdAlign(*flags);
  if (command == "repair") return CmdRepair(*flags);
  if (command == "explain") return CmdExplain(*flags);
  if (command == "evaluate") return CmdEvaluate(*flags);
  if (command == "audit") return CmdAudit(*flags);
  return Usage();
}

}  // namespace
}  // namespace exea

int main(int argc, char** argv) { return exea::Main(argc, argv); }
