#include "baselines/perturbation.h"

#include "emb/relation_embedding.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace exea::baselines {

PerturbedEmbedder::PerturbedEmbedder(const data::EaDataset& dataset,
                                     const emb::EAModel& model)
    : dataset_(&dataset), model_(&model) {
  if (model.HasRelationEmbeddings()) {
    rel1_ = model.RelationEmbeddings(kg::KgSide::kSource);
    rel2_ = model.RelationEmbeddings(kg::KgSide::kTarget);
  } else {
    rel1_ = emb::TranslationRelationEmbeddings(
        dataset.kg1, model.EntityEmbeddings(kg::KgSide::kSource));
    rel2_ = emb::TranslationRelationEmbeddings(
        dataset.kg2, model.EntityEmbeddings(kg::KgSide::kTarget));
  }
}

la::Vec PerturbedEmbedder::TranslationReconstruct(
    kg::KgSide side, kg::EntityId e,
    const std::vector<kg::Triple>& kept) const {
  const la::Matrix& ent = model_->EntityEmbeddings(side);
  const la::Matrix& rel = side == kg::KgSide::kSource ? rel1_ : rel2_;
  size_t dim = ent.cols();
  la::Vec out(dim, 0.0f);
  size_t used = 0;
  for (const kg::Triple& t : kept) {
    if (t.head == e) {
      // Eq. (10): e ≈ tail - r.
      const float* tail = ent.Row(t.tail);
      const float* r = rel.Row(t.rel);
      for (size_t c = 0; c < dim; ++c) out[c] += tail[c] - r[c];
      ++used;
    } else if (t.tail == e) {
      const float* head = ent.Row(t.head);
      const float* r = rel.Row(t.rel);
      for (size_t c = 0; c < dim; ++c) out[c] += head[c] + r[c];
      ++used;
    }
    // Triples not incident to e carry no first-order translation signal.
  }
  if (used == 0) return ent.RowCopy(e);
  la::Scale(1.0f / static_cast<float>(used), out);
  return out;
}

la::Vec PerturbedEmbedder::AggregationReconstruct(
    kg::KgSide side, kg::EntityId e, const std::vector<kg::Triple>& kept,
    int depth) const {
  const la::Matrix& ent = model_->EntityEmbeddings(side);
  size_t dim = ent.cols();
  // Self representation plus the mean of kept neighbour representations.
  la::Vec out = ent.RowCopy(e);
  la::Vec neighbor_sum(dim, 0.0f);
  size_t used = 0;
  for (const kg::Triple& t : kept) {
    kg::EntityId other;
    if (t.head == e) {
      other = t.tail;
    } else if (t.tail == e) {
      other = t.head;
    } else {
      continue;
    }
    la::Vec nb;
    if (depth > 1) {
      // Rebuild the neighbour from its own kept triples first (2-hop).
      nb = AggregationReconstruct(side, other, kept, depth - 1);
    } else {
      nb = ent.RowCopy(other);
    }
    for (size_t c = 0; c < dim; ++c) neighbor_sum[c] += nb[c];
    ++used;
  }
  if (used > 0) {
    float inv = 1.0f / static_cast<float>(used);
    for (size_t c = 0; c < dim; ++c) out[c] = 0.5f * out[c] +
                                              0.5f * inv * neighbor_sum[c];
  }
  la::NormalizeL2(out);
  return out;
}

la::Vec PerturbedEmbedder::Embed(kg::KgSide side, kg::EntityId e,
                                 const std::vector<kg::Triple>& kept) const {
  if (kept.empty()) {
    return model_->EntityEmbeddings(side).RowCopy(e);
  }
  if (model_->IsTranslationBased()) {
    return TranslationReconstruct(side, e, kept);
  }
  return AggregationReconstruct(side, e, kept, /*depth=*/2);
}

double PerturbedEmbedder::PerturbedSimilarity(
    kg::EntityId e1, const std::vector<kg::Triple>& kept1, kg::EntityId e2,
    const std::vector<kg::Triple>& kept2) const {
  la::Vec a = Embed(kg::KgSide::kSource, e1, kept1);
  la::Vec b = Embed(kg::KgSide::kTarget, e2, kept2);
  return la::Cosine(a, b);
}

std::vector<double> PerturbedEmbedder::PerturbedSimilarityBatch(
    kg::EntityId e1, const std::vector<kg::Triple>& candidates1,
    kg::EntityId e2, const std::vector<kg::Triple>& candidates2,
    const std::vector<std::vector<bool>>& masks) const {
  size_t n1 = candidates1.size();
  std::vector<double> out(masks.size(), 0.0);
  util::ParallelForBlocks(0, masks.size(), /*grain=*/8,
                          [&](size_t s, size_t e) {
    std::vector<kg::Triple> kept1;  // per-block scratch
    std::vector<kg::Triple> kept2;
    for (size_t m = s; m < e; ++m) {
      const std::vector<bool>& mask = masks[m];
      EXEA_CHECK_EQ(mask.size(), n1 + candidates2.size());
      kept1.clear();
      kept2.clear();
      for (size_t i = 0; i < n1; ++i) {
        if (mask[i]) kept1.push_back(candidates1[i]);
      }
      for (size_t i = 0; i < candidates2.size(); ++i) {
        if (mask[n1 + i]) kept2.push_back(candidates2[i]);
      }
      out[m] = PerturbedSimilarity(e1, kept1, e2, kept2);
    }
  });
  return out;
}

double PerturbedEmbedder::ReconstructionSimilarity(
    kg::KgSide side, kg::EntityId e,
    const std::vector<kg::Triple>& kept) const {
  la::Vec reconstructed = Embed(side, e, kept);
  la::Vec original = model_->EntityEmbeddings(side).RowCopy(e);
  return la::Cosine(reconstructed, original);
}

std::vector<kg::Triple> ApplyMask(const std::vector<kg::Triple>& candidates,
                                  const std::vector<bool>& mask) {
  EXEA_CHECK_EQ(candidates.size(), mask.size());
  std::vector<kg::Triple> out;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (mask[i]) out.push_back(candidates[i]);
  }
  return out;
}

}  // namespace exea::baselines
