// Table VIII: EA repair under noisy seed alignment — same corruption as
// Table VII; base vs repaired accuracy for MTransE and Dual-AMN on ZH-EN
// and DBP-WD.
//
// Paper shape: noise lowers base accuracy, but ExEA still delivers a
// substantial Δacc (robustness of the repair pipeline).

#include <cstdio>

#include "bench/common.h"
#include "data/noise.h"
#include "explain/exea.h"
#include "repair/pipeline.h"
#include "util/logging.h"

int main() {
  using namespace exea;
  SetMinLogLevel(LogLevel::kError);
  bench::PrintBanner("Table VIII — EA repair of EA with noisy seeds",
                     "ExEA paper Table VIII (Section V-E)");

  data::Scale scale = data::ScaleFromEnv();
  constexpr double kNoiseFraction = 1.0 / 6.0;

  bench::Table table({"model", "dataset", "base", "ExEA", "delta_acc"});
  for (emb::ModelKind kind :
       {emb::ModelKind::kMTransE, emb::ModelKind::kDualAmn}) {
    for (data::Benchmark benchmark :
         {data::Benchmark::kZhEn, data::Benchmark::kDbpWd}) {
      data::EaDataset dataset =
          data::CorruptSeedAlignment(data::MakeBenchmark(benchmark, scale),
                                     kNoiseFraction, /*seed=*/17);
      dataset.name += " (Noise)";
      std::unique_ptr<emb::EAModel> model = bench::TrainModel(kind, dataset);
      explain::ExeaExplainer explainer(dataset, *model,
                                       explain::ExeaConfig{});
      repair::RepairPipeline pipeline(explainer, repair::RepairOptions{});
      repair::RepairReport report = pipeline.Run();
      table.AddRow({model->name(), dataset.name,
                    bench::Table::Fmt(report.base_accuracy),
                    bench::Table::Fmt(report.repaired_accuracy),
                    bench::Table::Fmt(report.AccuracyGain())});
    }
    table.AddSeparator();
  }
  table.Print();

  std::printf(
      "\nPaper reference (Table VIII): MTransE/ZH-EN 0.422->0.650 (+0.228), "
      "Dual-AMN/ZH-EN\n0.520->0.694 (+0.174); DBP-WD rows +0.156/+0.110.\n"
      "Expected shape: positive delta under noise for both models.\n");
  return 0;
}
