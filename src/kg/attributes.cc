#include "kg/attributes.h"

#include "kg/name_encoder.h"
#include "la/vector_ops.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace exea::kg {
namespace {

const std::vector<uint32_t> kNoTriples;

uint64_t Fnv(std::string_view s, uint64_t h = 1469598103934665603ULL) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

AttributeId AttributeStore::AddAttribute(std::string_view name) {
  return attributes_.Intern(name);
}

void AttributeStore::AddTriple(EntityId entity, AttributeId attribute,
                               std::string_view value) {
  EXEA_CHECK_LT(attribute, attributes_.size());
  if (entity >= by_entity_.size()) by_entity_.resize(entity + 1);
  by_entity_[entity].push_back(static_cast<uint32_t>(triples_.size()));
  triples_.push_back({entity, attribute, std::string(value)});
}

void AttributeStore::AddTriple(EntityId entity, std::string_view attribute,
                               std::string_view value) {
  AddTriple(entity, AddAttribute(attribute), value);
}

const std::vector<uint32_t>& AttributeStore::TriplesOf(
    EntityId entity) const {
  if (entity >= by_entity_.size()) return kNoTriples;
  return by_entity_[entity];
}

la::Matrix AttributeStore::FeatureMatrix(size_t num_entities,
                                         size_t dim) const {
  la::Matrix out(num_entities, dim);
  for (const AttributeTriple& t : triples_) {
    if (t.entity >= num_entities) continue;
    float* row = out.Row(t.entity);
    // Namespace-stripped attribute name + value token, hashed jointly so
    // the same fact lands in the same bucket across KGs.
    std::string_view attr = StripNamespace(AttributeName(t.attribute));
    uint64_t h = Fnv(t.value, Fnv(attr));
    size_t bucket = static_cast<size_t>(h % dim);
    float sign = (h >> 63) != 0u ? -1.0f : 1.0f;
    row[bucket] += sign;
  }
  out.NormalizeRowsL2();
  return out;
}

}  // namespace exea::kg
