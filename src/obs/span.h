// RAII trace spans: hierarchical wall-time attribution on top of the
// metrics registry.
//
// A Span measures the wall time between its construction and destruction
// and records it (in milliseconds) into the histogram
// "span.<dotted.path>", where the path is the span's name appended to the
// names of the spans still open on the current thread:
//
//   void RepairPipeline::Run(...) {
//     obs::Span span("repair.run");            // span.repair.run
//     ...
//     { obs::Span s("one_to_many"); ... }      // span.repair.run.one_to_many
//     { obs::Span s("low_confidence"); ... }   // span.repair.run.low_confidence
//   }
//
// The nesting stack is thread-local, so spans opened by pool workers do
// not inherit the submitting thread's path — each worker attributes to
// its own (usually empty) stack. Construction/destruction cost is one
// registry lookup plus one histogram lock; fine at stage boundaries
// (micro-benchmarked in bench_micro as BM_ObsSpan), too heavy for
// per-element inner loops.

#ifndef EXEA_OBS_SPAN_H_
#define EXEA_OBS_SPAN_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "util/timer.h"

namespace exea::obs {

class Span {
 public:
  // Records into Registry::Global().
  explicit Span(std::string_view name);
  // Records into `registry` (tests); nullptr falls back to Global().
  Span(Registry* registry, std::string_view name);

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span();

  // The dotted path this span records under (without the "span." metric
  // prefix).
  const std::string& path() const { return path_; }

  // The current thread's open-span path ("" outside any span). Exposed
  // for tests.
  static std::string CurrentPath();

 private:
  Registry* registry_;
  std::string parent_path_;  // restored on destruction
  std::string path_;
  WallTimer timer_;
};

}  // namespace exea::obs

#endif  // EXEA_OBS_SPAN_H_
