// exea_lint: the project's rule checker. Scans C++ sources under src/,
// tools/, and bench/ and enforces conventions the compiler alone cannot:
//
//   nodiscard-status   every Status / StatusOr-returning declaration in a
//                      header carries [[nodiscard]], so a dropped error is
//                      a compiler warning at every call site.
//   discarded-status   no call site discards a Status/StatusOr anyway: a
//                      bare expression statement whose outermost callee is
//                      a known Status-returning function is flagged even
//                      where the compiler stays quiet.
//   raw-rng            no rand()/srand()/std::random_device outside
//                      src/util/rng — all randomness flows through the
//                      seeded, deterministic util Rng.
//   raw-new-delete     no naked new/delete: ownership lives in containers
//                      and smart pointers. The handful of deliberate leaky
//                      singletons carry an inline waiver (below).
//   cout-logging       no std::cout inside src/ — library code logs through
//                      EXEA_LOG; stdout belongs to tools/ and bench/, whose
//                      output is the product.
//
// A violation prints as "file:line: rule: message" and makes the exit code
// nonzero, so ci/check.sh can gate on it. An individual line opts out with
// an inline waiver comment naming the rule it suppresses:
//
//   static Foo* foo = new Foo();  // exea-lint: allow(raw-new-delete)
//
// The checker is deliberately lexical (a comment/string-aware line scanner,
// not a parser): it is dependency-free, runs in milliseconds, and the rules
// it enforces are all expressible at token level. Heuristics were tuned so
// the repo scans clean; when the checker and the code disagree, either fix
// the code or leave a waiver with a justification next to it.
//
// Usage:
//   exea_lint [--root <dir>] [paths...]
// With no paths, scans <root>/src, <root>/tools, <root>/bench. Paths may be
// files or directories. --root defaults to the current directory.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Diagnostic {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Diagnostic& other) const {
    if (file != other.file) return file < other.file;
    if (line != other.line) return line < other.line;
    return rule < other.rule;
  }
};

// One scanned translation unit: the raw lines, the comment/string-stripped
// lines (same count, columns preserved), and per-line waivers.
struct SourceFile {
  std::string path;        // as reported in diagnostics
  bool is_header = false;
  bool in_src = false;     // under a src/ directory (not tools/, bench/)
  bool is_rng_impl = false;  // src/util/rng.* — exempt from raw-rng
  std::vector<std::string> raw;
  std::vector<std::string> code;  // comments and literals blanked out
  std::vector<std::set<std::string>> waivers;
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Collects "exea-lint: allow(rule1, rule2)" waivers out of a comment.
void ParseWaivers(const std::string& comment, std::set<std::string>* out) {
  const std::string marker = "exea-lint: allow(";
  size_t at = comment.find(marker);
  if (at == std::string::npos) return;
  size_t open = at + marker.size();
  size_t close = comment.find(')', open);
  if (close == std::string::npos) return;
  std::string inside = comment.substr(open, close - open);
  std::string name;
  std::istringstream parts(inside);
  while (std::getline(parts, name, ',')) {
    size_t b = name.find_first_not_of(" \t");
    size_t e = name.find_last_not_of(" \t");
    if (b != std::string::npos) out->insert(name.substr(b, e - b + 1));
  }
}

// Blanks comments, string literals, and char literals (preserving line
// structure and column positions) so the rule matchers never fire inside
// them. Comment text is mined for waivers before being dropped.
void StripToCode(SourceFile* file) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  std::string comment_text;
  file->code.resize(file->raw.size());
  file->waivers.resize(file->raw.size());
  for (size_t li = 0; li < file->raw.size(); ++li) {
    const std::string& in = file->raw[li];
    std::string out(in.size(), ' ');
    if (state == State::kLineComment) state = State::kCode;
    for (size_t i = 0; i < in.size(); ++i) {
      char c = in[i];
      char next = i + 1 < in.size() ? in[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            state = State::kLineComment;
            comment_text.assign(in, i, std::string::npos);
            ParseWaivers(comment_text, &file->waivers[li]);
            i = in.size();  // rest of line is comment
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            comment_text.clear();
            ++i;
          } else if (c == '"') {
            out[i] = '"';
            state = State::kString;
          } else if (c == '\'') {
            out[i] = '\'';
            state = State::kChar;
          } else {
            out[i] = c;
          }
          break;
        case State::kBlockComment:
          comment_text.push_back(c);
          if (c == '*' && next == '/') {
            ParseWaivers(comment_text, &file->waivers[li]);
            state = State::kCode;
            ++i;
          }
          break;
        case State::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            out[i] = '"';
            state = State::kCode;
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            out[i] = '\'';
            state = State::kCode;
          }
          break;
        case State::kLineComment:
          break;  // unreachable: reset at line start
      }
    }
    if (state == State::kBlockComment) {
      ParseWaivers(comment_text, &file->waivers[li]);
      comment_text.push_back('\n');
    }
    // A string/char literal never legally spans a newline in this codebase.
    if (state == State::kString || state == State::kChar) state = State::kCode;
    file->code[li] = std::move(out);
  }
}

// ------------------------------------------------------------ declarations

// Skips leading declaration qualifiers, returns the index after them.
size_t SkipQualifiers(const std::string& s, size_t i) {
  static const char* const kQualifiers[] = {"static",   "virtual", "inline",
                                            "constexpr", "friend",  "explicit"};
  for (;;) {
    while (i < s.size() && s[i] == ' ') ++i;
    bool matched = false;
    for (const char* q : kQualifiers) {
      size_t n = std::strlen(q);
      if (s.compare(i, n, q) == 0 && i + n < s.size() && s[i + n] == ' ') {
        i += n;
        matched = true;
        break;
      }
    }
    if (!matched) return i;
  }
}

// Matches an optionally namespace-qualified Status / StatusOr<...> return
// type starting at `i`; on success sets `*after` past the type (including a
// balanced template argument list) and `*is_status_or`.
bool MatchStatusType(const std::string& s, size_t i, size_t* after,
                     bool* is_status_or) {
  if (s.compare(i, 2, "::") == 0) i += 2;
  for (const char* ns : {"exea::", "util::", "exea::util::"}) {
    size_t n = std::strlen(ns);
    if (s.compare(i, n, ns) == 0) {
      i += n;
      break;
    }
  }
  const std::string kStatus = "Status";
  if (s.compare(i, kStatus.size(), kStatus) != 0) return false;
  i += kStatus.size();
  if (s.compare(i, 2, "Or") == 0 && i + 2 < s.size() && s[i + 2] == '<') {
    i += 3;
    int depth = 1;
    while (i < s.size() && depth > 0) {
      if (s[i] == '<') ++depth;
      if (s[i] == '>') --depth;
      ++i;
    }
    if (depth != 0) return false;  // template args span lines: next line
    *is_status_or = true;
  } else {
    if (i < s.size() && IsIdentChar(s[i])) return false;  // StatusXyz
    *is_status_or = false;
  }
  *after = i;
  return true;
}

// A Status-returning function declaration found in a header.
struct Declaration {
  std::string file;
  size_t line = 0;
  std::string name;
  bool has_nodiscard = false;
};

// Scans one file for Status/StatusOr-returning function declarations.
// `joined` view: declarations in this codebase keep the return type and
// function name on one physical line (Google style), so a line scanner
// suffices.
void FindDeclarations(const SourceFile& file, std::vector<Declaration>* out) {
  std::string prev_nonblank;
  for (size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    size_t i = line.find_first_not_of(" \t");
    if (i == std::string::npos) continue;
    // `using` aliases, returns, and macro bodies are not declarations.
    if (line.compare(i, 6, "using ") == 0 || line.compare(i, 7, "return ") == 0 ||
        line.compare(i, 8, "typedef ") == 0 || line[i] == '#') {
      prev_nonblank = line;
      continue;
    }
    bool nodiscard_here = false;
    const std::string kAttr = "[[nodiscard]]";
    if (line.compare(i, kAttr.size(), kAttr) == 0) {
      nodiscard_here = true;
      i += kAttr.size();
    }
    i = SkipQualifiers(line, i);
    if (line.compare(i, kAttr.size(), kAttr) == 0) {  // static [[nodiscard]]
      nodiscard_here = true;
      i = SkipQualifiers(line, i + kAttr.size());
    }
    size_t after_type = 0;
    bool is_status_or = false;
    if (!MatchStatusType(line, i, &after_type, &is_status_or)) {
      prev_nonblank = line;
      continue;
    }
    size_t j = after_type;
    while (j < line.size() && line[j] == ' ') ++j;
    if (j == after_type || j >= line.size()) {  // no space → constructor etc.
      prev_nonblank = line;
      continue;
    }
    // Function name: identifier (possibly Class::Name for out-of-line
    // definitions) immediately followed by '('.
    size_t name_begin = j;
    while (j < line.size() &&
           (IsIdentChar(line[j]) || line.compare(j, 2, "::") == 0)) {
      j += line.compare(j, 2, "::") == 0 ? 2 : 1;
    }
    if (j == name_begin || j >= line.size() || line[j] != '(') {
      prev_nonblank = line;
      continue;
    }
    std::string qualified = line.substr(name_begin, j - name_begin);
    // Operators and qualified (out-of-line) definitions: the attribute
    // belongs on the in-class/in-header declaration, which is scanned
    // separately — still register the name for the call-site rule.
    bool out_of_line = qualified.find("::") != std::string::npos;
    size_t last_sep = qualified.rfind("::");
    std::string name = last_sep == std::string::npos
                           ? qualified
                           : qualified.substr(last_sep + 2);
    // nodiscard may also sit on its own line directly above.
    if (!nodiscard_here) {
      size_t at = prev_nonblank.find(kAttr);
      if (at != std::string::npos &&
          prev_nonblank.find_first_not_of(" \t") == at &&
          prev_nonblank.find_first_not_of(" \t", at + kAttr.size()) ==
              std::string::npos) {
        nodiscard_here = true;
      }
    }
    Declaration decl;
    decl.file = file.path;
    decl.line = li + 1;
    decl.name = name;
    decl.has_nodiscard = nodiscard_here || out_of_line || !file.is_header;
    out->push_back(decl);
    prev_nonblank = line;
  }
}

// -------------------------------------------------------------- rule pass

class Linter {
 public:
  void Scan(const std::vector<SourceFile>& files) {
    // Pass 1: registry of Status-returning function names (for the
    // call-site rule) + the nodiscard rule itself.
    for (const SourceFile& file : files) {
      std::vector<Declaration> decls;
      FindDeclarations(file, &decls);
      for (const Declaration& d : decls) {
        status_returning_.insert(d.name);
        if (!d.has_nodiscard &&
            !Waived(file, d.line, "nodiscard-status")) {
          Report(file, d.line, "nodiscard-status",
                 "declaration of '" + d.name +
                     "' returns Status/StatusOr but is not [[nodiscard]]");
        }
      }
    }
    // Pass 2: line rules.
    for (const SourceFile& file : files) {
      CheckDiscardedStatus(file);
      CheckRawRng(file);
      CheckRawNewDelete(file);
      CheckCoutLogging(file);
    }
  }

  // Sorted diagnostics; empty means the scan is clean.
  const std::vector<Diagnostic>& diagnostics() {
    std::sort(diags_.begin(), diags_.end());
    return diags_;
  }

 private:
  // A waiver applies to its own line, or — when it sits on a comment-only
  // line — to the next line (for sites too long to carry the comment).
  static bool Waived(const SourceFile& file, size_t line_1based,
                     const std::string& rule) {
    const std::set<std::string>& w = file.waivers[line_1based - 1];
    if (w.count(rule) > 0 || w.count("all") > 0) return true;
    if (line_1based >= 2) {
      size_t prev = line_1based - 2;
      const std::set<std::string>& pw = file.waivers[prev];
      bool prev_comment_only =
          file.code[prev].find_first_not_of(" \t") == std::string::npos;
      if (prev_comment_only && (pw.count(rule) > 0 || pw.count("all") > 0)) {
        return true;
      }
    }
    return false;
  }

  void Report(const SourceFile& file, size_t line, const std::string& rule,
              const std::string& message) {
    diags_.push_back({file.path, line, rule, message});
  }

  // A bare expression statement whose outermost callee is a registered
  // Status-returning function. Joins simple continuation lines so a call
  // whose argument list wraps is still seen as one statement.
  void CheckDiscardedStatus(const SourceFile& file) {
    // Last significant character of the previous code line; a physical line
    // is only a *statement start* when the previous one ended a statement
    // (';'), opened or closed a block, or was a label/access specifier.
    // Continuation lines of a wrapped assignment or argument list are not
    // statement starts and must not be re-read as bare calls.
    char prev_end = ';';
    for (size_t li = 0; li < file.code.size(); ++li) {
      const std::string& line = file.code[li];
      size_t i = line.find_first_not_of(" \t");
      if (i == std::string::npos) continue;
      char saved_prev_end = prev_end;
      size_t tail = line.find_last_not_of(" \t");
      prev_end = line[tail];
      if (line[i] == '#') continue;  // preprocessor: does not end statements
      bool statement_start = saved_prev_end == ';' || saved_prev_end == '{' ||
                             saved_prev_end == '}' || saved_prev_end == ':';
      if (!statement_start) continue;
      if (!IsIdentChar(line[i]) && line.compare(i, 2, "::") != 0) continue;
      // Leading keyword → not a bare call statement.
      static const char* const kKeywords[] = {
          "return", "if",   "while", "for",    "switch", "case",
          "else",   "do",   "goto",  "delete", "new",    "throw",
          "using",  "co_return"};
      bool keyword = false;
      for (const char* k : kKeywords) {
        size_t n = std::strlen(k);
        if (line.compare(i, n, k) == 0 &&
            (i + n >= line.size() || !IsIdentChar(line[i + n]))) {
          keyword = true;
          break;
        }
      }
      if (keyword) continue;
      // Outermost callee: a chain of identifiers joined by :: . ->
      // immediately followed by '('.
      size_t j = i;
      size_t callee_begin = i;
      while (j < line.size()) {
        if (IsIdentChar(line[j])) {
          ++j;
        } else if (line.compare(j, 2, "::") == 0) {
          j += 2;
          callee_begin = j;
        } else if (line[j] == '.') {
          ++j;
          callee_begin = j;
        } else if (line.compare(j, 2, "->") == 0) {
          j += 2;
          callee_begin = j;
        } else {
          break;
        }
      }
      if (j >= line.size() || line[j] != '(' || j == callee_begin) continue;
      std::string callee = line.substr(callee_begin, j - callee_begin);
      if (status_returning_.count(callee) == 0) continue;
      // Join continuations until the statement terminates, then require the
      // whole statement to be exactly <call-expression>; — an assignment,
      // comparison, or larger expression is not a discard.
      std::string statement = line.substr(i);
      size_t last = li;
      for (size_t k = li + 1;
           k < file.code.size() && statement.find(';') == std::string::npos &&
           k < li + 12;
           ++k) {
        statement += ' ';
        statement += file.code[k];
        last = k;
      }
      size_t semi = statement.find(';');
      if (semi == std::string::npos) continue;
      statement.resize(semi);
      if (statement.find('=') != std::string::npos) continue;
      // The statement must end exactly at the paren closing the callee's
      // own argument list: `Foo(...)` is a discard, `Foo(...).ok()` is not.
      size_t open = statement.find('(', j - i);
      if (open == std::string::npos) continue;
      int depth = 0;
      size_t close = std::string::npos;
      for (size_t k = open; k < statement.size(); ++k) {
        if (statement[k] == '(') ++depth;
        if (statement[k] == ')' && --depth == 0) {
          close = k;
          break;
        }
      }
      if (close == std::string::npos ||
          statement.find_first_not_of(" \t", close + 1) !=
              std::string::npos) {
        continue;
      }
      if (Waived(file, li + 1, "discarded-status")) continue;
      (void)last;
      Report(file, li + 1, "discarded-status",
             "result of Status-returning call '" + callee +
                 "' is discarded; check it, EXEA_RETURN_IF_ERROR it, or "
                 "EXEA_CHECK_OK it");
    }
  }

  void CheckRawRng(const SourceFile& file) {
    if (file.is_rng_impl) return;
    for (size_t li = 0; li < file.code.size(); ++li) {
      const std::string& line = file.code[li];
      if (line.find("std::random_device") != std::string::npos &&
          !Waived(file, li + 1, "raw-rng")) {
        Report(file, li + 1, "raw-rng",
               "std::random_device is nondeterministic; seed a util Rng "
               "instead");
      }
      for (const char* fn : {"rand", "srand"}) {
        size_t at = 0;
        size_t n = std::strlen(fn);
        while ((at = line.find(fn, at)) != std::string::npos) {
          // Word boundary on the left ("operand(" is fine; "std::rand(" is
          // not, ':' being a non-identifier char) and a call paren on the
          // right.
          bool left_ok = at == 0 || !IsIdentChar(line[at - 1]);
          bool call = at + n < line.size() && line[at + n] == '(';
          if (left_ok && call && !Waived(file, li + 1, "raw-rng")) {
            Report(file, li + 1, "raw-rng",
                   std::string(fn) +
                       "() bypasses the seeded util Rng; all randomness "
                       "must be reproducible");
            break;
          }
          at += n;
        }
      }
    }
  }

  void CheckRawNewDelete(const SourceFile& file) {
    for (size_t li = 0; li < file.code.size(); ++li) {
      const std::string& line = file.code[li];
      for (const char* kw : {"new", "delete"}) {
        size_t n = std::strlen(kw);
        size_t at = 0;
        while ((at = line.find(kw, at)) != std::string::npos) {
          bool left = at == 0 || !IsIdentChar(line[at - 1]);
          bool right = at + n >= line.size() || !IsIdentChar(line[at + n]);
          if (!left || !right) {
            at += n;
            continue;
          }
          // "= delete" / "= delete;" is a deleted function, not a
          // deallocation.
          if (kw[0] == 'd') {
            size_t prev = line.find_last_not_of(" \t", at == 0 ? 0 : at - 1);
            if (prev != std::string::npos && line[prev] == '=') {
              at += n;
              continue;
            }
          }
          if (!Waived(file, li + 1, "raw-new-delete")) {
            Report(file, li + 1, "raw-new-delete",
                   std::string("naked '") + kw +
                       "': use containers / std::make_unique, or waive "
                       "with a justification for deliberate leaky "
                       "singletons");
          }
          at += n;
        }
      }
    }
  }

  void CheckCoutLogging(const SourceFile& file) {
    if (!file.in_src) return;
    for (size_t li = 0; li < file.code.size(); ++li) {
      if (file.code[li].find("std::cout") != std::string::npos &&
          !Waived(file, li + 1, "cout-logging")) {
        Report(file, li + 1, "cout-logging",
               "library code must log via EXEA_LOG; stdout is reserved for "
               "tools/ and bench/");
      }
    }
  }

  std::set<std::string> status_returning_;
  std::vector<Diagnostic> diags_;
};

// ------------------------------------------------------------------ driver

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool LoadFile(const fs::path& path, SourceFile* out) {
  std::ifstream in(path);
  if (!in) return false;
  out->path = path.generic_string();
  out->is_header = HasSuffix(out->path, ".h");
  // Classify by path segment, so absolute and relative invocations agree.
  std::string generic = "/" + out->path;
  out->in_src = generic.find("/src/") != std::string::npos;
  out->is_rng_impl = generic.find("/util/rng.") != std::string::npos;
  std::string line;
  while (std::getline(in, line)) out->raw.push_back(line);
  StripToCode(out);
  return true;
}

void CollectFiles(const fs::path& root, std::vector<fs::path>* out) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    out->push_back(root);
    return;
  }
  if (!fs::is_directory(root, ec)) return;
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec)) continue;
    std::string p = it->path().generic_string();
    if (HasSuffix(p, ".cc") || HasSuffix(p, ".h")) out->push_back(it->path());
  }
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--help") {
      std::printf(
          "usage: exea_lint [--root <dir>] [paths...]\n"
          "Checks project rules over C++ sources; with no paths, scans\n"
          "<root>/src, <root>/tools, <root>/bench. Exits nonzero if any\n"
          "rule fires. Rules: nodiscard-status discarded-status raw-rng\n"
          "raw-new-delete cout-logging\n");
      return 0;
    } else {
      inputs.emplace_back(arg);
    }
  }
  if (inputs.empty()) {
    for (const char* sub : {"src", "tools", "bench"}) {
      inputs.push_back(root / sub);
    }
  }

  std::vector<fs::path> paths;
  for (const fs::path& input : inputs) CollectFiles(input, &paths);
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  if (paths.empty()) {
    std::fprintf(stderr, "exea_lint: no .cc/.h files found under inputs\n");
    return 2;
  }

  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const fs::path& path : paths) {
    SourceFile file;
    if (!LoadFile(path, &file)) {
      std::fprintf(stderr, "exea_lint: cannot read %s\n",
                   path.generic_string().c_str());
      return 2;
    }
    files.push_back(std::move(file));
  }

  Linter linter;
  linter.Scan(files);
  const std::vector<Diagnostic>& diags = linter.diagnostics();
  for (const Diagnostic& d : diags) {
    std::printf("%s:%zu: %s: %s\n", d.file.c_str(), d.line, d.rule.c_str(),
                d.message.c_str());
  }
  std::fprintf(stderr, "exea_lint: %zu file(s), %zu violation(s)\n",
               files.size(), diags.size());
  return diags.empty() ? 0 : 1;
}
