// Tests for the eval layer: ranked similarity, greedy/mutual-best
// inference, metrics, and the fidelity harness mechanics (with a stub
// model so the protocol itself is exercised deterministically).

#include <memory>

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "emb/model.h"
#include "eval/fidelity.h"
#include "eval/inference.h"
#include "eval/metrics.h"
#include "kg/neighborhood.h"

namespace exea::eval {
namespace {

// A fixed-embedding model: entity i on either side embeds to a one-hot-ish
// vector, with configurable overrides. Lets inference tests construct
// exact similarity structures.
class StubModel : public emb::EAModel {
 public:
  StubModel(size_t n1, size_t n2, size_t dim) : ent1_(n1, dim), ent2_(n2, dim) {}

  std::string name() const override { return "Stub"; }
  void Train(const data::EaDataset& dataset) override { trained_on_ = &dataset; }
  const la::Matrix& EntityEmbeddings(kg::KgSide side) const override {
    return side == kg::KgSide::kSource ? ent1_ : ent2_;
  }
  std::unique_ptr<emb::EAModel> CloneUntrained() const override {
    auto clone = std::make_unique<StubModel>(ent1_.rows(), ent2_.rows(),
                                             ent1_.cols());
    clone->ent1_ = ent1_;
    clone->ent2_ = ent2_;
    return clone;
  }

  la::Matrix ent1_;
  la::Matrix ent2_;
  const data::EaDataset* trained_on_ = nullptr;
};

// ------------------------------------------------------- RankedSimilarity

TEST(RankedSimilarityTest, CandidatesSortedDescending) {
  StubModel model(2, 3, 2);
  model.ent1_.SetRow(0, {1, 0});
  model.ent1_.SetRow(1, {0, 1});
  model.ent2_.SetRow(0, {1, 0});      // identical to source 0
  model.ent2_.SetRow(1, {0.7f, 0.7f});
  model.ent2_.SetRow(2, {0, 1});
  RankedSimilarity ranked(model, {0, 1}, {0, 1, 2});
  const auto& c0 = ranked.CandidatesFor(0);
  ASSERT_EQ(c0.size(), 3u);
  EXPECT_EQ(c0[0].target, 0u);
  EXPECT_EQ(c0[1].target, 1u);
  EXPECT_EQ(c0[2].target, 2u);
  EXPECT_NEAR(ranked.Sim(0, 0), 1.0, 1e-6);
  EXPECT_NEAR(ranked.Sim(0, 2), 0.0, 1e-6);
}

TEST(RankedSimilarityTest, GreedyTakesTopCandidate) {
  StubModel model(2, 2, 2);
  model.ent1_.SetRow(0, {1, 0});
  model.ent1_.SetRow(1, {1, 0.1f});  // also closest to target 0
  model.ent2_.SetRow(0, {1, 0});
  model.ent2_.SetRow(1, {0, 1});
  RankedSimilarity ranked(model, {0, 1}, {0, 1});
  kg::AlignmentSet aligned = GreedyAlign(ranked);
  // Both sources pick target 0 -> a one-to-many conflict, by design.
  EXPECT_TRUE(aligned.Contains(0, 0));
  EXPECT_TRUE(aligned.Contains(1, 0));
  EXPECT_FALSE(aligned.IsOneToOne());
}

TEST(RankedSimilarityTest, MutualBestDropsConflicts) {
  StubModel model(2, 2, 2);
  model.ent1_.SetRow(0, {1, 0});
  model.ent1_.SetRow(1, {1, 0.1f});
  model.ent2_.SetRow(0, {1, 0});
  model.ent2_.SetRow(1, {0, 1});
  RankedSimilarity ranked(model, {0, 1}, {0, 1});
  kg::AlignmentSet aligned = MutualBestAlign(ranked);
  // Target 0's best source is 0 (cos exactly 1), so (1, 0) is dropped.
  EXPECT_TRUE(aligned.Contains(0, 0));
  EXPECT_FALSE(aligned.Contains(1, 0));
  EXPECT_TRUE(aligned.IsOneToOne());
}

// ----------------------------------------------------------------- metrics

TEST(MetricsTest, HitsAtK) {
  StubModel model(2, 3, 2);
  model.ent1_.SetRow(0, {1, 0});
  model.ent1_.SetRow(1, {0, 1});
  model.ent2_.SetRow(0, {0.9f, 0.1f});
  model.ent2_.SetRow(1, {1, 0});
  model.ent2_.SetRow(2, {0, 1});
  RankedSimilarity ranked(model, {0, 1}, {0, 1, 2});
  std::unordered_map<kg::EntityId, kg::EntityId> gold{{0, 0}, {1, 2}};
  // Source 0's gold target 0 ranks second; source 1's gold ranks first.
  EXPECT_NEAR(HitsAtK(ranked, gold, 1), 0.5, 1e-9);
  EXPECT_NEAR(HitsAtK(ranked, gold, 2), 1.0, 1e-9);
}

TEST(MetricsTest, BinaryClassification) {
  std::vector<bool> predicted{true, true, false, false, true};
  std::vector<bool> gold{true, false, true, false, true};
  BinaryClassificationResult r = EvaluateBinary(predicted, gold);
  EXPECT_EQ(r.true_positives, 2u);
  EXPECT_EQ(r.false_positives, 1u);
  EXPECT_EQ(r.false_negatives, 1u);
  EXPECT_NEAR(r.precision, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(r.recall, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(r.f1, 2.0 / 3.0, 1e-9);
}

TEST(MetricsTest, BinaryEdgeCases) {
  BinaryClassificationResult none = EvaluateBinary({false}, {true});
  EXPECT_EQ(none.precision, 0.0);
  EXPECT_EQ(none.f1, 0.0);
  BinaryClassificationResult perfect =
      EvaluateBinary({true, false}, {true, false});
  EXPECT_EQ(perfect.f1, 1.0);
}

TEST(MetricsTest, SparsityFormula) {
  EXPECT_NEAR(Sparsity(3, 10), 0.7, 1e-9);
  EXPECT_EQ(Sparsity(0, 0), 0.0);
  EXPECT_EQ(Sparsity(10, 10), 0.0);
}

// ---------------------------------------------------------------- fidelity

class FidelityTest : public ::testing::Test {
 protected:
  static const data::EaDataset& Dataset() {
    static const data::EaDataset* dataset = new data::EaDataset(
        data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny));
    return *dataset;
  }
};

TEST_F(FidelityTest, EmptySamplesYieldZeros) {
  std::unique_ptr<emb::EAModel> model =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  model->Train(Dataset());
  FidelityResult result = EvaluateFidelity(Dataset(), *model, {});
  EXPECT_EQ(result.num_samples, 0u);
  EXPECT_EQ(result.fidelity, 0.0);
}

TEST_F(FidelityTest, KeepingAllCandidatesPreservesCorrectPredictions) {
  // When the "explanation" is the full candidate set, nothing is removed,
  // so retraining reproduces the original predictions exactly
  // (deterministic training) and fidelity is 1.
  std::unique_ptr<emb::EAModel> model =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  model->Train(Dataset());
  RankedSimilarity ranked = RankTestEntities(*model, Dataset());
  std::vector<FidelitySample> samples;
  for (const kg::AlignedPair& pair : Dataset().test) {
    if (samples.size() >= 10) break;
    const auto& candidates = ranked.CandidatesFor(pair.source);
    if (candidates.empty() || candidates[0].target != pair.target) continue;
    FidelitySample sample;
    sample.e1 = pair.source;
    sample.e2 = pair.target;
    sample.candidates1 = kg::TriplesWithinHops(Dataset().kg1, pair.source, 1);
    sample.candidates2 = kg::TriplesWithinHops(Dataset().kg2, pair.target, 1);
    sample.explanation1 = sample.candidates1;
    sample.explanation2 = sample.candidates2;
    samples.push_back(std::move(sample));
  }
  ASSERT_GE(samples.size(), 5u);
  FidelityResult result = EvaluateFidelity(Dataset(), *model, samples);
  EXPECT_EQ(result.fidelity, 1.0);
  EXPECT_NEAR(result.sparsity, 0.0, 1e-9);
}

TEST_F(FidelityTest, SparsityAveragesAcrossSamples) {
  std::unique_ptr<emb::EAModel> model =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  model->Train(Dataset());
  FidelitySample half;
  half.e1 = Dataset().test[0].source;
  half.e2 = Dataset().test[0].target;
  half.candidates1 = kg::TriplesWithinHops(Dataset().kg1, half.e1, 1);
  half.candidates2 = kg::TriplesWithinHops(Dataset().kg2, half.e2, 1);
  // Keep half of KG1 candidates, none of KG2's.
  for (size_t i = 0; i < half.candidates1.size() / 2; ++i) {
    half.explanation1.push_back(half.candidates1[i]);
  }
  FidelityResult result = EvaluateFidelity(Dataset(), *model, {half});
  double expected = 1.0 - static_cast<double>(half.explanation1.size()) /
                              static_cast<double>(half.CandidateCount());
  EXPECT_NEAR(result.sparsity, expected, 1e-9);
}

TEST_F(FidelityTest, ExplanationTriplesNeverRemoved) {
  // A triple that appears in one sample's explanation but another
  // sample's candidates must survive the removal.
  std::unique_ptr<emb::EAModel> model =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  model->Train(Dataset());
  kg::Triple shared = kg::TriplesWithinHops(
      Dataset().kg1, Dataset().test[0].source, 1)[0];
  FidelitySample keeper;
  keeper.e1 = Dataset().test[0].source;
  keeper.e2 = Dataset().test[0].target;
  keeper.candidates1 = {shared};
  keeper.explanation1 = {shared};
  FidelitySample dropper;
  dropper.e1 = Dataset().test[1].source;
  dropper.e2 = Dataset().test[1].target;
  dropper.candidates1 = {shared};  // would remove it
  // Run through the protocol; if `shared` were removed, the retrained KG
  // would not contain it. We verify via the reduced-graph construction
  // inside by checking fidelity executes and the original graph still has
  // the triple (the protocol must not mutate the input dataset).
  EvaluateFidelity(Dataset(), *model, {keeper, dropper});
  EXPECT_TRUE(Dataset().kg1.ContainsTriple(shared));
}

}  // namespace
}  // namespace exea::eval
