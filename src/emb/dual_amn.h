// Dual-AMN (Mao et al., WWW 2021), simplified. The original couples a
// relation-aware inner-graph network with a proxy-matching cross-graph
// attention layer and normalized hard sample mining. This implementation
// keeps the three ingredients the paper's analysis depends on:
//
//   1. relation-aware aggregation: a node representation is the gated sum
//      of its neighbours, h_i = w_self*e_i + mean_{(r,j)} (g_{r,dir} ⊙ e_j),
//      with separate learned gates per relation and direction (the stand-in
//      for relational reflection / dual attention);
//   2. normalized hard sample mining: a LogSumExp loss over the hardest
//      negatives from a sampled pool;
//   3. the strongest base accuracy among the structure-only models.
//
// The proxy-matching attention itself is dropped (see DESIGN.md §1); it is
// an efficiency device in the original and does not change what the
// explanation framework consumes.

#ifndef EXEA_EMB_DUAL_AMN_H_
#define EXEA_EMB_DUAL_AMN_H_

#include <memory>
#include <string>

#include "emb/model.h"

namespace exea::emb {

class DualAmn : public EAModel {
 public:
  explicit DualAmn(const TrainConfig& config) : config_(config) {}

  std::string name() const override { return "Dual-AMN"; }
  void Train(const data::EaDataset& dataset) override;
  const la::Matrix& EntityEmbeddings(kg::KgSide side) const override;
  bool HasRelationEmbeddings() const override { return true; }
  bool IsTranslationBased() const override { return false; }
  // Relation embeddings are the outgoing-direction gates.
  const la::Matrix& RelationEmbeddings(kg::KgSide side) const override;
  std::unique_ptr<EAModel> CloneUntrained() const override {
    return std::make_unique<DualAmn>(config_);
  }

 private:
  TrainConfig config_;
  la::Matrix out1_, out2_;        // aggregated output representations
  la::Matrix rel_out1_, rel_out2_;  // outgoing gates (relation embeddings)
};

}  // namespace exea::emb

#endif  // EXEA_EMB_DUAL_AMN_H_
