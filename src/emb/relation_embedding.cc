#include "emb/relation_embedding.h"

#include "la/vector_ops.h"
#include "util/logging.h"

namespace exea::emb {

la::Matrix TranslationRelationEmbeddings(
    const kg::KnowledgeGraph& graph, const la::Matrix& entity_embeddings) {
  EXEA_CHECK_EQ(entity_embeddings.rows(), graph.num_entities());
  size_t dim = entity_embeddings.cols();
  la::Matrix out(graph.num_relations(), dim);
  for (kg::RelationId r = 0; r < graph.num_relations(); ++r) {
    const std::vector<uint32_t>& indexes = graph.TriplesOfRelation(r);
    if (indexes.empty()) continue;
    float* row = out.Row(r);
    for (uint32_t idx : indexes) {
      const kg::Triple& t = graph.triples()[idx];
      const float* head = entity_embeddings.Row(t.head);
      const float* tail = entity_embeddings.Row(t.tail);
      for (size_t c = 0; c < dim; ++c) row[c] += head[c] - tail[c];
    }
    la::Scale(1.0f / static_cast<float>(indexes.size()), row, dim);
  }
  return out;
}

}  // namespace exea::emb
