# Empty dependencies file for bench_fig4_time_cost.
# This may be replaced when dependencies are built.
