#include "data/dataset.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace exea::data {

void ValidateDataset(const EaDataset& dataset) {
  size_t n1 = dataset.kg1.num_entities();
  size_t n2 = dataset.kg2.num_entities();
  // Sorted so the first out-of-range pair a failing CHECK names is the
  // same on every run, not whichever the hash order visits first.
  std::vector<std::pair<kg::EntityId, kg::EntityId>> gold_sorted(
      dataset.gold.begin(), dataset.gold.end());
  std::sort(gold_sorted.begin(), gold_sorted.end());
  for (const auto& [source, target] : gold_sorted) {
    EXEA_CHECK_LT(source, n1) << "gold source id out of range";
    EXEA_CHECK_LT(target, n2) << "gold target id out of range";
  }
  for (const kg::AlignedPair& pair : dataset.train.SortedPairs()) {
    auto it = dataset.gold.find(pair.source);
    EXEA_CHECK(it != dataset.gold.end())
        << "train pair missing from gold: " << pair.source;
  }
  for (const kg::AlignedPair& pair : dataset.test) {
    auto it = dataset.gold.find(pair.source);
    EXEA_CHECK(it != dataset.gold.end())
        << "test pair missing from gold: " << pair.source;
    EXEA_CHECK_EQ(it->second, pair.target);
    EXEA_CHECK(!dataset.train.HasSource(pair.source))
        << "test source also in train: " << pair.source;
  }
  EXEA_CHECK_EQ(dataset.test.size(), dataset.test_sources.size());
  EXEA_CHECK_EQ(dataset.test.size(), dataset.test_gold.size());
}

}  // namespace exea::data
