#include "emb/inference.h"

#include <algorithm>

#include "util/logging.h"
#include "util/parallel.h"

namespace exea::emb {

namespace {

// Raw cosine similarity matrix for the selected entity subsets.
la::Matrix SubsetSimilarity(const EAModel& model,
                            const std::vector<kg::EntityId>& sources,
                            const std::vector<kg::EntityId>& targets) {
  const la::Matrix& src_emb = model.EntityEmbeddings(kg::KgSide::kSource);
  const la::Matrix& tgt_emb = model.EntityEmbeddings(kg::KgSide::kTarget);
  size_t dim = src_emb.cols();
  la::Matrix src(sources.size(), dim);
  la::Matrix tgt(targets.size(), dim);
  for (size_t i = 0; i < sources.size(); ++i) {
    src.SetRow(i, src_emb.RowCopy(sources[i]));
  }
  for (size_t j = 0; j < targets.size(); ++j) {
    tgt.SetRow(j, tgt_emb.RowCopy(targets[j]));
  }
  return la::CosineSimilarityMatrix(src, tgt);
}

}  // namespace

RankedSimilarity::RankedSimilarity(const EAModel& model,
                                   const std::vector<kg::EntityId>& sources,
                                   const std::vector<kg::EntityId>& targets)
    : RankedSimilarity(SubsetSimilarity(model, sources, targets), sources,
                       targets) {}

RankedSimilarity::RankedSimilarity(la::Matrix sim,
                                   std::vector<kg::EntityId> sources,
                                   std::vector<kg::EntityId> targets)
    : sources_(std::move(sources)), targets_(std::move(targets)) {
  EXEA_CHECK_EQ(sim.rows(), sources_.size());
  EXEA_CHECK_EQ(sim.cols(), targets_.size());
  sim_ = std::move(sim);
  for (size_t i = 0; i < sources_.size(); ++i) {
    source_pos_[sources_[i]] = i;
  }
  for (size_t j = 0; j < targets_.size(); ++j) {
    target_pos_[targets_[j]] = j;
  }

  // Each source's candidate sort is independent; ranked_[i] is written by
  // exactly one task, so the ranking is identical at any thread count.
  ranked_.resize(sources_.size());
  util::ParallelFor(0, sources_.size(), /*grain=*/8, [&](size_t i) {
    std::vector<Candidate> candidates(targets_.size());
    const float* row = sim_.Row(i);
    for (size_t j = 0; j < targets_.size(); ++j) {
      candidates[j] = {targets_[j], row[j]};
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.target < b.target;
              });
    ranked_[i] = std::move(candidates);
  });
}

const std::vector<Candidate>& RankedSimilarity::CandidatesFor(
    kg::EntityId source) const {
  auto it = source_pos_.find(source);
  EXEA_CHECK(it != source_pos_.end())
      << "unknown source entity in RankedSimilarity: " << source;
  return ranked_[it->second];
}

double RankedSimilarity::Sim(kg::EntityId source, kg::EntityId target) const {
  auto src_it = source_pos_.find(source);
  auto tgt_it = target_pos_.find(target);
  EXEA_CHECK(src_it != source_pos_.end());
  EXEA_CHECK(tgt_it != target_pos_.end());
  return sim_.At(src_it->second, tgt_it->second);
}

kg::AlignmentSet GreedyAlign(const RankedSimilarity& ranked) {
  kg::AlignmentSet out;
  for (kg::EntityId source : ranked.sources()) {
    const std::vector<Candidate>& candidates = ranked.CandidatesFor(source);
    if (!candidates.empty()) {
      out.Add(source, candidates[0].target);
    }
  }
  return out;
}

kg::AlignmentSet MutualBestAlign(const RankedSimilarity& ranked) {
  // Best source for every target.
  std::unordered_map<kg::EntityId, std::pair<kg::EntityId, float>> best_source;
  for (kg::EntityId source : ranked.sources()) {
    for (kg::EntityId target : ranked.targets()) {
      float sim = static_cast<float>(ranked.Sim(source, target));
      auto it = best_source.find(target);
      if (it == best_source.end() || sim > it->second.second ||
          (sim == it->second.second && source < it->second.first)) {
        best_source[target] = {source, sim};
      }
    }
  }
  kg::AlignmentSet out;
  for (kg::EntityId source : ranked.sources()) {
    const std::vector<Candidate>& candidates = ranked.CandidatesFor(source);
    if (candidates.empty()) continue;
    kg::EntityId target = candidates[0].target;
    if (best_source[target].first == source) {
      out.Add(source, target);
    }
  }
  return out;
}

RankedSimilarity RankTestEntities(const EAModel& model,
                                  const data::EaDataset& dataset) {
  std::vector<kg::EntityId> targets;
  targets.reserve(dataset.test.size());
  for (const kg::AlignedPair& pair : dataset.test) {
    targets.push_back(pair.target);
  }
  std::sort(targets.begin(), targets.end());
  return RankedSimilarity(model, dataset.test_sources, targets);
}

}  // namespace exea::emb
