// Weighted ridge regression solved in closed form. This is the
// interpretable surrogate model required by the EALime baseline (LIME fits
// a locally-weighted linear model) and by the KernelSHAP variant of
// EAShapley (Shapley kernel weights).
//
// Solves  min_w  sum_i  weight_i * (x_i . w + b - y_i)^2  +  l2 * |w|^2
// via the normal equations with a Cholesky factorization. Feature counts in
// these use cases are small (tens of triples), so the O(d^3) solve is
// negligible.

#ifndef EXEA_LA_LINREG_H_
#define EXEA_LA_LINREG_H_

#include <vector>

#include "util/status.h"

namespace exea::la {

struct LinearModel {
  std::vector<double> weights;  // one per feature
  double intercept = 0.0;
};

struct RidgeOptions {
  double l2 = 1e-6;          // ridge strength (keeps the system SPD)
  bool fit_intercept = true;
};

// Fits a weighted ridge regression.
//   rows:          n samples, each with d features (all same length)
//   targets:       n values
//   sample_weight: n non-negative weights (empty = all ones)
// Fails on shape mismatches or if the normal equations are singular even
// after ridge regularization.
[[nodiscard]] StatusOr<LinearModel> FitWeightedRidge(
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& targets,
    const std::vector<double>& sample_weight, const RidgeOptions& options);

// Prediction for a single feature vector.
double Predict(const LinearModel& model, const std::vector<double>& features);

// Solves A x = b for symmetric positive-definite A (in-place Cholesky).
// `a` is row-major n*n. Fails if A is not SPD.
[[nodiscard]] StatusOr<std::vector<double>> SolveSpd(std::vector<double> a,
                                       std::vector<double> b);

}  // namespace exea::la

#endif  // EXEA_LA_LINREG_H_
