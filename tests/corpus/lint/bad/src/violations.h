// Seeded-violation fixture for lint_test: every rule exea_lint knows must
// fire at least once in this directory. Never compiled, never scanned by
// the repo-wide lint run (which covers src/ tools/ bench/ only).
#ifndef EXEA_TESTS_CORPUS_LINT_BAD_SRC_VIOLATIONS_H_
#define EXEA_TESTS_CORPUS_LINT_BAD_SRC_VIOLATIONS_H_

namespace demo {

util::Status DoThing();  // missing [[nodiscard]] → nodiscard-status

[[nodiscard]] util::Status DoOther();  // compliant: registered, not flagged

}  // namespace demo

#endif  // EXEA_TESTS_CORPUS_LINT_BAD_SRC_VIOLATIONS_H_
