// On-disk I/O for KGs and alignments in the DBP15K/OpenEA TSV layout:
//   triples:    head \t relation \t tail   (one triple per line)
//   alignment:  source_entity \t target_entity

#ifndef EXEA_KG_KG_IO_H_
#define EXEA_KG_KG_IO_H_

#include <string>
#include <vector>

#include "kg/alignment.h"
#include "kg/graph.h"
#include "util/status.h"

namespace exea::kg {

// Loads a triple file into a new KnowledgeGraph.
[[nodiscard]] StatusOr<KnowledgeGraph> LoadTriples(const std::string& path);

// Loads a triple file into an existing graph (names already present are
// reused; new ones are interned). Pre-interning the dictionaries before
// calling this pins the id space, which is what the serving snapshot
// format relies on to keep embedding rows aligned with entity ids.
[[nodiscard]]
Status LoadTriplesInto(const std::string& path, KnowledgeGraph& graph);

// Writes all triples of `graph` to `path`.
[[nodiscard]]
Status SaveTriples(const KnowledgeGraph& graph, const std::string& path);

// Writes the dictionary's names one per line, in id order. Names must be
// newline-free (the TSV layout already requires this).
[[nodiscard]]
Status SaveDictionary(const Dictionary& dictionary, const std::string& path);

// Reads a dictionary file back as names in id order. Blank lines are
// rejected (a name can never be empty).
[[nodiscard]] StatusOr<std::vector<std::string>> LoadDictionaryNames(
    const std::string& path);

// Loads an alignment file, resolving names in the two graphs.
// Unknown entity names fail with NOT_FOUND.
[[nodiscard]] StatusOr<AlignmentSet> LoadAlignment(const std::string& path,
                                     const KnowledgeGraph& source,
                                     const KnowledgeGraph& target);

// Writes pairs as name TSV.
[[nodiscard]] Status SaveAlignment(const AlignmentSet& alignment,
                     const KnowledgeGraph& source,
                     const KnowledgeGraph& target, const std::string& path);

}  // namespace exea::kg

#endif  // EXEA_KG_KG_IO_H_
