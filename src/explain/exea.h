// ExeaExplainer: the user-facing facade of the explanation core.
//
// Wraps a trained EAModel and a dataset and provides, per EA pair:
//   * Explain()      — the semantic matching subgraph (Section III-A),
//   * BuildAdg()     — the alignment dependency graph with Eq. (9)
//                      confidence (Section III-B),
//   * Confidence()   — both steps fused.
//
// The explainer owns the derived artifacts the core needs: PARIS relation
// functionality tables for both KGs and a uniform set of relation
// embeddings (the model's own when available, Eq. (1) translation-based
// otherwise). Path enumeration and Eq. (2) path embeddings are memoized per
// entity, which is what keeps the repair loops (Algorithms 1 and 2, which
// call Explain per candidate) fast.

#ifndef EXEA_EXPLAIN_EXEA_H_
#define EXEA_EXPLAIN_EXEA_H_

#include <unordered_map>

#include "data/dataset.h"
#include "emb/model.h"
#include "explain/adg.h"
#include "explain/config.h"
#include "explain/explanation.h"
#include "explain/matcher.h"
#include "kg/functionality.h"

namespace exea::explain {

class ExeaExplainer {
 public:
  // `dataset` and `model` are borrowed and must outlive the explainer;
  // the model must already be trained.
  ExeaExplainer(const data::EaDataset& dataset, const emb::EAModel& model,
                const ExeaConfig& config);

  ExeaExplainer(const ExeaExplainer&) = delete;
  ExeaExplainer& operator=(const ExeaExplainer&) = delete;

  // Generates the semantic matching subgraph for (e1, e2) under the given
  // alignment context. Fills the candidate triple lists.
  Explanation Explain(kg::EntityId e1, kg::EntityId e2,
                      const AlignmentContext& context) const;

  // Builds the ADG of an explanation produced by Explain().
  Adg BuildAdg(const Explanation& explanation) const;

  // Convenience: Explain + BuildAdg, returning only the confidence.
  double Confidence(kg::EntityId e1, kg::EntityId e2,
                    const AlignmentContext& context) const;

  const ExeaConfig& config() const { return config_; }
  const data::EaDataset& dataset() const { return *dataset_; }
  const emb::EAModel& model() const { return *model_; }
  const kg::RelationFunctionality& functionality1() const { return func1_; }
  const kg::RelationFunctionality& functionality2() const { return func2_; }
  const la::Matrix& relation_embeddings1() const { return rel1_; }
  const la::Matrix& relation_embeddings2() const { return rel2_; }

 private:
  const PathsWithEmbeddings& PathsFor(kg::KgSide side, kg::EntityId e) const;

  const data::EaDataset* dataset_;
  const emb::EAModel* model_;
  ExeaConfig config_;
  kg::RelationFunctionality func1_;
  kg::RelationFunctionality func2_;
  la::Matrix rel1_;  // relation embeddings, source KG
  la::Matrix rel2_;  // relation embeddings, target KG
  mutable std::unordered_map<kg::EntityId, PathsWithEmbeddings> cache1_;
  mutable std::unordered_map<kg::EntityId, PathsWithEmbeddings> cache2_;
};

}  // namespace exea::explain

#endif  // EXEA_EXPLAIN_EXEA_H_
