// GCN-Align (Wang et al., EMNLP 2018): the first GCN-based EA model.
// Trainable input features are propagated through two graph-convolution
// layers over the (symmetrically normalized, self-looped) adjacency of each
// KG; a margin-based loss on the seed alignment pulls counterpart outputs
// together. GCN-Align does not model relations — it only sees the adjacency
// structure — which is exactly the limitation the paper's case study and
// the cr1 ablation attribute to it. Accordingly HasRelationEmbeddings() is
// false and downstream consumers fall back to Eq. (1).

#ifndef EXEA_EMB_GCN_ALIGN_H_
#define EXEA_EMB_GCN_ALIGN_H_

#include <memory>
#include <string>

#include "emb/model.h"

namespace exea::emb {

class GcnAlign : public EAModel {
 public:
  explicit GcnAlign(const TrainConfig& config) : config_(config) {}

  std::string name() const override { return "GCN-Align"; }
  void Train(const data::EaDataset& dataset) override;
  const la::Matrix& EntityEmbeddings(kg::KgSide side) const override;
  bool HasRelationEmbeddings() const override { return false; }
  bool IsTranslationBased() const override { return false; }
  std::unique_ptr<EAModel> CloneUntrained() const override {
    return std::make_unique<GcnAlign>(config_);
  }

 private:
  TrainConfig config_;
  la::Matrix out1_, out2_;  // final-layer representations
};

}  // namespace exea::emb

#endif  // EXEA_EMB_GCN_ALIGN_H_
