#include "lint/emit.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "lint/source.h"

namespace lint {

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void PrintText(const std::vector<Diagnostic>& diags) {
  for (const Diagnostic& d : diags) {
    if (d.baselined) continue;
    std::printf("%s:%zu:%zu: %s: %s\n", d.file.c_str(), d.line, d.col,
                d.rule.c_str(), d.message.c_str());
  }
}

void PrintJson(const std::vector<Diagnostic>& diags) {
  std::printf("[");
  size_t emitted = 0;
  for (const Diagnostic& d : diags) {
    if (d.baselined) continue;
    std::printf(
        "%s\n  {\"file\":\"%s\",\"line\":%zu,\"col\":%zu,"
        "\"rule\":\"%s\",\"family\":\"%s\",\"message\":\"%s\"}",
        emitted == 0 ? "" : ",", JsonEscape(d.file).c_str(), d.line, d.col,
        d.rule.c_str(), FamilyOf(d.rule), JsonEscape(d.message).c_str());
    ++emitted;
  }
  std::printf("%s]\n", emitted == 0 ? "" : "\n");
}

void PrintSarif(const std::vector<Diagnostic>& diags) {
  std::string out;
  out += "{\"$schema\":"
         "\"https://json.schemastore.org/sarif-2.1.0.json\","
         "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
         "\"name\":\"exea_lint\",\"rules\":[";
  for (size_t i = 0; i < kRuleCount; ++i) {
    if (i > 0) out += ",";
    out += "{\"id\":\"";
    out += kRules[i].name;
    out += "\",\"shortDescription\":{\"text\":\"";
    out += JsonEscape(kRules[i].description);
    out += "\"},\"properties\":{\"family\":\"";
    out += kRules[i].family;
    out += "\"}}";
  }
  out += "]}},\"results\":[";
  for (size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    if (i > 0) out += ",";
    out += "{\"ruleId\":\"" + JsonEscape(d.rule) +
           "\",\"level\":\"error\",\"message\":{\"text\":\"" +
           JsonEscape(d.message) +
           "\"},\"locations\":[{\"physicalLocation\":{"
           "\"artifactLocation\":{\"uri\":\"" +
           JsonEscape(d.file) + "\"},\"region\":{\"startLine\":" +
           std::to_string(d.line) + ",\"startColumn\":" +
           std::to_string(d.col) + "}}}]";
    if (d.baselined) {
      out += ",\"suppressions\":[{\"kind\":\"external\"}]";
    }
    out += "}";
  }
  out += "]}]}\n";
  std::fputs(out.c_str(), stdout);
}

uint64_t DiagFingerprint(const Diagnostic& d, const std::string& line_text) {
  size_t b = line_text.find_first_not_of(" \t");
  size_t e = line_text.find_last_not_of(" \t");
  std::string trimmed =
      b == std::string::npos ? "" : line_text.substr(b, e - b + 1);
  return Fnv1a64(d.rule + "|" + NormalizedRepoPath(d.file) + "|" + trimmed);
}

bool LoadBaseline(const std::filesystem::path& path, Baseline* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    size_t b = line.find_first_not_of(" \t");
    if (b == std::string::npos || line[b] == '#') continue;
    std::istringstream words(line);
    std::string fp_hex;
    size_t count = 0;
    if (!(words >> fp_hex >> count)) continue;
    // Whole-token hex parse; a malformed fingerprint line is skipped
    // rather than half-parsed. (The lint library is dependency-free, so
    // this uses from_chars directly instead of util::ParseUint64Hex.)
    uint64_t fp = 0;
    auto [ptr, ec] =
        std::from_chars(fp_hex.data(), fp_hex.data() + fp_hex.size(), fp, 16);
    if (ec != std::errc() || ptr != fp_hex.data() + fp_hex.size()) continue;
    if (count == 0) continue;
    out->counts[fp] += count;
  }
  return true;
}

size_t ApplyBaseline(const Baseline& baseline, LineSource* lines,
                     std::vector<Diagnostic>* diags) {
  std::map<uint64_t, size_t> remaining = baseline.counts;
  size_t suppressed = 0;
  for (Diagnostic& d : *diags) {
    uint64_t fp = DiagFingerprint(d, lines->Line(d.file, d.line));
    auto it = remaining.find(fp);
    if (it != remaining.end() && it->second > 0) {
      --it->second;
      d.baselined = true;
      ++suppressed;
    }
  }
  return suppressed;
}

bool WriteBaseline(const std::filesystem::path& path,
                   const std::vector<Diagnostic>& diags, LineSource* lines) {
  struct Entry {
    uint64_t fp;
    std::string rule;
    std::string where;
    size_t count = 0;
  };
  std::map<uint64_t, Entry> entries;
  for (const Diagnostic& d : diags) {
    uint64_t fp = DiagFingerprint(d, lines->Line(d.file, d.line));
    Entry& e = entries[fp];
    e.fp = fp;
    e.rule = d.rule;
    e.where = NormalizedRepoPath(d.file);
    ++e.count;
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "# exea_lint baseline: tolerated findings, one per line as\n"
         "#   <fingerprint> <count> <rule> <file>\n"
         "# The fingerprint hashes (rule, file, line text), so entries\n"
         "# survive line moves. Regenerate with --update-baseline.\n";
  for (const auto& [fp, e] : entries) {
    char fp_hex[32];
    std::snprintf(fp_hex, sizeof(fp_hex), "%016llx",
                  static_cast<unsigned long long>(fp));
    out << fp_hex << " " << e.count << " " << e.rule << " " << e.where
        << "\n";
  }
  return out.good();
}

}  // namespace lint
