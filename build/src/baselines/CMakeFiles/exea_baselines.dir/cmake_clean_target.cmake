file(REMOVE_RECURSE
  "libexea_baselines.a"
)
