#include "emb/rotate_align.h"

#include <cmath>

#include "emb/negative_sampling.h"
#include "emb/optimizer.h"
#include "la/vector_ops.h"
#include "util/logging.h"
#include "util/rng.h"

namespace exea::emb {
namespace {

// Complex view of an interleaved-block row: [re_0.. | im_0..].
struct ComplexRow {
  const float* re;
  const float* im;
};

ComplexRow View(const la::Matrix& m, size_t row, size_t half) {
  const float* r = m.Row(row);
  return {r, r + half};
}

}  // namespace

void RotAlign::Train(const data::EaDataset& dataset) {
  size_t dim = config_.dim - config_.dim % 2;  // force even
  size_t half = dim / 2;
  Rng rng(config_.seed);

  ent1_ = la::Matrix(dataset.kg1.num_entities(), dim);
  ent2_ = la::Matrix(dataset.kg2.num_entities(), dim);
  float stddev = 1.0f / std::sqrt(static_cast<float>(dim));
  ent1_.FillNormal(rng, stddev);
  ent2_.FillNormal(rng, stddev);
  ent1_.NormalizeRowsL2();
  ent2_.NormalizeRowsL2();

  // Relation phases theta (one per complex coordinate).
  la::Matrix phase1(dataset.kg1.num_relations(), half);
  la::Matrix phase2(dataset.kg2.num_relations(), half);
  // Near-identity initialization: large random rotations would give the
  // two KGs structurally incompatible spaces that seed calibration cannot
  // merge (rotations, unlike translations, do not shrink under training).
  phase1.FillUniform(rng, -0.25f, 0.25f);
  phase2.FillUniform(rng, -0.25f, 0.25f);

  AdagradTable ent1_opt(&ent1_, config_.learning_rate);
  AdagradTable ent2_opt(&ent2_, config_.learning_rate);
  AdagradTable phase1_opt(&phase1, config_.learning_rate);
  AdagradTable phase2_opt(&phase2, config_.learning_rate);

  std::vector<kg::AlignedPair> seeds = dataset.train.SortedPairs();

  // Scratch buffers reused across steps.
  std::vector<float> rotated(dim);     // h ∘ r
  std::vector<float> residual(dim);    // h ∘ r - t
  std::vector<float> grad_h(dim);
  std::vector<float> grad_t(dim);
  std::vector<float> grad_phase(half);

  // Scores a triple and fills the scratch gradients; returns ||h∘r - t||^2.
  auto score_and_grads = [&](const la::Matrix& ent, const la::Matrix& phase,
                             const kg::Triple& t) {
    ComplexRow h = View(ent, t.head, half);
    ComplexRow tail = View(ent, t.tail, half);
    const float* theta = phase.Row(t.rel);
    float score = 0.0f;
    for (size_t k = 0; k < half; ++k) {
      float c = std::cos(theta[k]);
      float s = std::sin(theta[k]);
      float rot_re = h.re[k] * c - h.im[k] * s;
      float rot_im = h.re[k] * s + h.im[k] * c;
      rotated[k] = rot_re;
      rotated[half + k] = rot_im;
      float g_re = rot_re - tail.re[k];
      float g_im = rot_im - tail.im[k];
      residual[k] = g_re;
      residual[half + k] = g_im;
      score += g_re * g_re + g_im * g_im;
      // df/dh = 2 * conj(r) ∘ g ; df/dt = -2g ; df/dtheta = 2 g·(i·(h∘r)).
      grad_h[k] = 2.0f * (g_re * c + g_im * s);
      grad_h[half + k] = 2.0f * (-g_re * s + g_im * c);
      grad_t[k] = -2.0f * g_re;
      grad_t[half + k] = -2.0f * g_im;
      grad_phase[k] = 2.0f * (-g_re * rot_im + g_im * rot_re);
    }
    return score;
  };

  auto apply = [&](AdagradTable& ent_opt, AdagradTable& phase_opt,
                   const kg::Triple& t, float sign) {
    if (sign < 0.0f) {
      for (float& v : grad_h) v = -v;
      for (float& v : grad_t) v = -v;
      for (float& v : grad_phase) v = -v;
    }
    ent_opt.Update(t.head, grad_h.data());
    ent_opt.Update(t.tail, grad_t.data());
    phase_opt.Update(t.rel, grad_phase.data());
  };

  auto epoch_over = [&](const kg::KnowledgeGraph& graph, la::Matrix& ent,
                        AdagradTable& ent_opt, la::Matrix& phase,
                        AdagradTable& phase_opt) {
    for (const kg::Triple& t : graph.triples()) {
      for (size_t n = 0; n < config_.negatives; ++n) {
        bool corrupt_tail = rng.Bernoulli(0.5);
        kg::EntityId victim = corrupt_tail ? t.tail : t.head;
        kg::EntityId negative =
            UniformNegatives(graph.num_entities(), victim, 1, rng)[0];
        kg::Triple neg = t;
        (corrupt_tail ? neg.tail : neg.head) = negative;
        float pos = score_and_grads(ent, phase, t);
        // Cache the positive gradients before scoring the negative.
        std::vector<float> pos_h = grad_h;
        std::vector<float> pos_t = grad_t;
        std::vector<float> pos_phase = grad_phase;
        float neg_score = score_and_grads(ent, phase, neg);
        if (config_.margin + pos - neg_score > 0.0f) {
          // Push the negative score up (gradients currently hold neg's).
          apply(ent_opt, phase_opt, neg, -1.0f);
          grad_h = std::move(pos_h);
          grad_t = std::move(pos_t);
          grad_phase = std::move(pos_phase);
          apply(ent_opt, phase_opt, t, +1.0f);
        }
      }
    }
  };

  std::vector<float> pull(dim);
  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    epoch_over(dataset.kg1, ent1_, ent1_opt, phase1, phase1_opt);
    epoch_over(dataset.kg2, ent2_, ent2_opt, phase2, phase2_opt);
    // Shared-space calibration (see mtranse.cc for the rationale).
    for (const kg::AlignedPair& pair : seeds) {
      float* e1 = ent1_.Row(pair.source);
      float* e2 = ent2_.Row(pair.target);
      for (size_t c = 0; c < dim; ++c) {
        float mean = 0.5f * (e1[c] + e2[c]);
        e1[c] = mean;
        e2[c] = mean;
      }
    }
    ent1_.NormalizeRowsL2();
    ent2_.NormalizeRowsL2();
  }

  // Materialize relation embeddings as unit rotations [cos | sin].
  auto materialize = [&](const la::Matrix& phase) {
    la::Matrix out(phase.rows(), dim);
    for (size_t r = 0; r < phase.rows(); ++r) {
      const float* theta = phase.Row(r);
      float* dst = out.Row(r);
      for (size_t k = 0; k < half; ++k) {
        dst[k] = std::cos(theta[k]);
        dst[half + k] = std::sin(theta[k]);
      }
    }
    return out;
  };
  rel1_ = materialize(phase1);
  rel2_ = materialize(phase2);
}

const la::Matrix& RotAlign::EntityEmbeddings(kg::KgSide side) const {
  return side == kg::KgSide::kSource ? ent1_ : ent2_;
}

const la::Matrix& RotAlign::RelationEmbeddings(kg::KgSide side) const {
  return side == kg::KgSide::kSource ? rel1_ : rel2_;
}

}  // namespace exea::emb
