#include "classical/paris.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "kg/functionality.h"
#include "util/logging.h"

namespace exea::classical {
namespace {

uint64_t Key(kg::EntityId e1, kg::EntityId e2) {
  return (static_cast<uint64_t>(e1) << 32) | e2;
}
uint64_t RelKey(kg::RelationId r1, kg::RelationId r2) {
  return (static_cast<uint64_t>(r1) << 32) | r2;
}

// Directional relation-correspondence scores R(r1 -> r2): the fraction of
// r1-triples whose endpoints are currently aligned that map onto an
// r2-triple in KG2.
std::unordered_map<uint64_t, double> RelationScores(
    const data::EaDataset& dataset,
    const std::unordered_map<kg::EntityId, kg::EntityId>& aligned) {
  std::unordered_map<uint64_t, double> hits;
  std::unordered_map<kg::RelationId, double> totals;
  for (const kg::Triple& t : dataset.kg1.triples()) {
    auto head_it = aligned.find(t.head);
    auto tail_it = aligned.find(t.tail);
    if (head_it == aligned.end() || tail_it == aligned.end()) continue;
    totals[t.rel] += 1.0;
    for (const kg::AdjacentEdge& edge : dataset.kg2.Edges(head_it->second)) {
      if (edge.outgoing && edge.neighbor == tail_it->second) {
        hits[RelKey(t.rel, edge.rel)] += 1.0;
      }
    }
  }
  std::unordered_map<uint64_t, double> scores;
  for (const auto& [key, count] : hits) {
    double total = totals[static_cast<kg::RelationId>(key >> 32)];
    if (total > 0.0) scores[key] = count / total;
  }
  return scores;
}

}  // namespace

ParisResult RunParis(const data::EaDataset& dataset,
                     const ParisOptions& options) {
  ParisResult result;
  kg::RelationFunctionality func1(dataset.kg1);
  kg::RelationFunctionality func2(dataset.kg2);

  std::unordered_set<kg::EntityId> test_sources(
      dataset.test_sources.begin(), dataset.test_sources.end());
  std::unordered_set<kg::EntityId> test_targets;
  for (const kg::AlignedPair& pair : dataset.test) {
    test_targets.insert(pair.target);
  }

  // Sparse pair-probability table over test pairs; seeds are implicit 1.
  std::unordered_map<uint64_t, double> prob;
  std::unordered_map<kg::EntityId, kg::EntityId> seed_map;
  for (const kg::AlignedPair& pair : dataset.train.SortedPairs()) {
    seed_map[pair.source] = pair.target;
  }

  auto pair_probability = [&](kg::EntityId n1, kg::EntityId n2) {
    auto seed_it = seed_map.find(n1);
    if (seed_it != seed_map.end()) {
      return seed_it->second == n2 ? 1.0 : 0.0;
    }
    auto it = prob.find(Key(n1, n2));
    return it == prob.end() ? 0.0 : it->second;
  };

  for (size_t iter = 0; iter < options.iterations; ++iter) {
    ++result.iterations_run;
    // Current decoded alignment: seeds plus confident pairs.
    std::unordered_map<kg::EntityId, kg::EntityId> aligned = seed_map;
    {
      std::unordered_map<kg::EntityId, double> best;
      for (const auto& [key, p] : prob) {
        if (p < 0.5) continue;
        kg::EntityId e1 = static_cast<kg::EntityId>(key >> 32);
        auto it = best.find(e1);
        if (it == best.end() || p > it->second) {
          best[e1] = p;
          aligned[e1] = static_cast<kg::EntityId>(key & 0xFFFFFFFFu);
        }
      }
    }
    std::unordered_map<uint64_t, double> rel_scores =
        RelationScores(dataset, aligned);

    // Noisy-or evidence accumulation per candidate pair: we accumulate
    // log(1 - evidence) to stay numerically stable.
    std::unordered_map<uint64_t, double> survival;  // prod of (1 - ev)
    for (kg::EntityId e1 : dataset.test_sources) {
      for (const kg::AdjacentEdge& edge1 : dataset.kg1.Edges(e1)) {
        kg::EntityId n1 = edge1.neighbor;
        auto n2_it = aligned.find(n1);
        if (n2_it == aligned.end()) continue;
        kg::EntityId n2 = n2_it->second;
        double p_neighbors = pair_probability(n1, n2);
        if (n1 == e1 || p_neighbors <= 0.0) continue;
        for (const kg::AdjacentEdge& edge2 : dataset.kg2.Edges(n2)) {
          // Orientation: edge1 is seen from e1 and edge2 from n2, so a
          // matching triple pair has *opposite* flags — (e1, r1, n1)
          // [outgoing from e1] corresponds to (e2, r2, n2) [incoming at
          // n2].
          if (edge2.outgoing == edge1.outgoing) continue;
          kg::EntityId e2 = edge2.neighbor;
          if (test_targets.count(e2) == 0) continue;
          auto score_it = rel_scores.find(RelKey(edge1.rel, edge2.rel));
          if (score_it == rel_scores.end()) continue;
          // PARIS evidence strength: sharing a tail identifies the head
          // when the relation is inverse-functional (and symmetrically).
          // (e1, r, n1): e1 is the head -> inverse functionality.
          double fun = edge1.outgoing
                           ? std::min(func1.InverseFunc(edge1.rel),
                                      func2.InverseFunc(edge2.rel))
                           : std::min(func1.Func(edge1.rel),
                                      func2.Func(edge2.rel));
          double evidence = score_it->second * fun * p_neighbors;
          if (evidence <= 0.0) continue;
          evidence = std::min(evidence, 0.999);
          auto [it, inserted] = survival.emplace(Key(e1, e2), 1.0);
          it->second *= 1.0 - evidence;
        }
      }
    }

    // New probability table, pruned and capped per source.
    std::unordered_map<kg::EntityId, std::vector<std::pair<double, uint64_t>>>
        per_source;
    for (const auto& [key, surv] : survival) {
      double p = 1.0 - surv;
      if (p < options.prune_threshold) continue;
      per_source[static_cast<kg::EntityId>(key >> 32)].push_back({p, key});
    }
    prob.clear();
    for (auto& [source, pairs] : per_source) {
      std::sort(pairs.begin(), pairs.end(),
                [](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first > b.first;
                  return a.second < b.second;
                });
      size_t keep = std::min(pairs.size(), options.max_candidates_per_source);
      for (size_t i = 0; i < keep; ++i) {
        prob[pairs[i].second] = pairs[i].first;
      }
    }
    result.peak_pair_count = std::max(result.peak_pair_count, prob.size());
  }

  // Decode: mutual best above the acceptance threshold.
  std::unordered_map<kg::EntityId, std::pair<kg::EntityId, double>> best_src;
  std::unordered_map<kg::EntityId, std::pair<kg::EntityId, double>> best_tgt;
  for (const auto& [key, p] : prob) {
    if (p < options.accept_threshold) continue;
    kg::EntityId e1 = static_cast<kg::EntityId>(key >> 32);
    kg::EntityId e2 = static_cast<kg::EntityId>(key & 0xFFFFFFFFu);
    auto src_it = best_src.find(e1);
    if (src_it == best_src.end() || p > src_it->second.second) {
      best_src[e1] = {e2, p};
    }
    auto tgt_it = best_tgt.find(e2);
    if (tgt_it == best_tgt.end() || p > tgt_it->second.second) {
      best_tgt[e2] = {e1, p};
    }
  }
  for (const auto& [e1, choice] : best_src) {
    kg::EntityId e2 = choice.first;
    if (best_tgt[e2].first == e1) {
      result.alignment.Add(e1, e2);
    }
  }
  return result;
}

}  // namespace exea::classical
