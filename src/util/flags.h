// Minimal command-line flag parsing for the CLI tool:
// "--key value" and "--key=value" pairs plus positional arguments.

#ifndef EXEA_UTIL_FLAGS_H_
#define EXEA_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace exea {

class Flags {
 public:
  // Parses argv[1..argc). Fails on a flag with no value ("--key" at the
  // end) or a stray "--".
  [[nodiscard]] static StatusOr<Flags> Parse(int argc, const char* const* argv);

  // Value of --name, or `fallback` when absent.
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  // Numeric accessors parse with the checked util::Parse* API: a value
  // that is not entirely a finite number yields `fallback`, never a
  // silent 0 or a partial prefix.
  int64_t GetInt(const std::string& name, int64_t fallback) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool Has(const std::string& name) const;

  // Non-flag arguments in order (e.g. the subcommand).
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace exea

#endif  // EXEA_UTIL_FLAGS_H_
