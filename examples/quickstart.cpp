// Quickstart: the ExEA pipeline end to end on a small synthetic benchmark.
//
//   1. generate an EA dataset (two correlated KGs + seed alignment),
//   2. train an embedding-based EA model (MTransE),
//   3. infer alignment and print base accuracy,
//   4. explain one predicted pair (matching subgraph + ADG + confidence),
//   5. repair the alignment (cr1 + cr2 + cr3) and print the improvement.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "data/benchmarks.h"
#include "emb/model.h"
#include "eval/inference.h"
#include "eval/metrics.h"
#include "explain/exea.h"
#include "repair/pipeline.h"
#include "util/logging.h"

int main() {
  using namespace exea;
  SetMinLogLevel(LogLevel::kWarning);

  // 1. Dataset.
  data::EaDataset dataset =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  std::printf("Dataset %s: KG1 %zu entities / %zu triples, KG2 %zu / %zu, "
              "%zu seed pairs, %zu test pairs\n",
              dataset.name.c_str(), dataset.kg1.num_entities(),
              dataset.kg1.num_triples(), dataset.kg2.num_entities(),
              dataset.kg2.num_triples(), dataset.train.size(),
              dataset.test.size());

  // 2. Model.
  emb::TrainConfig config;
  config.epochs = 40;
  std::unique_ptr<emb::EAModel> model =
      emb::MakeModel(emb::ModelKind::kMTransE, config);
  model->Train(dataset);

  // 3. Inference.
  eval::RankedSimilarity ranked = eval::RankTestEntities(*model, dataset);
  kg::AlignmentSet base = eval::GreedyAlign(ranked);
  std::printf("Base accuracy (%s): %.3f\n", model->name().c_str(),
              eval::Accuracy(base, dataset.test_gold));

  // 4. Explanation for the first correctly predicted pair.
  explain::ExeaConfig exea_config;
  explain::ExeaExplainer explainer(dataset, *model, exea_config);
  explain::AlignmentContext context(&base, &dataset.train);
  for (const kg::AlignedPair& pair : dataset.test) {
    if (!base.Contains(pair.source, pair.target)) continue;
    explain::Explanation explanation =
        explainer.Explain(pair.source, pair.target, context);
    if (explanation.empty()) continue;
    std::printf("\nExplanation for (%s, %s): %zu matched path pairs\n",
                dataset.kg1.EntityName(pair.source).c_str(),
                dataset.kg2.EntityName(pair.target).c_str(),
                explanation.matches.size());
    for (const kg::Triple& t : explanation.triples1) {
      std::printf("  KG1: (%s, %s, %s)\n",
                  dataset.kg1.EntityName(t.head).c_str(),
                  dataset.kg1.RelationName(t.rel).c_str(),
                  dataset.kg1.EntityName(t.tail).c_str());
    }
    for (const kg::Triple& t : explanation.triples2) {
      std::printf("  KG2: (%s, %s, %s)\n",
                  dataset.kg2.EntityName(t.head).c_str(),
                  dataset.kg2.RelationName(t.rel).c_str(),
                  dataset.kg2.EntityName(t.tail).c_str());
    }
    explain::Adg adg = explainer.BuildAdg(explanation);
    std::printf("  ADG: %zu neighbour nodes, c_s=%.3f, confidence=%.3f\n",
                adg.neighbors.size(), adg.strong_sum, adg.confidence);
    break;
  }

  // 5. Repair.
  repair::RepairOptions repair_options;
  repair::RepairPipeline pipeline(explainer, repair_options);
  repair::RepairReport report = pipeline.Run(base, ranked);
  std::printf("\nRepair: base=%.3f -> repaired=%.3f (Δ=%.3f)\n",
              report.base_accuracy, report.repaired_accuracy,
              report.AccuracyGain());
  std::printf("  one-to-many conflicts resolved: %zu (+%zu swaps)\n",
              report.one_to_many_conflicts, report.one_to_many_swaps);
  std::printf("  low-confidence pairs removed:   %zu (+%zu swaps, %zu greedy)\n",
              report.low_confidence_removed, report.low_confidence_swaps,
              report.greedy_fallback_matches);
  std::printf("  ADG neighbours pruned by cr1:   %zu\n",
              report.relation_conflict_prunes);
  return 0;
}
