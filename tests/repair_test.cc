// Tests for the repair module: name encoding, relation-alignment mining,
// ¬sameAs rule mining, relation-conflict detection (cr1), Algorithm 1
// (one-to-many), Algorithm 2 (low-confidence), and the pipeline facade.

#include <map>
#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "emb/model.h"
#include "eval/inference.h"
#include "eval/metrics.h"
#include "explain/exea.h"
#include "repair/conflicts.h"
#include "repair/diff.h"
#include "repair/low_confidence.h"
#include "kg/name_encoder.h"
#include "repair/neg_rules.h"
#include "repair/one_to_many.h"
#include "repair/pipeline.h"
#include "repair/relation_alignment.h"

namespace exea::repair {
namespace {

// ------------------------------------------------------------ name encoder

TEST(NameEncoderTest, IdenticalBaseNamesEmbedIdentically) {
  kg::NameEncoder encoder;
  la::Vec a = encoder.Encode("zh/successor");
  la::Vec b = encoder.Encode("en/successor");
  EXPECT_NEAR(la::Cosine(a, b), 1.0f, 1e-6f);
}

TEST(NameEncoderTest, UnrelatedNamesNearOrthogonal) {
  kg::NameEncoder encoder;
  la::Vec a = encoder.Encode("zh/successor");
  la::Vec b = encoder.Encode("en/bafflement");
  EXPECT_LT(la::Cosine(a, b), 0.5f);
}

TEST(NameEncoderTest, SharedStemScoresHigh) {
  kg::NameEncoder encoder;
  la::Vec base = encoder.Encode("dbp/rel_7");
  la::Vec split = encoder.Encode("wd/rel_7_a");
  EXPECT_GT(la::Cosine(base, split), 0.5f);
}

TEST(NameEncoderTest, StripNamespace) {
  EXPECT_EQ(kg::StripNamespace("en/foo"), "foo");
  EXPECT_EQ(kg::StripNamespace("no_namespace"), "no_namespace");
  EXPECT_EQ(kg::StripNamespace("a/b/c"), "b/c");
}

TEST(NameEncoderTest, EncodingIsUnitNorm) {
  kg::NameEncoder encoder;
  EXPECT_NEAR(la::Norm(encoder.Encode("anything")), 1.0f, 1e-5f);
}

// ------------------------------------------------------- relation alignment

TEST(RelationAlignmentTest, MutualBestPairsSimple) {
  la::Matrix a(2, 2);
  a.SetRow(0, {1, 0});
  a.SetRow(1, {0, 1});
  la::Matrix b(2, 2);
  b.SetRow(0, {0, 1});
  b.SetRow(1, {1, 0});
  auto pairs = MutualBestPairs(a, b, 0.5);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (std::pair<uint32_t, uint32_t>{0, 1}));
  EXPECT_EQ(pairs[1], (std::pair<uint32_t, uint32_t>{1, 0}));
}

TEST(RelationAlignmentTest, ThresholdFiltersWeakPairs) {
  la::Matrix a(1, 2);
  a.SetRow(0, {1, 0});
  la::Matrix b(1, 2);
  b.SetRow(0, {0.1f, 1.0f});
  EXPECT_TRUE(MutualBestPairs(a, b, 0.5).empty());
  EXPECT_EQ(MutualBestPairs(a, b, 0.0).size(), 1u);
}

TEST(RelationAlignmentTest, ContainerSemantics) {
  RelationAlignment alignment;
  alignment.Add(1, 5);
  EXPECT_TRUE(alignment.Contains(1, 5));
  EXPECT_FALSE(alignment.Contains(1, 6));
  EXPECT_EQ(alignment.TargetOf(1), 5u);
  EXPECT_EQ(alignment.SourceOf(5), 1u);
  EXPECT_EQ(alignment.TargetOf(9), kg::kInvalidRelation);
}

TEST(RelationAlignmentTest, MinesNamedRelationsOnBenchmark) {
  data::EaDataset dataset =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  std::unique_ptr<emb::EAModel> model =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  // Name-based mining does not need a trained model.
  RelationAlignment alignment =
      MineRelationAlignment(dataset, *model, RelationAlignmentOptions{});
  // The reserved relations must align 1:1.
  kg::RelationId succ1 = dataset.kg1.FindRelation("zh/successor");
  kg::RelationId succ2 = dataset.kg2.FindRelation("en/successor");
  EXPECT_TRUE(alignment.Contains(succ1, succ2));
  kg::RelationId pred1 = dataset.kg1.FindRelation("zh/predecessor");
  EXPECT_EQ(alignment.TargetOf(pred1),
            dataset.kg2.FindRelation("en/predecessor"));
  // Most relations should be aligned on a homogeneous-schema dataset.
  EXPECT_GE(alignment.size(), dataset.kg1.num_relations() - 2);
}

// ---------------------------------------------------------------- neg rules

TEST(NegRulesTest, MinesDisjointWitnessedPair) {
  kg::KnowledgeGraph g;
  // succ/pred from the same head to different tails, never the same tail.
  g.AddTriple("b", "succ", "c");
  g.AddTriple("b", "pred", "a");
  g.AddTriple("c", "succ", "d");
  g.AddTriple("c", "pred", "b");
  NegRuleSet rules = MineNegRules(g);
  EXPECT_TRUE(rules.Contains(g.FindRelation("succ"), g.FindRelation("pred")));
  // Symmetric lookup.
  EXPECT_TRUE(rules.Contains(g.FindRelation("pred"), g.FindRelation("succ")));
}

TEST(NegRulesTest, SharedTailDisqualifies) {
  kg::KnowledgeGraph g;
  g.AddTriple("a", "r", "x");
  g.AddTriple("a", "s", "x");  // same head, same tail -> disqualified
  g.AddTriple("b", "r", "y");
  g.AddTriple("b", "s", "z");  // witness exists, but the pair is out
  NegRuleSet rules = MineNegRules(g);
  EXPECT_FALSE(rules.Contains(g.FindRelation("r"), g.FindRelation("s")));
}

TEST(NegRulesTest, NoWitnessNoRule) {
  kg::KnowledgeGraph g;
  // r and s never co-occur at a head.
  g.AddTriple("a", "r", "x");
  g.AddTriple("b", "s", "y");
  NegRuleSet rules = MineNegRules(g);
  EXPECT_FALSE(rules.Contains(g.FindRelation("r"), g.FindRelation("s")));
  EXPECT_EQ(rules.size(), 0u);
}

TEST(NegRulesTest, FindsChainRulesOnBenchmark) {
  data::EaDataset dataset =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  NegRuleSet rules = MineNegRules(dataset.kg1);
  kg::RelationId succ = dataset.kg1.FindRelation("zh/successor");
  kg::RelationId pred = dataset.kg1.FindRelation("zh/predecessor");
  EXPECT_TRUE(rules.Contains(succ, pred))
      << "successor/predecessor should yield a ¬sameAs rule";
}

// ------------------------------------------------------------- Algorithm 1

// Confidence oracle driven by a lookup table (defaults to 0.5).
class TableConfidence {
 public:
  void Set(kg::EntityId e1, kg::EntityId e2, double confidence) {
    table_[{e1, e2}] = confidence;
  }
  ConfidenceFn Fn() const {
    return [this](kg::EntityId e1, kg::EntityId e2,
                  const explain::AlignmentContext&) {
      auto it = table_.find({e1, e2});
      return it == table_.end() ? 0.5 : it->second;
    };
  }

 private:
  std::map<std::pair<kg::EntityId, kg::EntityId>, double> table_;
};

// A ranked-similarity fixture over explicit source/target sets with a
// stub model whose embeddings are set directly.
class RankedFixture {
 public:
  // sim[i][j] = similarity of sources[i] to targets[j]; realized with
  // one-hot-based embeddings is fiddly, so use the similarity matrix via a
  // stub EAModel built from orthogonal basis + weights.
  static eval::RankedSimilarity Make(
      const std::vector<std::vector<float>>& sim) {
    size_t n1 = sim.size();
    size_t n2 = sim[0].size();
    // Build embeddings: source i = row of sim (padded); target j = one-hot
    // e_j. cos(source_i, target_j) ∝ sim[i][j] (up to row norm), which
    // preserves per-source ranking order.
    class M : public emb::EAModel {
     public:
      std::string name() const override { return "M"; }
      void Train(const data::EaDataset&) override {}
      const la::Matrix& EntityEmbeddings(kg::KgSide side) const override {
        return side == kg::KgSide::kSource ? a : b;
      }
      std::unique_ptr<emb::EAModel> CloneUntrained() const override {
        return nullptr;
      }
      la::Matrix a, b;
    };
    static M* model = nullptr;
    delete model;
    model = new M();
    model->a = la::Matrix(n1, n2);
    model->b = la::Matrix(n2, n2);
    for (size_t i = 0; i < n1; ++i) {
      for (size_t j = 0; j < n2; ++j) model->a.At(i, j) = sim[i][j];
    }
    for (size_t j = 0; j < n2; ++j) model->b.At(j, j) = 1.0f;
    std::vector<kg::EntityId> sources(n1);
    std::vector<kg::EntityId> targets(n2);
    for (size_t i = 0; i < n1; ++i) sources[i] = static_cast<kg::EntityId>(i);
    for (size_t j = 0; j < n2; ++j) targets[j] = static_cast<kg::EntityId>(j);
    return eval::RankedSimilarity(*model, sources, targets);
  }
};

TEST(OneToManyTest, KeepsHighestConfidenceClaimant) {
  // Sources 0 and 1 both claim target 0; source 1 has higher confidence.
  kg::AlignmentSet results;
  results.Add(0, 0);
  results.Add(1, 0);
  kg::AlignmentSet seeds;
  TableConfidence confidence;
  confidence.Set(0, 0, 0.3);
  confidence.Set(1, 0, 0.9);
  auto ranked = RankedFixture::Make({{0.9f, 0.5f}, {0.8f, 0.1f}});
  OneToManyResult result =
      RepairOneToMany(results, seeds, ranked, confidence.Fn(), 2);
  EXPECT_TRUE(result.alignment.Contains(1, 0));
  EXPECT_FALSE(result.alignment.Contains(0, 0));
  EXPECT_TRUE(result.alignment.IsOneToOne());
  EXPECT_EQ(result.initial_conflicts, 1u);
  // The displaced source 0 realigns to its next candidate, target 1.
  EXPECT_TRUE(result.alignment.Contains(0, 1));
}

TEST(OneToManyTest, OutputAlwaysOneToOne) {
  // Three sources all claiming target 0 with only 2 targets available.
  kg::AlignmentSet results;
  results.Add(0, 0);
  results.Add(1, 0);
  results.Add(2, 0);
  kg::AlignmentSet seeds;
  TableConfidence confidence;
  confidence.Set(0, 0, 0.9);
  auto ranked = RankedFixture::Make(
      {{0.9f, 0.8f}, {0.7f, 0.6f}, {0.5f, 0.4f}});
  OneToManyResult result =
      RepairOneToMany(results, seeds, ranked, confidence.Fn(), 2);
  EXPECT_TRUE(result.alignment.IsOneToOne());
  // Two sources aligned (0 keeps target 0, one of 1/2 gets target 1); the
  // third remains unaligned.
  EXPECT_EQ(result.alignment.size(), 2u);
  EXPECT_EQ(result.unaligned.size(), 1u);
}

TEST(OneToManyTest, ChallengerWinsByConfidence) {
  // Source 1 displaced from target 0; its top candidate (target 1) is
  // occupied by source 2 with lower confidence -> swap.
  kg::AlignmentSet results;
  results.Add(0, 0);
  results.Add(1, 0);
  results.Add(2, 1);
  kg::AlignmentSet seeds;
  TableConfidence confidence;
  confidence.Set(0, 0, 0.9);
  confidence.Set(1, 0, 0.1);
  confidence.Set(1, 1, 0.8);
  confidence.Set(2, 1, 0.2);
  auto ranked = RankedFixture::Make(
      {{0.9f, 0.1f}, {0.8f, 0.7f}, {0.2f, 0.9f}});
  OneToManyResult result =
      RepairOneToMany(results, seeds, ranked, confidence.Fn(), 2);
  EXPECT_TRUE(result.alignment.Contains(1, 1));
  EXPECT_GE(result.swaps, 1u);
  EXPECT_TRUE(result.alignment.IsOneToOne());
}

TEST(OneToManyTest, NoConflictsIsIdentity) {
  kg::AlignmentSet results;
  results.Add(0, 0);
  results.Add(1, 1);
  kg::AlignmentSet seeds;
  TableConfidence confidence;
  auto ranked = RankedFixture::Make({{0.9f, 0.1f}, {0.1f, 0.9f}});
  OneToManyResult result =
      RepairOneToMany(results, seeds, ranked, confidence.Fn(), 2);
  EXPECT_EQ(result.alignment.SortedPairs(), results.SortedPairs());
  EXPECT_EQ(result.initial_conflicts, 0u);
}

TEST(OneToManyTest, Terminates) {
  // Pathological confidence table (all equal) still terminates thanks to
  // the no-progress guard.
  kg::AlignmentSet results;
  results.Add(0, 0);
  results.Add(1, 0);
  results.Add(2, 0);
  kg::AlignmentSet seeds;
  TableConfidence confidence;
  auto ranked = RankedFixture::Make({{0.9f}, {0.8f}, {0.7f}});
  OneToManyResult result =
      RepairOneToMany(results, seeds, ranked, confidence.Fn(), 1);
  EXPECT_TRUE(result.alignment.IsOneToOne());
  EXPECT_LE(result.iterations, 4u);
}

// ------------------------------------------------------------- Algorithm 2

class LowConfidenceTest : public ::testing::Test {
 protected:
  static const data::EaDataset& Dataset() {
    static const data::EaDataset* dataset = new data::EaDataset(
        data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny));
    return *dataset;
  }
};

TEST_F(LowConfidenceTest, RemovesAndRealignsLowConfidencePairs) {
  // Confidence oracle: gold pairs high, everything else low.
  const auto& dataset = Dataset();
  ConfidenceFn confidence = [&dataset](kg::EntityId e1, kg::EntityId e2,
                                       const explain::AlignmentContext&) {
    auto it = dataset.gold.find(e1);
    return it != dataset.gold.end() && it->second == e2 ? 0.95 : 0.2;
  };
  // Start from an alignment where ~half the pairs are wrong (cyclic shift
  // over the first 20 test pairs).
  kg::AlignmentSet start;
  for (size_t i = 0; i < dataset.test.size(); ++i) {
    const kg::AlignedPair& pair = dataset.test[i];
    if (i < 20) {
      start.Add(pair.source, dataset.test[(i + 1) % 20].target);
    } else {
      start.Add(pair.source, pair.target);
    }
  }
  std::unique_ptr<emb::EAModel> model =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  model->Train(dataset);
  eval::RankedSimilarity ranked = eval::RankTestEntities(*model, dataset);
  LowConfidenceOptions options;
  LowConfidenceResult result = RepairLowConfidence(
      start, {}, dataset.train, ranked, confidence, dataset, options);
  EXPECT_GE(result.low_confidence_removed, 20u);
  double accuracy = eval::Accuracy(result.alignment, dataset.test_gold);
  double start_accuracy = eval::Accuracy(start, dataset.test_gold);
  EXPECT_GT(accuracy, start_accuracy);
}

TEST_F(LowConfidenceTest, HighConfidenceAlignmentUntouched) {
  const auto& dataset = Dataset();
  ConfidenceFn confidence = [](kg::EntityId, kg::EntityId,
                               const explain::AlignmentContext&) {
    return 0.9;  // everything confident
  };
  kg::AlignmentSet start;
  for (const kg::AlignedPair& pair : dataset.test) {
    start.Add(pair.source, pair.target);
  }
  std::unique_ptr<emb::EAModel> model =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  model->Train(dataset);
  eval::RankedSimilarity ranked = eval::RankTestEntities(*model, dataset);
  LowConfidenceResult result = RepairLowConfidence(
      start, {}, dataset.train, ranked, confidence, dataset,
      LowConfidenceOptions{});
  EXPECT_EQ(result.low_confidence_removed, 0u);
  EXPECT_EQ(result.alignment.SortedPairs(), start.SortedPairs());
}

TEST_F(LowConfidenceTest, GreedyFallbackAlignsLeftovers) {
  const auto& dataset = Dataset();
  // Nothing is ever confident: every pair is removed, nothing realigns
  // through candidates, and the greedy fallback must pick up the sources.
  ConfidenceFn confidence = [](kg::EntityId, kg::EntityId,
                               const explain::AlignmentContext&) {
    return 0.1;
  };
  kg::AlignmentSet start;
  for (size_t i = 0; i < 10; ++i) {
    start.Add(dataset.test[i].source, dataset.test[i].target);
  }
  std::unique_ptr<emb::EAModel> model =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  model->Train(dataset);
  eval::RankedSimilarity ranked = eval::RankTestEntities(*model, dataset);
  LowConfidenceResult result = RepairLowConfidence(
      start, {}, dataset.train, ranked, confidence, dataset,
      LowConfidenceOptions{});
  EXPECT_EQ(result.low_confidence_removed, 10u);
  EXPECT_EQ(result.final_greedy_matches, 10u);
  EXPECT_TRUE(result.alignment.IsOneToOne());
}

// -------------------------------------------------------------- cr1 / Mine

TEST(ConflictCheckerTest, MinesArtifactsFromBenchmark) {
  data::EaDataset dataset =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  std::unique_ptr<emb::EAModel> model =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  model->Train(dataset);
  RelationConflictChecker checker =
      RelationConflictChecker::Mine(dataset, *model);
  EXPECT_GT(checker.relation_alignment().size(), 0u);
  EXPECT_GT(checker.rules2().size(), 0u);
}

TEST(ConflictCheckerTest, DetectsPlantedSuccessorPredecessorConflict) {
  // Reproduce Fig. 3(a): central pair (bidenK1, obamaK2) supported by the
  // matched neighbour (trumpK1, trumpK2) through followed_by/successor —
  // but KG2 says trump's predecessor is obama, and successor ¬sameAs
  // predecessor, so the central pair is contradicted.
  data::EaDataset dataset;
  kg::KnowledgeGraph& kg1 = dataset.kg1;
  kg::KnowledgeGraph& kg2 = dataset.kg2;
  kg::EntityId biden1 = kg1.AddEntity("k1/biden");
  kg::EntityId trump1 = kg1.AddEntity("k1/trump");
  kg::EntityId obama1 = kg1.AddEntity("k1/obama");
  kg::RelationId followed1 = kg1.AddRelation("k1/successor");
  kg1.AddTriple(trump1, followed1, biden1);
  kg1.AddTriple(obama1, followed1, trump1);

  kg::EntityId obama2 = kg2.AddEntity("k2/obama");
  kg::EntityId trump2 = kg2.AddEntity("k2/trump");
  kg::EntityId biden2 = kg2.AddEntity("k2/biden");
  kg::RelationId succ2 = kg2.AddRelation("k2/successor");
  kg::RelationId pred2 = kg2.AddRelation("k2/predecessor");
  kg2.AddTriple(trump2, succ2, biden2);
  kg2.AddTriple(trump2, pred2, obama2);
  // Witness + disjointness for the rule (succ2, pred2) in KG2.
  dataset.gold[biden1] = obama2;  // (the wrong central pair under test)

  RelationAlignment relation_alignment;
  relation_alignment.Add(followed1, succ2);
  NegRuleSet rules1 = MineNegRules(kg1);
  NegRuleSet rules2 = MineNegRules(kg2);
  ASSERT_TRUE(rules2.Contains(succ2, pred2));

  RelationConflictChecker checker(dataset, relation_alignment,
                                  std::move(rules1), std::move(rules2));

  // Explanation: central (biden1, obama2) with neighbour (trump1, trump2)
  // via incoming single-step paths (trump, followed_by/predecessor, e).
  explain::Explanation explanation;
  explanation.e1 = biden1;
  explanation.e2 = obama2;
  explain::MatchedPathPair match;
  match.p1.source = biden1;
  match.p1.steps.push_back({followed1, /*outgoing=*/false, trump1});
  match.p2.source = obama2;
  match.p2.steps.push_back({pred2, /*outgoing=*/false, trump2});
  match.similarity = 0.9f;
  explanation.matches.push_back(match);

  kg::RelationFunctionality func1(kg1);
  kg::RelationFunctionality func2(kg2);
  explain::ExeaConfig config;
  explain::Adg adg = explain::BuildAdg(
      explanation, func1, func2,
      [](kg::EntityId, kg::EntityId) { return 0.9; }, config);
  ASSERT_EQ(adg.neighbors.size(), 1u);

  std::vector<size_t> conflicts =
      checker.FindConflictingNeighbors(explanation, adg);
  ASSERT_EQ(conflicts.size(), 1u);
  double confidence_before = adg.confidence;
  EXPECT_EQ(checker.PruneConflicts(explanation, adg, config), 1u);
  EXPECT_TRUE(adg.neighbors.empty());
  EXPECT_LT(adg.confidence, confidence_before);
}

TEST(ConflictCheckerTest, CorrectPairHasNoConflict) {
  // Same construction, but the central pair is (biden1, biden2) supported
  // by (trump1, trump2) via successor on both sides — consistent.
  data::EaDataset dataset;
  kg::KnowledgeGraph& kg1 = dataset.kg1;
  kg::KnowledgeGraph& kg2 = dataset.kg2;
  kg::EntityId biden1 = kg1.AddEntity("k1/biden");
  kg::EntityId trump1 = kg1.AddEntity("k1/trump");
  kg::RelationId succ1 = kg1.AddRelation("k1/successor");
  kg::RelationId pred1 = kg1.AddRelation("k1/predecessor");
  kg::EntityId obama1 = kg1.AddEntity("k1/obama");
  kg1.AddTriple(trump1, succ1, biden1);
  kg1.AddTriple(trump1, pred1, obama1);

  kg::EntityId biden2 = kg2.AddEntity("k2/biden");
  kg::EntityId trump2 = kg2.AddEntity("k2/trump");
  kg::RelationId succ2 = kg2.AddRelation("k2/successor");
  kg::RelationId pred2 = kg2.AddRelation("k2/predecessor");
  kg::EntityId obama2 = kg2.AddEntity("k2/obama");
  kg2.AddTriple(trump2, succ2, biden2);
  kg2.AddTriple(trump2, pred2, obama2);

  RelationAlignment relation_alignment;
  relation_alignment.Add(succ1, succ2);
  relation_alignment.Add(pred1, pred2);
  RelationConflictChecker checker(dataset, relation_alignment,
                                  MineNegRules(kg1), MineNegRules(kg2));

  explain::Explanation explanation;
  explanation.e1 = biden1;
  explanation.e2 = biden2;
  explain::MatchedPathPair match;
  match.p1.source = biden1;
  match.p1.steps.push_back({succ1, false, trump1});
  match.p2.source = biden2;
  match.p2.steps.push_back({succ2, false, trump2});
  explanation.matches.push_back(match);

  kg::RelationFunctionality func1(kg1);
  kg::RelationFunctionality func2(kg2);
  explain::Adg adg = explain::BuildAdg(
      explanation, func1, func2,
      [](kg::EntityId, kg::EntityId) { return 0.9; }, explain::ExeaConfig{});
  EXPECT_TRUE(checker.FindConflictingNeighbors(explanation, adg).empty());
}

// ----------------------------------------------------------------- pipeline

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::EaDataset(
        data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny));
    model_ = emb::MakeDefaultModel(emb::ModelKind::kMTransE).release();
    model_->Train(*dataset_);
    explainer_ = new explain::ExeaExplainer(*dataset_, *model_,
                                            explain::ExeaConfig{});
  }
  static void TearDownTestSuite() {
    delete explainer_;
    delete model_;
    delete dataset_;
  }
  static data::EaDataset* dataset_;
  static emb::EAModel* model_;
  static explain::ExeaExplainer* explainer_;
};

data::EaDataset* PipelineTest::dataset_ = nullptr;
emb::EAModel* PipelineTest::model_ = nullptr;
explain::ExeaExplainer* PipelineTest::explainer_ = nullptr;

TEST_F(PipelineTest, FullRepairImprovesAccuracy) {
  RepairPipeline pipeline(*explainer_, RepairOptions{});
  RepairReport report = pipeline.Run();
  EXPECT_GT(report.repaired_accuracy, report.base_accuracy);
  EXPECT_TRUE(report.repaired_alignment.IsOneToOne());
  EXPECT_GT(report.one_to_many_conflicts, 0u);
}

TEST_F(PipelineTest, AblationsDegradeGracefully) {
  RepairPipeline full(*explainer_, RepairOptions{});
  double full_accuracy = full.Run().repaired_accuracy;

  RepairOptions no_cr2;
  no_cr2.enable_cr2 = false;
  double no_cr2_accuracy =
      RepairPipeline(*explainer_, no_cr2).Run().repaired_accuracy;

  RepairOptions no_cr3;
  no_cr3.enable_cr3 = false;
  double no_cr3_accuracy =
      RepairPipeline(*explainer_, no_cr3).Run().repaired_accuracy;

  // Removing a stage never helps beyond noise. (Which of cr2/cr3 hurts
  // more is dataset-dependent in this build — see EXPERIMENTS.md Table IV
  // note — so only the "each stage contributes" direction is asserted.)
  EXPECT_GE(full_accuracy + 0.02, no_cr2_accuracy);
  EXPECT_GE(full_accuracy + 0.02, no_cr3_accuracy);
  EXPECT_GT(full_accuracy, std::min(no_cr2_accuracy, no_cr3_accuracy));
}

TEST_F(PipelineTest, DisabledStagesReportZeroStats) {
  RepairOptions none;
  none.enable_cr1 = false;
  none.enable_cr2 = false;
  none.enable_cr3 = false;
  RepairPipeline pipeline(*explainer_, none);
  RepairReport report = pipeline.Run();
  EXPECT_EQ(report.one_to_many_conflicts, 0u);
  EXPECT_EQ(report.low_confidence_removed, 0u);
  EXPECT_EQ(report.relation_conflict_prunes, 0u);
  EXPECT_EQ(report.repaired_accuracy, report.base_accuracy);
}

TEST_F(PipelineTest, Cr1PrunesAreCounted) {
  RepairPipeline pipeline(*explainer_, RepairOptions{});
  RepairReport report = pipeline.Run();
  // At least some planted conflicts should have been pruned.
  EXPECT_GT(report.relation_conflict_prunes, 0u);
}

// -------------------------------------------------------------------- diff

TEST(AlignmentDiffTest, ClassifiesEdits) {
  std::unordered_map<kg::EntityId, kg::EntityId> gold{
      {1, 11}, {2, 12}, {3, 13}, {4, 14}, {5, 15}, {6, 16}};
  kg::AlignmentSet before;
  before.Add(1, 11);  // kept correct
  before.Add(2, 99);  // fixed below
  before.Add(3, 13);  // broken below
  before.Add(4, 98);  // still wrong (different wrong target after)
  before.Add(5, 97);  // dropped wrong
  // 6 unaligned before, wrongly aligned after -> added_wrong
  kg::AlignmentSet after;
  after.Add(1, 11);
  after.Add(2, 12);
  after.Add(3, 96);
  after.Add(4, 95);
  after.Add(6, 94);

  AlignmentDiff diff = CompareAlignments(before, after, gold);
  EXPECT_EQ(diff.kept_correct, 1u);
  EXPECT_EQ(diff.fixed, 1u);
  EXPECT_EQ(diff.broken, 1u);
  EXPECT_EQ(diff.still_wrong, 1u);
  EXPECT_EQ(diff.dropped_wrong, 1u);
  EXPECT_EQ(diff.added_wrong, 1u);
  EXPECT_NEAR(diff.EditPrecision(), 1.0 / 3.0, 1e-9);
  EXPECT_FALSE(diff.ToString().empty());
}

TEST(AlignmentDiffTest, IdenticalAlignmentsHaveNoEdits) {
  std::unordered_map<kg::EntityId, kg::EntityId> gold{{1, 11}, {2, 12}};
  kg::AlignmentSet alignment;
  alignment.Add(1, 11);
  alignment.Add(2, 99);
  AlignmentDiff diff = CompareAlignments(alignment, alignment, gold);
  EXPECT_EQ(diff.fixed + diff.broken + diff.still_wrong + diff.added_wrong +
                diff.dropped_wrong,
            0u);
  EXPECT_EQ(diff.kept_correct, 1u);
  EXPECT_EQ(diff.kept_wrong, 1u);
}

TEST_F(PipelineTest, RepairNeverBreaksManyCorrectPairs) {
  RepairPipeline pipeline(*explainer_, RepairOptions{});
  RepairReport report = pipeline.Run();
  AlignmentDiff diff = CompareAlignments(
      report.base_alignment, report.repaired_alignment, dataset_->test_gold);
  EXPECT_GT(diff.fixed, diff.broken)
      << "repair must fix more than it breaks";
  EXPECT_LE(diff.broken, 3u);
  EXPECT_GT(diff.EditPrecision(), 0.5);
}

}  // namespace
}  // namespace exea::repair
