#include "explain/exea_explainer_adapter.h"

namespace exea::explain {

baselines::ExplainerResult ExeaAdapter::Explain(
    kg::EntityId e1, kg::EntityId e2,
    const std::vector<kg::Triple>& /*candidates1*/,
    const std::vector<kg::Triple>& /*candidates2*/, size_t /*budget*/) {
  Explanation explanation = explainer_->Explain(e1, e2, *context_);
  baselines::ExplainerResult out;
  out.triples1 = explanation.triples1;
  out.triples2 = explanation.triples2;
  return out;
}

}  // namespace exea::explain
