#include "explain/matcher.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace exea::explain {

std::vector<kg::EntityId> AlignmentContext::AlignedTargets(
    kg::EntityId source) const {
  std::vector<kg::EntityId> out;
  if (seeds_ != nullptr) {
    for (kg::EntityId t : seeds_->TargetsOf(source)) out.push_back(t);
  }
  if (result_ != nullptr) {
    for (kg::EntityId t : result_->TargetsOf(source)) out.push_back(t);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<kg::EntityId> AlignmentContext::AlignedSources(
    kg::EntityId target) const {
  std::vector<kg::EntityId> out;
  if (seeds_ != nullptr) {
    for (kg::EntityId s : seeds_->SourcesOf(target)) out.push_back(s);
  }
  if (result_ != nullptr) {
    for (kg::EntityId s : result_->SourcesOf(target)) out.push_back(s);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Explanation MatchPaths(kg::EntityId e1, kg::EntityId e2,
                       const PathsWithEmbeddings& side1,
                       const PathsWithEmbeddings& side2,
                       const AlignmentContext& context) {
  EXEA_CHECK_EQ(side1.paths.size(), side1.embeddings.size());
  EXEA_CHECK_EQ(side2.paths.size(), side2.embeddings.size());

  Explanation explanation;
  explanation.e1 = e1;
  explanation.e2 = e2;

  // Index the other side's paths by terminal entity.
  std::unordered_map<kg::EntityId, std::vector<size_t>> by_terminal2;
  for (size_t j = 0; j < side2.paths.size(); ++j) {
    by_terminal2[side2.paths[j].target()].push_back(j);
  }

  // Terminal entities on side 1.
  std::unordered_map<kg::EntityId, std::vector<size_t>> by_terminal1;
  for (size_t i = 0; i < side1.paths.size(); ++i) {
    by_terminal1[side1.paths[i].target()].push_back(i);
  }

  constexpr float kNoScore = -2.0f;  // below any cosine
  std::vector<float> best_score1(side1.paths.size(), kNoScore);
  std::vector<int64_t> best_match1(side1.paths.size(), -1);
  std::vector<float> best_score2(side2.paths.size(), kNoScore);
  std::vector<int64_t> best_match2(side2.paths.size(), -1);

  // For every aligned (terminal1, terminal2) neighbour pair, compare the
  // path groups and keep global per-path bests.
  for (const auto& [terminal1, group1] : by_terminal1) {
    for (kg::EntityId terminal2 : context.AlignedTargets(terminal1)) {
      auto it = by_terminal2.find(terminal2);
      if (it == by_terminal2.end()) continue;
      for (size_t i : group1) {
        for (size_t j : it->second) {
          float sim = la::Cosine(side1.embeddings[i], side2.embeddings[j]);
          if (sim > best_score1[i] ||
              (sim == best_score1[i] &&
               static_cast<int64_t>(j) < best_match1[i])) {
            best_score1[i] = sim;
            best_match1[i] = static_cast<int64_t>(j);
          }
          if (sim > best_score2[j] ||
              (sim == best_score2[j] &&
               static_cast<int64_t>(i) < best_match2[j])) {
            best_score2[j] = sim;
            best_match2[j] = static_cast<int64_t>(i);
          }
        }
      }
    }
  }

  // Mutually-best pairs become matches.
  std::set<kg::Triple> triples1;
  std::set<kg::Triple> triples2;
  for (size_t i = 0; i < side1.paths.size(); ++i) {
    int64_t j = best_match1[i];
    if (j < 0) continue;
    if (best_match2[static_cast<size_t>(j)] != static_cast<int64_t>(i)) {
      continue;
    }
    MatchedPathPair match;
    match.p1 = side1.paths[i];
    match.p2 = side2.paths[static_cast<size_t>(j)];
    match.similarity = best_score1[i];
    for (const kg::Triple& t : match.p1.Triples()) triples1.insert(t);
    for (const kg::Triple& t : match.p2.Triples()) triples2.insert(t);
    explanation.matches.push_back(std::move(match));
  }
  explanation.triples1.assign(triples1.begin(), triples1.end());
  explanation.triples2.assign(triples2.begin(), triples2.end());
  return explanation;
}

}  // namespace exea::explain
