#include "classical/similarity_flooding.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace exea::classical {
namespace {

uint64_t Key(kg::EntityId e1, kg::EntityId e2) {
  return (static_cast<uint64_t>(e1) << 32) | e2;
}

}  // namespace

SimilarityFloodingResult RunSimilarityFlooding(
    const data::EaDataset& dataset,
    const SimilarityFloodingOptions& options) {
  SimilarityFloodingResult result;

  std::unordered_set<kg::EntityId> test_sources(
      dataset.test_sources.begin(), dataset.test_sources.end());
  std::unordered_set<kg::EntityId> test_targets;
  for (const kg::AlignedPair& pair : dataset.test) {
    test_targets.insert(pair.target);
  }

  // --- build the PCG node set -------------------------------------------
  // Start from the seeds and close once over neighbours: a pair (a, b) is
  // a node if some matching-direction triple pair connects it to a seed
  // pair; then close once more so test pairs two hops from seeds join too.
  std::unordered_map<uint64_t, size_t> node_index;
  std::vector<std::pair<kg::EntityId, kg::EntityId>> nodes;
  auto add_node = [&](kg::EntityId a, kg::EntityId b) -> bool {
    if (nodes.size() >= options.max_pairs) return false;
    auto [it, inserted] = node_index.emplace(Key(a, b), nodes.size());
    if (inserted) nodes.push_back({a, b});
    return inserted;
  };
  for (const kg::AlignedPair& pair : dataset.train.SortedPairs()) {
    add_node(pair.source, pair.target);
  }
  // Two expansion waves.
  for (int wave = 0; wave < 2; ++wave) {
    size_t snapshot = nodes.size();
    for (size_t i = 0; i < snapshot; ++i) {
      auto [a, b] = nodes[i];
      for (const kg::AdjacentEdge& edge1 : dataset.kg1.Edges(a)) {
        for (const kg::AdjacentEdge& edge2 : dataset.kg2.Edges(b)) {
          if (edge1.outgoing != edge2.outgoing) continue;
          kg::EntityId n1 = edge1.neighbor;
          kg::EntityId n2 = edge2.neighbor;
          // Only track pairs that could be answers (test x test) or are
          // anchors (seed pairs already added).
          if (test_sources.count(n1) > 0 && test_targets.count(n2) > 0) {
            add_node(n1, n2);
          }
        }
      }
    }
  }
  result.pcg_nodes = nodes.size();

  // --- build propagation edges -------------------------------------------
  std::vector<std::vector<size_t>> out_edges(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    auto [a, b] = nodes[i];
    for (const kg::AdjacentEdge& edge1 : dataset.kg1.Edges(a)) {
      for (const kg::AdjacentEdge& edge2 : dataset.kg2.Edges(b)) {
        if (edge1.outgoing != edge2.outgoing) continue;
        auto it = node_index.find(Key(edge1.neighbor, edge2.neighbor));
        if (it == node_index.end() || it->second == i) continue;
        out_edges[i].push_back(it->second);
      }
    }
    result.pcg_edges += out_edges[i].size();
  }

  // --- fixpoint iteration --------------------------------------------------
  std::vector<double> sigma0(nodes.size(), 0.0);
  for (const kg::AlignedPair& pair : dataset.train.SortedPairs()) {
    auto it = node_index.find(Key(pair.source, pair.target));
    if (it != node_index.end()) sigma0[it->second] = 1.0;
  }
  std::vector<double> sigma = sigma0;
  std::vector<double> next(nodes.size());
  for (size_t iter = 0; iter < options.iterations; ++iter) {
    ++result.iterations_run;
    for (size_t i = 0; i < nodes.size(); ++i) next[i] = sigma0[i] + sigma[i];
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (out_edges[i].empty() || sigma[i] == 0.0) continue;
      // The original splits a node's outgoing weight evenly.
      double share = sigma[i] / static_cast<double>(out_edges[i].size());
      for (size_t j : out_edges[i]) next[j] += share;
    }
    double max_value = 0.0;
    for (double v : next) max_value = std::max(max_value, v);
    if (max_value <= 0.0) break;
    double delta = 0.0;
    for (size_t i = 0; i < nodes.size(); ++i) {
      next[i] /= max_value;
      delta = std::max(delta, std::abs(next[i] - sigma[i]));
    }
    sigma.swap(next);
    if (delta < options.epsilon) break;
  }

  // --- decode: per-source argmax over test pairs ---------------------------
  std::unordered_map<kg::EntityId, std::pair<kg::EntityId, double>> best;
  for (size_t i = 0; i < nodes.size(); ++i) {
    auto [a, b] = nodes[i];
    if (test_sources.count(a) == 0 || test_targets.count(b) == 0) continue;
    if (sigma[i] <= 0.0) continue;
    auto it = best.find(a);
    if (it == best.end() || sigma[i] > it->second.second ||
        (sigma[i] == it->second.second && b < it->second.first)) {
      best[a] = {b, sigma[i]};
    }
  }
  for (const auto& [source, choice] : best) {
    result.alignment.Add(source, choice.first);
  }
  return result;
}

}  // namespace exea::classical
