# Empty compiler generated dependencies file for exea_repair.
# This may be replaced when dependencies are built.
