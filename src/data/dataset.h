// An entity-alignment dataset: two KGs, a seed (training) alignment, a
// held-out test alignment, and the full gold mapping.

#ifndef EXEA_DATA_DATASET_H_
#define EXEA_DATA_DATASET_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "kg/alignment.h"
#include "kg/attributes.h"
#include "kg/graph.h"

namespace exea::data {

struct EaDataset {
  std::string name;
  kg::KnowledgeGraph kg1;  // source KG
  kg::KnowledgeGraph kg2;  // target KG

  // Attribute triples (optional signal; see kg/attributes.h). Entity ids
  // refer to the corresponding KG's entity space.
  kg::AttributeStore attrs1;
  kg::AttributeStore attrs2;

  // Seed alignment A_train given to models during training.
  kg::AlignmentSet train;

  // Held-out pairs the model must find (A_res reference answers),
  // in deterministic order.
  std::vector<kg::AlignedPair> test;

  // Complete gold mapping (train + test), source -> target.
  std::unordered_map<kg::EntityId, kg::EntityId> gold;

  // Gold mapping restricted to test pairs; this is what EA accuracy is
  // measured against.
  std::unordered_map<kg::EntityId, kg::EntityId> test_gold;

  // Source entities to be aligned (the test sources), in the same order as
  // `test`.
  std::vector<kg::EntityId> test_sources;
};

// Sanity-checks internal consistency (ids in range, gold covers train+test,
// no overlap between train and test sources). Fatal on violation; used by
// generators and tests.
void ValidateDataset(const EaDataset& dataset);

}  // namespace exea::data

#endif  // EXEA_DATA_DATASET_H_
