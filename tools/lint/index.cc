#include "lint/index.h"

#include <cctype>
#include <cstring>
#include <sstream>

namespace lint {

namespace {

// Control keywords that look like calls when followed by '('.
bool IsKeyword(const std::string& ident) {
  static const char* const kKeywords[] = {
      "if",     "while",    "for",      "switch",   "return", "sizeof",
      "catch",  "alignof",  "decltype", "noexcept", "new",    "delete",
      "throw",  "case",     "do",       "else",     "goto",   "using",
      "typeid", "co_await", "co_return"};
  for (const char* k : kKeywords) {
    if (ident == k) return true;
  }
  return false;
}

bool IsAllCaps(const std::string& ident) {
  bool has_alpha = false;
  for (char c : ident) {
    if (std::islower(static_cast<unsigned char>(c)) != 0) return false;
    if (std::isalpha(static_cast<unsigned char>(c)) != 0) has_alpha = true;
  }
  return has_alpha;
}

// The argument of the first MACRO(...) occurrence in `stmt`, or "".
std::string MacroArg(const std::string& stmt, const std::string& macro) {
  size_t at = stmt.find(macro + "(");
  if (at == std::string::npos) return "";
  size_t open = at + macro.size();
  size_t close = stmt.find(')', open + 1);
  if (close == std::string::npos) return "";
  std::string arg = stmt.substr(open + 1, close - open - 1);
  size_t b = arg.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = arg.find_last_not_of(" \t");
  return arg.substr(b, e - b + 1);
}

// One brace scope the indexer attributes names to.
struct Scope {
  enum Kind { kNamespace, kClass, kFn, kOther };
  Kind kind = kOther;
  std::string name;  // namespace or class name ("" for anonymous)
  int depth = 0;     // brace depth of the scope body
};

// The ident chain (idents joined by ::) ending right before `at`, plus
// its start. Used both to name callees and to name function headers.
std::string ChainEndingAt(const std::string& s, size_t at, size_t* begin) {
  size_t b = at;
  while (b > 0) {
    if (IsIdentChar(s[b - 1])) {
      --b;
    } else if (b >= 2 && s[b - 1] == ':' && s[b - 2] == ':') {
      b -= 2;
    } else if (s[b - 1] == '~') {
      --b;
      break;
    } else {
      break;
    }
  }
  *begin = b;
  return s.substr(b, at - b);
}

// Finds a function-ish name in an outer statement: the first '(' preceded
// by a non-keyword, non-macro identifier chain that is not reached via
// '.' or '->' and not on the right of an assignment. Returns "" when the
// statement is not a function header.
std::string FindHeaderName(const std::string& stmt, size_t* name_at) {
  // A top-level '=' before the candidate name means the parens belong to
  // an initializer expression, not a parameter list.
  size_t eq = std::string::npos;
  for (size_t k = 0; k + 1 < stmt.size(); ++k) {
    if (stmt[k] != '=') continue;
    if (stmt[k + 1] == '=') {
      ++k;
      continue;
    }
    if (k > 0 && std::strchr("=<>!+-*/%&|^", stmt[k - 1]) != nullptr) {
      continue;
    }
    eq = k;
    break;
  }
  size_t search = 0;
  while ((search = stmt.find('(', search)) != std::string::npos) {
    size_t open = search++;
    if (open == 0) continue;
    if (eq != std::string::npos && open > eq) return "";
    size_t begin = 0;
    std::string chain = ChainEndingAt(stmt, open, &begin);
    if (chain.empty()) continue;
    // A chain reached through an object expression is a call, not a header.
    if (begin >= 1 && (stmt[begin - 1] == '.' ||
                       (begin >= 2 && stmt[begin - 2] == '-' &&
                        stmt[begin - 1] == '>'))) {
      continue;
    }
    std::string base = chain;
    size_t sep = chain.rfind("::");
    if (sep != std::string::npos) base = chain.substr(sep + 2);
    if (base.empty() || IsKeyword(base) || IsAllCaps(base)) continue;
    // Plain type keywords in parameter lists (std::function<void()>).
    static const char* const kTypes[] = {
        "void",  "int",    "bool",     "char",   "float", "double",
        "long",  "short",  "unsigned", "signed", "auto"};
    bool is_type = false;
    for (const char* t : kTypes) {
      if (base == t) is_type = true;
    }
    if (is_type) continue;
    *name_at = begin;
    return chain;
  }
  return "";
}

// The first word of a trimmed statement.
std::string FirstWord(const std::string& stmt) {
  size_t b = stmt.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = b;
  while (e < stmt.size() && IsIdentChar(stmt[e])) ++e;
  return stmt.substr(b, e - b);
}

class Indexer {
 public:
  Indexer(const SourceFile& file, FileSummary* out) : file_(file), out_(out) {}

  void Run() {
    bool continued_directive = false;
    for (size_t li = 0; li < file_.code.size(); ++li) {
      const std::string& line = file_.code[li];
      if (continued_directive) {
        continued_directive =
            !file_.raw[li].empty() && file_.raw[li].back() == '\\';
        continue;
      }
      size_t first = line.find_first_not_of(" \t");
      if (first != std::string::npos && line[first] == '#') {
        CollectInclude(li);
        continued_directive =
            !file_.raw[li].empty() && file_.raw[li].back() == '\\';
        continue;
      }
      line_has_lock_macro_ =
          line.find("EXEA_GUARDED_BY") != std::string::npos ||
          line.find("EXEA_REQUIRES") != std::string::npos;
      ScanLine(li, line);
    }
    CollectUnorderedAndRangeFors();
  }

 private:
  void CollectInclude(size_t li) {
    const std::string& code = file_.code[li];
    size_t i = code.find_first_not_of(" \t");
    if (i == std::string::npos || code[i] != '#') return;
    if (code.find("include", i) == std::string::npos) return;
    // The path itself was blanked by StripToCode; read it from raw.
    const std::string& raw = file_.raw[li];
    size_t open = raw.find('"');
    if (open == std::string::npos) return;
    size_t close = raw.find('"', open + 1);
    if (close == std::string::npos) return;
    out_->includes.push_back(
        {li + 1, open + 1, raw.substr(open + 1, close - open - 1)});
  }

  bool InFnBody() const { return fn_body_depth_ >= 0; }

  void ScanLine(size_t li, const std::string& line) {
    size_t i = 0;
    while (i < line.size()) {
      char c = line[i];
      if (InFnBody()) {
        if (IsIdentChar(c)) {
          i = BodyIdent(li, line, i);
          continue;
        }
        if (c == '{') {
          ++depth_;
          lock_scopes_.emplace_back();
          ++i;
          continue;
        }
        if (c == '}') {
          if (!scopes_.empty() && scopes_.back().depth == depth_) {
            scopes_.pop_back();
          }
          if (!lock_scopes_.empty()) lock_scopes_.pop_back();
          --depth_;
          if (depth_ < fn_body_depth_) EndFn(li);
          ++i;
          continue;
        }
        ++i;
        continue;
      }
      // Outer mode: accumulate a statement until ';' or a brace event.
      if (c == ';') {
        ClassifyOuterStatement();
        ResetStmt();
        ++i;
        continue;
      }
      if (c == '{') {
        ++depth_;
        OpenScopeFromStmt(li);
        ResetStmt();
        ++i;
        continue;
      }
      if (c == '}') {
        if (!scopes_.empty() && scopes_.back().depth == depth_) {
          scopes_.pop_back();
        }
        --depth_;
        ResetStmt();
        ++i;
        continue;
      }
      if (c != ' ' && c != '\t') {
        if (stmt_.empty()) {
          stmt_line_ = li + 1;
          stmt_col_ = i + 1;
        }
        stmt_.push_back(c);
      } else if (!stmt_.empty() && stmt_.back() != ' ') {
        stmt_.push_back(' ');
      }
      ++i;
    }
  }

  void ResetStmt() {
    stmt_.clear();
    stmt_line_ = 0;
    stmt_col_ = 1;
  }

  // An identifier inside a function body: a call, a lock statement, or a
  // member reference. Returns the scan position after the token.
  size_t BodyIdent(size_t li, const std::string& line, size_t i) {
    size_t b = i;
    while (i < line.size() && IsIdentChar(line[i])) ++i;
    std::string ident = line.substr(b, i - b);
    bool call = i < line.size() && line[i] == '(';
    if (ident == "lock_guard" || ident == "unique_lock" ||
        ident == "scoped_lock") {
      // The '(' of the guard variable sits past the template argument list
      // and the variable name: lock_guard<std::mutex> lock(mu_).
      return CollectLockArgs(line, i);
    }
    if (call) {
      if (IsKeyword(ident) || IsAllCaps(ident)) return i;
      size_t chain_begin = 0;
      std::string qual = ChainEndingAt(line, i, &chain_begin);
      // `Type name(` declarations look like calls of `name`; accepting
      // them is harmless (they resolve to nothing or to a real callee,
      // and reachability only widens).
      CallSite cs;
      cs.name = ident;
      cs.qual = qual.empty() ? ident : qual;
      cs.line = li + 1;
      cs.col = b + 1;
      cs.fn = cur_fn_;
      cs.held = HeldNow();
      out_->calls.push_back(std::move(cs));
      return i;
    }
    if (!ident.empty() && ident.back() == '_' && !line_has_lock_macro_) {
      MemberRef ref;
      ref.name = ident;
      ref.line = li + 1;
      ref.col = b + 1;
      ref.fn = cur_fn_;
      ref.held = HeldNow();
      out_->refs.push_back(std::move(ref));
    }
    return i;
  }

  // lock_guard<...> lock(mu_): every trailing-underscore identifier inside
  // the constructor parens joins the innermost held set.
  size_t CollectLockArgs(const std::string& line, size_t i) {
    size_t open = line.find('(', i);
    if (open == std::string::npos) return i;
    int pdepth = 0;
    size_t k = open;
    for (; k < line.size(); ++k) {
      if (line[k] == '(') ++pdepth;
      if (line[k] == ')' && --pdepth == 0) break;
    }
    std::string args = line.substr(open + 1, k - open - 1);
    size_t p = 0;
    while (p < args.size()) {
      if (!IsIdentChar(args[p])) {
        ++p;
        continue;
      }
      size_t ab = p;
      while (p < args.size() && IsIdentChar(args[p])) ++p;
      std::string arg = args.substr(ab, p - ab);
      if (!arg.empty() && arg.back() == '_' && !lock_scopes_.empty()) {
        lock_scopes_.back().insert(arg);
      }
    }
    return k >= line.size() ? k : k + 1;
  }

  std::set<std::string> HeldNow() const {
    std::set<std::string> held;
    for (const auto& scope : lock_scopes_) {
      held.insert(scope.begin(), scope.end());
    }
    return held;
  }

  void EndFn(size_t li) {
    if (cur_fn_ >= 0) out_->decls[cur_fn_].body_end = li + 1;
    fn_body_depth_ = -1;
    cur_fn_ = -1;
    lock_scopes_.clear();
  }

  // An outer statement terminated by ';' — possibly a function prototype.
  void ClassifyOuterStatement() {
    if (stmt_.empty()) return;
    std::string first = FirstWord(stmt_);
    if (first == "namespace" || first == "class" || first == "struct" ||
        first == "enum" || first == "union" || first == "using" ||
        first == "typedef" || first == "friend" || first == "template") {
      return;
    }
    size_t name_at = 0;
    std::string chain = FindHeaderName(stmt_, &name_at);
    if (chain.empty()) return;
    RecordFn(chain, name_at, /*is_definition=*/false);
  }

  // An outer statement that opened a brace: namespace, class, enum, an
  // initializer, or a function definition header.
  void OpenScopeFromStmt(size_t li) {
    std::string first = FirstWord(stmt_);
    if (first == "namespace" ||
        (first == "inline" && stmt_.find("namespace") != std::string::npos)) {
      Scope s;
      s.kind = Scope::kNamespace;
      size_t at = stmt_.find("namespace");
      s.name = Trim(stmt_.substr(at + std::strlen("namespace")));
      s.depth = depth_;
      scopes_.push_back(std::move(s));
      return;
    }
    if (first == "enum" || first == "union") {
      scopes_.push_back({Scope::kOther, "", depth_});
      return;
    }
    size_t cls = LastTypeKeyword(stmt_);
    if (cls != std::string::npos && stmt_.find('(') == std::string::npos) {
      std::string rest = stmt_.substr(cls);
      // "class Foo : public Bar" → Foo; drop the base clause.
      size_t colon = rest.find(':');
      if (colon != std::string::npos) rest.resize(colon);
      std::istringstream words(rest);
      std::string kw, name;
      words >> kw >> name;
      scopes_.push_back({Scope::kClass, name, depth_});
      return;
    }
    // "x = {": an initializer list, not a scope worth naming.
    std::string trimmed = Trim(stmt_);
    if (!trimmed.empty() && trimmed.back() == '=') {
      scopes_.push_back({Scope::kOther, "", depth_});
      return;
    }
    size_t name_at = 0;
    std::string chain = FindHeaderName(stmt_, &name_at);
    if (chain.empty() || first == "if" || first == "for" ||
        first == "while" || first == "switch" || first == "do") {
      scopes_.push_back({Scope::kOther, "", depth_});
      return;
    }
    int idx = RecordFn(chain, name_at, /*is_definition=*/true);
    if (idx < 0) {
      scopes_.push_back({Scope::kOther, "", depth_});
      return;
    }
    out_->decls[idx].body_begin = li + 1;
    scopes_.push_back({Scope::kFn, chain, depth_});
    fn_body_depth_ = depth_;
    cur_fn_ = idx;
    lock_scopes_.clear();
    lock_scopes_.emplace_back();
  }

  static std::string Trim(const std::string& s) {
    size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos) return "";
    size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
  }

  // Position of the last top-level "class"/"struct" keyword in a type
  // head ("template <typename T> class BoundedQueue"), or npos. Keywords
  // inside template brackets name parameters, not the defined type.
  static size_t LastTypeKeyword(const std::string& stmt) {
    size_t best = std::string::npos;
    for (const char* kw : {"class ", "struct "}) {
      size_t at = 0;
      size_t n = std::strlen(kw);
      while ((at = stmt.find(kw, at)) != std::string::npos) {
        bool left = at == 0 || !IsIdentChar(stmt[at - 1]);
        int angle = 0;
        for (size_t k = 0; k < at; ++k) {
          if (stmt[k] == '<') ++angle;
          if (stmt[k] == '>') --angle;
        }
        if (left && angle <= 0) best = at;
        at += n;
      }
    }
    return best;
  }

  // Positional parameter names from the '(' that opens right after the
  // header chain. Slots that are unnamed (or where the last identifier is
  // a type spelling) keep an empty placeholder so indices line up with
  // call arguments.
  static std::vector<std::string> ExtractParams(const std::string& stmt,
                                                size_t open) {
    std::vector<std::string> params;
    if (open >= stmt.size() || stmt[open] != '(') return params;
    int paren = 0, angle = 0, brace = 0, bracket = 0;
    size_t begin = open + 1;
    std::vector<std::pair<size_t, size_t>> spans;
    bool closed = false;
    for (size_t k = open; k < stmt.size(); ++k) {
      char c = stmt[k];
      if (c == '(') {
        ++paren;
        continue;
      }
      if (c == ')') {
        if (--paren == 0) {
          spans.emplace_back(begin, k);
          closed = true;
          break;
        }
        continue;
      }
      if (paren != 1) continue;
      if (c == '<') ++angle;
      else if (c == '>' && angle > 0) --angle;
      else if (c == '{') ++brace;
      else if (c == '}') --brace;
      else if (c == '[') ++bracket;
      else if (c == ']') --bracket;
      else if (c == ',' && angle == 0 && brace == 0 && bracket == 0) {
        spans.emplace_back(begin, k);
        begin = k + 1;
      }
    }
    if (!closed) return params;
    if (spans.size() == 1 && Trim(stmt.substr(spans[0].first,
                                              spans[0].second -
                                                  spans[0].first))
                                 .empty()) {
      return params;  // `foo()` — no parameters at all
    }
    static const char* const kTypeWords[] = {
        "void",     "int",     "bool",     "char",    "float",  "double",
        "long",     "short",   "unsigned", "signed",  "auto",   "const",
        "size_t",   "int8_t",  "int16_t",  "int32_t", "int64_t", "uint8_t",
        "uint16_t", "uint32_t", "uint64_t", "string",  "string_view"};
    for (auto [b, e] : spans) {
      std::string piece = stmt.substr(b, e - b);
      size_t cut = piece.find_first_of("=[");
      if (cut != std::string::npos) piece.resize(cut);
      size_t end = piece.size();
      while (end > 0 && !IsIdentChar(piece[end - 1])) --end;
      size_t pb = end;
      while (pb > 0 && IsIdentChar(piece[pb - 1])) --pb;
      std::string name = piece.substr(pb, end - pb);
      bool qualified = pb >= 2 && piece[pb - 1] == ':' && piece[pb - 2] == ':';
      bool is_type = qualified || name.empty() ||
                     (name.find_first_not_of("0123456789") ==
                      std::string::npos);
      for (const char* t : kTypeWords) {
        if (name == t) is_type = true;
      }
      params.push_back(is_type ? "" : name);
    }
    return params;
  }

  int RecordFn(const std::string& chain, size_t name_at, bool is_definition) {
    FnDecl decl;
    size_t sep = chain.rfind("::");
    decl.name = sep == std::string::npos ? chain : chain.substr(sep + 2);
    if (decl.name.empty()) return -1;
    std::string prefix;
    bool in_class = false;
    for (const Scope& s : scopes_) {
      if (s.kind == Scope::kNamespace || s.kind == Scope::kClass) {
        if (!s.name.empty()) {
          if (!prefix.empty()) prefix += "::";
          prefix += s.name;
        }
        if (s.kind == Scope::kClass) in_class = true;
      }
    }
    decl.qname = prefix.empty() ? chain : prefix + "::" + chain;
    decl.is_method = in_class || sep != std::string::npos;
    decl.is_definition = is_definition;
    decl.line = stmt_line_;
    decl.col = stmt_col_;
    decl.requires_mutex = MacroArg(stmt_, "EXEA_REQUIRES");
    decl.params = ExtractParams(stmt_, name_at + chain.size());
    out_->decls.push_back(std::move(decl));
    return static_cast<int>(out_->decls.size() - 1);
  }

  // unordered-container declarations and range-for serialization facts —
  // a separate lexical sweep (line-oriented, brace-counted bodies).
  void CollectUnorderedAndRangeFors() {
    for (size_t li = 0; li < file_.code.size(); ++li) {
      const std::string& line = file_.code[li];
      for (const char* t : {"std::unordered_map<", "std::unordered_set<"}) {
        size_t at = line.find(t);
        if (at == std::string::npos) continue;
        // The declared name: last identifier before the terminator.
        size_t end = line.find_first_of("=;{", at);
        std::string head =
            end == std::string::npos ? line : line.substr(0, end);
        size_t e = head.find_last_not_of(" \t");
        if (e == std::string::npos || !IsIdentChar(head[e])) continue;
        size_t b = e;
        while (b > 0 && IsIdentChar(head[b - 1])) --b;
        std::string name = head.substr(b, e - b + 1);
        if (!name.empty() && name != "unordered_map" &&
            name != "unordered_set") {
          out_->unordered.push_back(name);
        }
      }
      // Range-for: `for (... : expr)` — take the last identifier of expr.
      size_t fat = FindWord(line, "for");
      if (fat == std::string::npos) continue;
      size_t open = line.find('(', fat);
      if (open == std::string::npos) continue;
      int pdepth = 0;
      size_t close = open;
      for (; close < line.size(); ++close) {
        if (line[close] == '(') ++pdepth;
        if (line[close] == ')' && --pdepth == 0) break;
      }
      if (close >= line.size()) continue;
      std::string head = line.substr(open + 1, close - open - 1);
      size_t colon = std::string::npos;
      for (size_t k = 0; k + 1 < head.size(); ++k) {
        if (head[k] == ':' && head[k + 1] != ':' &&
            (k == 0 || head[k - 1] != ':')) {
          colon = k;
          break;
        }
      }
      if (colon == std::string::npos) continue;
      std::string range = Trim(head.substr(colon + 1));
      size_t ib = range.size();
      while (ib > 0 && IsIdentChar(range[ib - 1])) --ib;
      std::string ident = range.substr(ib);
      if (ident.empty()) continue;
      RangeForFact fact;
      fact.ident = ident;
      fact.line = li + 1;
      fact.col = fat + 1;
      fact.serializes = BodySerializes(li, close);
      out_->range_fors.push_back(std::move(fact));
    }
  }

  static bool HasSink(const std::string& body) {
    return body.find("<<") != std::string::npos ||
           body.find(".append(") != std::string::npos ||
           body.find("printf") != std::string::npos ||
           body.find("+=") != std::string::npos;
  }

  // Collects the loop body — from the for's close paren to its matching
  // close brace, or to the ';' of a single-statement body — and checks it
  // for a serialization sink.
  bool BodySerializes(size_t li, size_t after) {
    std::string body;
    int bdepth = 0;
    bool entered = false;
    for (size_t l = li; l < file_.code.size() && l < li + 64; ++l) {
      const std::string& text = file_.code[l];
      for (size_t k = (l == li ? after + 1 : 0); k < text.size(); ++k) {
        char c = text[k];
        if (c == '{') {
          ++bdepth;
          entered = true;
          continue;
        }
        if (c == '}') {
          if (entered && --bdepth == 0) return HasSink(body);
          continue;
        }
        if (c == ';' && !entered && bdepth == 0) {
          body.push_back(c);
          return HasSink(body);
        }
        body.push_back(c);
      }
      body.push_back('\n');
    }
    return HasSink(body);
  }

  const SourceFile& file_;
  FileSummary* out_;

  std::vector<Scope> scopes_;
  int depth_ = 0;
  int fn_body_depth_ = -1;  // body depth of the open function, -1 outside
  int cur_fn_ = -1;
  std::vector<std::set<std::string>> lock_scopes_;
  bool line_has_lock_macro_ = false;

  std::string stmt_;
  size_t stmt_line_ = 0;
  size_t stmt_col_ = 1;
};

}  // namespace

bool IsCallNoise(const std::string& ident) {
  return IsKeyword(ident) || IsAllCaps(ident);
}

void BuildIndex(const SourceFile& file, FileSummary* summary) {
  Indexer indexer(file, summary);
  indexer.Run();
}

}  // namespace lint
