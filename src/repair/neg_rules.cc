#include "repair/neg_rules.h"

#include <algorithm>
#include <map>
#include <set>

namespace exea::repair {

void NegRuleSet::Add(kg::RelationId r1, kg::RelationId r2) {
  rules_.insert(Key(r1, r2));
}

bool NegRuleSet::Contains(kg::RelationId r1, kg::RelationId r2) const {
  return rules_.count(Key(r1, r2)) > 0;
}

std::vector<std::pair<kg::RelationId, kg::RelationId>>
NegRuleSet::SortedPairs() const {
  std::vector<std::pair<kg::RelationId, kg::RelationId>> out;
  out.reserve(rules_.size());
  for (uint64_t key : rules_) {
    out.push_back({static_cast<kg::RelationId>(key >> 32),
                   static_cast<kg::RelationId>(key & 0xFFFFFFFFu)});
  }
  std::sort(out.begin(), out.end());
  return out;
}

NegRuleSet MineNegRules(const kg::KnowledgeGraph& graph) {
  // Per head entity, tails grouped by relation.
  // We track, per relation pair co-occurring at a head:
  //   * disqualified: the pair shared an identical tail at some head,
  //   * witnessed: the pair had different tails at some head.
  std::set<std::pair<kg::RelationId, kg::RelationId>> disqualified;
  std::set<std::pair<kg::RelationId, kg::RelationId>> witnessed;

  auto ordered = [](kg::RelationId a, kg::RelationId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  };

  for (kg::EntityId head = 0; head < graph.num_entities(); ++head) {
    // Tails per relation for this head.
    std::map<kg::RelationId, std::set<kg::EntityId>> tails_by_rel;
    for (const kg::AdjacentEdge& edge : graph.Edges(head)) {
      if (!edge.outgoing) continue;
      tails_by_rel[edge.rel].insert(edge.neighbor);
    }
    if (tails_by_rel.size() < 2) continue;
    for (auto it1 = tails_by_rel.begin(); it1 != tails_by_rel.end(); ++it1) {
      auto it2 = it1;
      for (++it2; it2 != tails_by_rel.end(); ++it2) {
        auto pair = ordered(it1->first, it2->first);
        // Shared tail? (set intersection test)
        bool shares = false;
        const auto& small =
            it1->second.size() <= it2->second.size() ? it1->second
                                                     : it2->second;
        const auto& large =
            it1->second.size() <= it2->second.size() ? it2->second
                                                     : it1->second;
        for (kg::EntityId t : small) {
          if (large.count(t) > 0) {
            shares = true;
            break;
          }
        }
        if (shares) {
          disqualified.insert(pair);
        }
        // Witness: two different tails across the two relations.
        if (it1->second.size() + it2->second.size() > 1 &&
            (it1->second != it2->second || it1->second.size() > 1)) {
          // There exist y in tails(r1), z in tails(r2) with y != z exactly
          // when the union has more than one element.
          std::set<kg::EntityId> unioned = it1->second;
          unioned.insert(it2->second.begin(), it2->second.end());
          if (unioned.size() > 1) witnessed.insert(pair);
        }
      }
    }
  }

  NegRuleSet rules;
  for (const auto& pair : witnessed) {
    if (disqualified.count(pair) == 0) {
      rules.Add(pair.first, pair.second);
    }
  }
  return rules;
}

}  // namespace exea::repair
