#include "data/noise.h"

#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace exea::data {

EaDataset CorruptSeedAlignment(const EaDataset& dataset, double fraction,
                               uint64_t seed) {
  EXEA_CHECK_GE(fraction, 0.0);
  EXEA_CHECK_LE(fraction, 1.0);
  EaDataset noisy = dataset;
  std::vector<kg::AlignedPair> pairs = dataset.train.SortedPairs();
  size_t num_corrupt =
      static_cast<size_t>(fraction * static_cast<double>(pairs.size()));
  if (num_corrupt < 2) return noisy;  // a cycle needs at least 2 pairs

  Rng rng(seed);
  std::vector<size_t> victims =
      rng.SampleWithoutReplacement(pairs.size(), num_corrupt);

  // Cyclically shift targets among the victim pairs so every corrupted
  // pair points at a wrong (but plausible) target.
  kg::AlignmentSet corrupted;
  std::vector<kg::EntityId> victim_targets;
  victim_targets.reserve(victims.size());
  for (size_t v : victims) victim_targets.push_back(pairs[v].target);

  std::vector<bool> is_victim(pairs.size(), false);
  for (size_t v : victims) is_victim[v] = true;

  for (size_t i = 0; i < pairs.size(); ++i) {
    if (!is_victim[i]) corrupted.Add(pairs[i].source, pairs[i].target);
  }
  for (size_t i = 0; i < victims.size(); ++i) {
    kg::EntityId source = pairs[victims[i]].source;
    kg::EntityId wrong = victim_targets[(i + 1) % victim_targets.size()];
    corrupted.Add(source, wrong);
  }
  noisy.train = std::move(corrupted);
  return noisy;
}

}  // namespace exea::data
