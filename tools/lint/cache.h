// The incremental analysis cache: per-file FileAnalysis records keyed by
// content hash, persisted as a line-oriented text file. A warm hit skips
// comment stripping, indexing, and every local rule pass — the cross-TU
// phase runs on the restored facts. Soundness rests on AnalyzeFile being
// a pure function of (file content, tool configuration): the header key
// folds in the cache format version, the rule registry, and the
// concurrency configuration, so any change to those invalidates the whole
// cache, and any change to a file's bytes invalidates its entry.

#ifndef EXEA_TOOLS_LINT_CACHE_H_
#define EXEA_TOOLS_LINT_CACHE_H_

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "lint/analysis.h"
#include "lint/config.h"

namespace lint {

// The configuration fingerprint folded into the cache header.
uint64_t CacheConfigKey(const ConcurrencyConfig& conc);

class AnalysisCache {
 public:
  AnalysisCache(std::filesystem::path path, uint64_t config_key)
      : path_(std::move(path)), key_(config_key) {}

  // Reads the cache file; silently starts empty on any mismatch or damage
  // (a cache can always be rebuilt).
  void Load();

  // Restores the analysis of `path` when the cached entry's content hash
  // matches; marks it from_cache.
  bool Lookup(const std::string& path, uint64_t content_hash,
              FileAnalysis* out) const;

  // Rewrites the cache file with this scan's analyses.
  bool Write(const std::vector<FileAnalysis>& files) const;

 private:
  std::filesystem::path path_;
  uint64_t key_ = 0;
  std::map<std::string, FileAnalysis> entries_;  // keyed by normalized path
};

}  // namespace lint

#endif  // EXEA_TOOLS_LINT_CACHE_H_
