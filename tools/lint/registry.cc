#include "lint/registry.h"

#include <sstream>

namespace lint {

const char* FamilyOf(const std::string& rule) {
  for (const RuleInfo& info : kRules) {
    if (rule == info.name) return info.family;
  }
  return "";
}

bool ExpandRules(const std::string& spec, std::set<std::string>* enabled,
                 std::string* unknown) {
  std::string token;
  std::istringstream parts(spec);
  while (std::getline(parts, token, ',')) {
    size_t b = token.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    size_t e = token.find_last_not_of(" \t");
    std::string name = token.substr(b, e - b + 1);
    bool matched = false;
    for (const RuleInfo& info : kRules) {
      if (name == info.name || name == info.family) {
        matched = true;
        enabled->insert(info.name);
      }
    }
    if (!matched) {
      *unknown = name;
      return false;
    }
  }
  return true;
}

}  // namespace lint
