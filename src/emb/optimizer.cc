#include "emb/optimizer.h"

#include <cmath>

#include "util/logging.h"

namespace exea::emb {

AdagradTable::AdagradTable(la::Matrix* table, float learning_rate)
    : table_(table), learning_rate_(learning_rate) {
  EXEA_CHECK(table != nullptr);
  accum_.assign(table->rows() * table->cols(), 1e-8f);
}

void AdagradTable::Update(size_t row, const float* grad) {
  size_t cols = table_->cols();
  float* params = table_->Row(row);
  float* accum = accum_.data() + row * cols;
  for (size_t c = 0; c < cols; ++c) {
    float g = grad[c];
    accum[c] += g * g;
    params[c] -= learning_rate_ * g / std::sqrt(accum[c]);
  }
}

}  // namespace exea::emb
