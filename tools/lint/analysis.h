// The per-file fact tables the cross-TU passes consume, and the
// FileAnalysis record the incremental cache persists. Everything here is
// a pure function of one file's content plus the tool configuration —
// that is what makes the content-hash cache sound: a warm hit restores
// the facts and local diagnostics without re-reading a single rule.

#ifndef EXEA_TOOLS_LINT_ANALYSIS_H_
#define EXEA_TOOLS_LINT_ANALYSIS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/registry.h"

namespace lint {

// A function declaration or definition found by the indexer.
struct FnDecl {
  std::string name;    // base name (Run)
  std::string qname;   // fully qualified (exea::net::EventLoop::Run)
  size_t line = 0;     // 1-based
  size_t col = 1;
  bool is_definition = false;
  bool is_method = false;        // member of a class (in-class or Class::)
  std::string requires_mutex;    // EXEA_REQUIRES arg on the header, or ""
  size_t body_begin = 0;         // 1-based first body line (definitions)
  size_t body_end = 0;           // 1-based last body line (definitions)
  // Parameter names in positional order; unnamed/unrecognized slots keep
  // an empty placeholder so indices line up with call arguments. This is
  // what the taint pass binds caller arguments to.
  std::vector<std::string> params;
};

// A call site inside a function body, with the lexically held locks.
struct CallSite {
  std::string name;    // base callee name (ListenOn)
  std::string qual;    // ::-chain as written (net::ListenOn)
  size_t line = 0;
  size_t col = 1;
  int fn = -1;         // index into FileSummary::decls of the enclosing def
  std::set<std::string> held;  // mutex names locked in an enclosing scope
};

// A trailing-underscore identifier read or written inside a function body
// (the candidate guarded-member accesses).
struct MemberRef {
  std::string name;
  size_t line = 0;
  size_t col = 1;
  int fn = -1;
  std::set<std::string> held;
};

struct GuardedMemberFact {
  std::string name;
  std::string mutex;
};

struct RequiredMethodFact {
  std::string name;
  std::string mutex;
};

struct IncludeFact {
  size_t line = 0;  // 1-based
  size_t col = 1;   // column of the opening quote
  std::string target;
};

// A bare statement whose outermost callee might return Status — resolved
// against the global Status-returning registry in the cross-TU phase.
struct DiscardCandidate {
  std::string callee;
  size_t line = 0;
  size_t col = 1;
};

// A range-for over `ident` whose body reaches serialization (<<, append,
// printf, +=) — cross-checked against unordered-container declarations.
struct RangeForFact {
  std::string ident;
  size_t line = 0;
  size_t col = 1;
  bool serializes = false;
};

// One statement-level value flow: `lhs = f(rhs...)`, `lhs = a + b`, or
// `return expr` (pseudo-lhs "return"). `calls` carries the base names of
// every call in the statement so the taint pass can recognize sanitizing
// parses without re-reading source. Structural facts only — which names
// are sources or sanitizers is the taint config's business.
struct TaintAssign {
  std::string lhs;                 // assigned variable (base object for a.b=)
  std::vector<std::string> rhs;    // identifiers read on the right-hand side
  std::vector<std::string> calls;  // call base names within the statement
  size_t line = 0;
  size_t col = 1;
  int fn = -1;  // index into FileSummary::decls of the enclosing definition
};

// A call with its argument identifiers grouped per positional argument —
// the parameter→argument binding edge of the cross-TU taint propagation.
// `arg_calls` records the call base names nested inside each argument
// expression, so a sanitizing parse in argument position
// (Foo(flags.GetInt("k", 5))) severs that binding.
struct TaintCall {
  std::string name;  // base callee name
  std::string lhs;   // assignment target, "return", or ""
  std::vector<std::vector<std::string>> args;
  std::vector<std::vector<std::string>> arg_calls;
  size_t line = 0;
  size_t col = 1;
  int fn = -1;
};

// A structural sink the taint pass always checks: container indexing and
// loop bounds. Call-shaped sinks (resize/memcpy/...) are matched against
// the config via TaintCall instead.
struct TaintSink {
  std::string kind;  // "index" | "loop-bound"
  std::string base;  // subscripted name for "index" sinks ("" otherwise):
                     // keying a declared associative container is not a
                     // positional index, so the pass can exempt it
  std::vector<std::string> idents;
  size_t line = 0;
  size_t col = 1;
  int fn = -1;
};

// An EXEA_CHECK-family assertion: every identifier it mentions is treated
// as range-validated (sanitized) for the rest of the enclosing function.
struct TaintGuard {
  std::vector<std::string> idents;
  size_t line = 0;
  int fn = -1;
};

struct FileSummary {
  std::vector<IncludeFact> includes;
  std::vector<FnDecl> decls;
  std::vector<CallSite> calls;
  std::vector<MemberRef> refs;
  std::vector<GuardedMemberFact> guarded;
  std::vector<RequiredMethodFact> required;
  std::vector<std::string> status_fns;     // Status-returning fn names
  std::vector<DiscardCandidate> discards;
  std::vector<std::string> unordered;      // unordered-container decl names
  std::vector<RangeForFact> range_fors;
  std::vector<TaintAssign> taint_assigns;
  std::vector<TaintCall> taint_calls;
  std::vector<TaintSink> taint_sinks;
  std::vector<TaintGuard> taint_guards;
  // Names declared with a map type (std::map / std::unordered_map):
  // subscripts keyed on these are associative lookups, not positions.
  std::vector<std::string> taint_assoc;
};

// One waiver-bearing line: which rules it allows and whether the line is
// comment-only (a comment-only waiver also covers the next line).
struct WaiverLine {
  std::set<std::string> rules;
  bool comment_only = false;
};

// Everything the analyzer knows about one file — restorable from cache.
struct FileAnalysis {
  std::string path;
  std::string module;
  std::string src_rel;
  bool is_header = false;
  bool in_src = false;
  uint64_t content_hash = 0;
  FileSummary summary;
  std::vector<Diagnostic> local;            // local-rule diags, waiver-filtered
  std::map<size_t, WaiverLine> waivers;     // 1-based line -> waiver
  bool from_cache = false;
};

// A waiver applies to its own line, or — when it sits on a comment-only
// line — to the next line (for sites too long to carry the comment).
bool Waived(const FileAnalysis& a, size_t line_1based,
            const std::string& rule);

}  // namespace lint

#endif  // EXEA_TOOLS_LINT_ANALYSIS_H_
