#include "serve/snapshot_manager.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace exea::serve {
namespace {

// Mirrors the old QueryEngine::BuildIndex policy resolution (degrade to
// exact with a warning rather than refuse to start), decided once on the
// full table before any sharding happens.
bool WantIvf(const SnapshotBundle& bundle, const StateOptions& options) {
  const std::string& policy = options.index_policy;
  if (policy == "ivf") {
    if (!bundle.ivf.empty()) return true;
    EXEA_LOG(Warning) << "index_policy=ivf but the bundle was frozen "
                         "without a trained index; serving exact";
    return false;
  }
  if (policy == "auto") {
    return !bundle.ivf.empty() && bundle.emb2.rows() >= options.ivf_min_rows;
  }
  if (policy != "exact") {
    EXEA_LOG(Warning) << "unknown index_policy '" << policy
                      << "' (expected auto|exact|ivf); serving exact";
  }
  return false;
}

}  // namespace

ServingState::ServingState(std::unique_ptr<SnapshotBundle> bundle,
                           uint64_t epoch, std::string source,
                           const StateOptions& options,
                           obs::Registry* registry)
    : bundle_(std::move(bundle)),
      epoch_(epoch),
      source_(std::move(source)),
      shards_(1),
      model_(bundle_.get()),
      explainer_(bundle_->dataset, model_, explain::ExeaConfig{}),
      context_(&bundle_->alignment, &bundle_->dataset.train) {
  EXEA_CHECK(bundle_ != nullptr);
  const la::Matrix& table = bundle_->emb2;
  bool want_ivf = WantIvf(*bundle_, options);

  size_t rows = table.rows();
  shards_ = std::max<size_t>(1, options.shards);
  if (rows > 0) shards_ = std::min(shards_, rows);

  if (shards_ == 1) {
    // Single-shard: exactly the pre-sharding construction, so metrics
    // and behavior at --shards 1 are unchanged.
    if (want_ivf) {
      index_ = std::make_unique<la::IvfIndex>(&table, &bundle_->ivf, registry);
    } else {
      index_ = std::make_unique<la::ExactIndex>(&table, registry);
    }
    return;
  }

  // Deterministic row partition, same fixed-block convention as
  // util::ParallelFor: grain = ceil(rows / shards), final shard takes
  // the remainder. Every row lands in exactly one shard.
  size_t grain = (rows + shards_ - 1) / shards_;
  std::vector<std::pair<size_t, size_t>> ranges;
  for (size_t lo = 0; lo < rows; lo += grain) {
    ranges.emplace_back(lo, std::min(rows, lo + grain));
  }
  shards_ = ranges.size();

  std::vector<std::unique_ptr<la::SimilarityIndex>> children;
  children.reserve(shards_);
  if (want_ivf) {
    // Fill every shard view BEFORE handing out pointers: IvfIndex
    // borrows &shard_ivf_[s] and the vector must never reallocate.
    shard_ivf_.reserve(shards_);
    for (const auto& [lo, hi] : ranges) {
      shard_ivf_.push_back(ShardIvfIndexData(bundle_->ivf, lo, hi));
    }
    for (size_t s = 0; s < shards_; ++s) {
      children.push_back(
          std::make_unique<la::IvfIndex>(&table, &shard_ivf_[s], registry));
    }
  } else {
    for (const auto& [lo, hi] : ranges) {
      children.push_back(
          std::make_unique<la::ExactIndex>(&table, lo, hi, registry));
    }
  }
  index_ = std::make_unique<la::ShardedIndex>(std::move(children),
                                              "serve.shard", registry);
}

SnapshotManager::SnapshotManager(size_t max_resident, obs::Registry* registry)
    : max_resident_(std::max<size_t>(1, max_resident)),
      versions_gauge_((registry != nullptr ? *registry
                                           : obs::Registry::Global())
                          .GetGauge("serve.snapshot.versions")),
      swaps_((registry != nullptr ? *registry : obs::Registry::Global())
                 .GetCounter("serve.snapshot.swaps")) {}

uint64_t SnapshotManager::Install(std::unique_ptr<const ServingState> state) {
  EXEA_CHECK(state != nullptr);
  obs::Gauge* versions = &versions_gauge_;
  // The custom deleter is the "retired version actually freed" event:
  // it runs when the LAST handle (manager residency or in-flight
  // reader) drops, wherever that thread is.
  std::shared_ptr<const ServingState> handle(
      state.release(), [versions](const ServingState* s) {
        delete s;  // exea-lint: allow(raw-new-delete)
        versions->Add(-1.0);
      });
  versions->Add(1.0);
  std::lock_guard<std::mutex> lock(mu_);
  if (current_ != nullptr) swaps_.Increment();
  current_ = handle;
  resident_.push_back(std::move(handle));
  while (resident_.size() > max_resident_) resident_.pop_front();
  return current_->epoch();
}

std::shared_ptr<const ServingState> SnapshotManager::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

size_t SnapshotManager::resident() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_.size();
}

}  // namespace exea::serve
