// Table IV: ablation study on MTransE — full ExEA repair vs repair with
// one conflict-resolution stage removed (cr1 = relation-alignment
// conflicts, cr2 = one-to-many, cr3 = low-confidence), on five datasets.
//
// Paper shape: every stage contributes; removing cr2 hurts by far the
// most, cr3 second, cr1 least (and dataset-dependent).

#include <cstdio>

#include "bench/common.h"
#include "explain/exea.h"
#include "repair/pipeline.h"
#include "util/logging.h"

int main() {
  using namespace exea;
  SetMinLogLevel(LogLevel::kError);
  bench::PrintBanner("Table IV — ablation study on MTransE",
                     "ExEA paper Table IV (Section V-C3)");

  data::Scale scale = data::ScaleFromEnv();
  bench::Table table({"method", "ZH-EN", "JA-EN", "FR-EN", "DBP-WD",
                      "DBP-YAGO"});

  struct Variant {
    std::string name;
    repair::RepairOptions options;
  };
  std::vector<Variant> variants;
  {
    repair::RepairOptions no_cr1;
    no_cr1.enable_cr1 = false;
    repair::RepairOptions no_cr2;
    no_cr2.enable_cr2 = false;
    repair::RepairOptions no_cr3;
    no_cr3.enable_cr3 = false;
    variants.push_back({"ExEA w/o cr1", no_cr1});
    variants.push_back({"ExEA w/o cr2", no_cr2});
    variants.push_back({"ExEA w/o cr3", no_cr3});
    variants.push_back({"ExEA", repair::RepairOptions{}});
  }

  // Train once per dataset, run all variants against the same model.
  std::vector<std::vector<double>> accuracy(
      variants.size(), std::vector<double>(data::AllBenchmarks().size()));
  for (size_t d = 0; d < data::AllBenchmarks().size(); ++d) {
    data::EaDataset dataset =
        data::MakeBenchmark(data::AllBenchmarks()[d], scale);
    std::unique_ptr<emb::EAModel> model =
        bench::TrainModel(emb::ModelKind::kMTransE, dataset);
    explain::ExeaExplainer explainer(dataset, *model, explain::ExeaConfig{});
    eval::RankedSimilarity ranked = eval::RankTestEntities(*model, dataset);
    kg::AlignmentSet base = eval::GreedyAlign(ranked);
    for (size_t v = 0; v < variants.size(); ++v) {
      repair::RepairPipeline pipeline(explainer, variants[v].options);
      accuracy[v][d] = pipeline.Run(base, ranked).repaired_accuracy;
    }
  }
  for (size_t v = 0; v < variants.size(); ++v) {
    std::vector<std::string> row{variants[v].name};
    for (size_t d = 0; d < data::AllBenchmarks().size(); ++d) {
      row.push_back(bench::Table::Fmt(accuracy[v][d]));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  std::printf(
      "\nPaper reference (Table IV): w/o cr1 0.750/0.638/0.656/0.563/0.730, "
      "w/o cr2\n0.515/0.486/0.458/0.463/0.636, w/o cr3 "
      "0.712/0.605/0.619/0.517/0.678, ExEA\n0.761/0.640/0.658/0.564/0.732.\n"
      "Expected shape: full ExEA best; w/o cr2 lowest row.\n");
  return 0;
}
