// Tests for the k-fold cross-validation splitter (OpenEA-style protocol),
// CHECK-macro death behaviour, and additional metric properties.

#include <set>

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "data/kfold.h"
#include "emb/model.h"
#include "eval/inference.h"
#include "eval/metrics.h"
#include "util/check.h"

namespace exea {
namespace {

const data::EaDataset& Dataset() {
  static const data::EaDataset* dataset = new data::EaDataset(
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny));
  return *dataset;
}

// ------------------------------------------------------------------ kfold

TEST(KFoldTest, FoldsPartitionGoldExactly) {
  std::vector<data::EaDataset> folds = data::KFoldSplits(Dataset(), 5, 3);
  ASSERT_EQ(folds.size(), 5u);
  std::set<kg::EntityId> seen_test_sources;
  size_t total_test = 0;
  for (const data::EaDataset& fold : folds) {
    EXPECT_EQ(fold.train.size() + fold.test.size(), Dataset().gold.size());
    total_test += fold.test.size();
    for (const kg::AlignedPair& pair : fold.test) {
      EXPECT_TRUE(seen_test_sources.insert(pair.source).second)
          << "source " << pair.source << " appears in two folds' test sets";
      EXPECT_EQ(Dataset().gold.at(pair.source), pair.target);
    }
  }
  EXPECT_EQ(total_test, Dataset().gold.size());
}

TEST(KFoldTest, FoldSizesDifferByAtMostOne) {
  std::vector<data::EaDataset> folds = data::KFoldSplits(Dataset(), 7, 3);
  size_t min_size = SIZE_MAX;
  size_t max_size = 0;
  for (const data::EaDataset& fold : folds) {
    min_size = std::min(min_size, fold.test.size());
    max_size = std::max(max_size, fold.test.size());
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(KFoldTest, DeterministicPerSeed) {
  std::vector<data::EaDataset> a = data::KFoldSplits(Dataset(), 3, 5);
  std::vector<data::EaDataset> b = data::KFoldSplits(Dataset(), 3, 5);
  std::vector<data::EaDataset> c = data::KFoldSplits(Dataset(), 3, 6);
  EXPECT_EQ(a[0].test, b[0].test);
  EXPECT_NE(a[0].test, c[0].test);
}

TEST(KFoldTest, NamesCarryFoldTag) {
  std::vector<data::EaDataset> folds = data::KFoldSplits(Dataset(), 2, 1);
  EXPECT_NE(folds[0].name.find("[fold 1/2]"), std::string::npos);
  EXPECT_NE(folds[1].name.find("[fold 2/2]"), std::string::npos);
}

TEST(KFoldTest, CrossFoldAccuracyIsStable) {
  // The point of CV: fold accuracies should cluster (no pathological
  // fold dependence). Uses 3 folds to keep the test fast.
  std::vector<data::EaDataset> folds = data::KFoldSplits(Dataset(), 3, 9);
  std::vector<double> accuracies;
  for (const data::EaDataset& fold : folds) {
    std::unique_ptr<emb::EAModel> model =
        emb::MakeDefaultModel(emb::ModelKind::kMTransE);
    model->Train(fold);
    accuracies.push_back(eval::Accuracy(
        eval::GreedyAlign(eval::RankTestEntities(*model, fold)),
        fold.test_gold));
  }
  data::FoldStats stats = data::Summarize(accuracies);
  EXPECT_GT(stats.mean, 0.4);  // 2/3 of gold as seeds: easier than default
  EXPECT_LT(stats.stddev, 0.15);
}

TEST(SummarizeTest, MeanAndStddev) {
  data::FoldStats stats = data::Summarize({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(stats.mean, 2.0);
  EXPECT_DOUBLE_EQ(stats.stddev, 1.0);
  data::FoldStats single = data::Summarize({5.0});
  EXPECT_DOUBLE_EQ(single.mean, 5.0);
  EXPECT_DOUBLE_EQ(single.stddev, 0.0);
  EXPECT_DOUBLE_EQ(data::Summarize({}).mean, 0.0);
}

// ------------------------------------------------------------ death tests

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ EXEA_CHECK(1 == 2) << "impossible"; }, "Check failed");
}

TEST(CheckDeathTest, CheckOpFailureAborts) {
  int small = 1;
  int big = 2;
  EXPECT_DEATH({ EXEA_CHECK_GT(small, big); }, "Check failed");
}

TEST(CheckDeathTest, MatrixOutOfRangeAborts) {
  // Matrix::At bounds are EXEA_DCHECK contracts (hot path; see
  // la/matrix.cc): enforced in debug and EXEA_DCHECKS=ON builds, compiled
  // out of plain release builds where callers pre-validate indices.
#if EXEA_DCHECK_IS_ON()
  la::Matrix m(2, 2);
  EXPECT_DEATH({ m.At(5, 0) = 1.0f; }, "Check failed");
#else
  GTEST_SKIP() << "EXEA_DCHECK disabled in this build";
#endif
}

TEST(CheckDeathTest, DcheckFailureAbortsWhenOn) {
#if EXEA_DCHECK_IS_ON()
  EXPECT_DEATH({ EXEA_DCHECK_EQ(1, 2); }, "Check failed");
#else
  GTEST_SKIP() << "EXEA_DCHECK disabled in this build";
#endif
}

TEST(CheckDeathTest, DisabledDcheckDoesNotEvaluateOperands) {
  // A compiled-out DCHECK must not evaluate its condition (it may be
  // expensive) yet must still parse it, so release builds neither pay for
  // nor warn about contract-only expressions.
#if !EXEA_DCHECK_IS_ON()
  int evaluations = 0;
  auto count = [&evaluations] { return ++evaluations; };
  EXEA_DCHECK_GT(count(), 0) << count();
  EXPECT_EQ(evaluations, 0);
#else
  GTEST_SKIP() << "EXEA_DCHECK enabled in this build";
#endif
}

// ---------------------------------------------------- metric properties

TEST(MetricPropertyTest, HitsMonotoneInK) {
  std::unique_ptr<emb::EAModel> model =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  model->Train(Dataset());
  eval::RankedSimilarity ranked = eval::RankTestEntities(*model, Dataset());
  double previous = 0.0;
  for (size_t k : {1, 2, 5, 10, 50, 1000}) {
    double hits = eval::HitsAtK(ranked, Dataset().test_gold, k);
    EXPECT_GE(hits, previous);
    previous = hits;
  }
  // At k >= |targets| every present gold target is found.
  EXPECT_NEAR(previous, 1.0, 1e-9);
}

TEST(MetricPropertyTest, MrrBetweenHits1AndHitsAll) {
  std::unique_ptr<emb::EAModel> model =
      emb::MakeDefaultModel(emb::ModelKind::kMTransE);
  model->Train(Dataset());
  eval::RankedSimilarity ranked = eval::RankTestEntities(*model, Dataset());
  double mrr = eval::MeanReciprocalRank(ranked, Dataset().test_gold);
  EXPECT_GE(mrr, eval::HitsAtK(ranked, Dataset().test_gold, 1) - 1e-12);
  EXPECT_LE(mrr, eval::HitsAtK(ranked, Dataset().test_gold, 1000) + 1e-12);
}

}  // namespace
}  // namespace exea
