# Empty compiler generated dependencies file for bench_table6_llm_verify.
# This may be replaced when dependencies are built.
