#include "kg/graph.h"

#include "util/check.h"

namespace exea::kg {
namespace {

const std::vector<AdjacentEdge> kEmptyEdges;
const std::vector<uint32_t> kEmptyIndexes;

}  // namespace

EntityId KnowledgeGraph::AddEntity(std::string_view name) {
  EntityId id = entities_.Intern(name);
  if (id >= adjacency_.size()) adjacency_.resize(id + 1);
  // Every interned entity owns an adjacency slot; Edges() relies on it.
  EXEA_DCHECK_EQ(adjacency_.size(), entities_.size());
  return id;
}

RelationId KnowledgeGraph::AddRelation(std::string_view name) {
  RelationId id = relations_.Intern(name);
  if (id >= relation_index_.size()) relation_index_.resize(id + 1);
  return id;
}

bool KnowledgeGraph::AddTriple(EntityId head, RelationId rel, EntityId tail) {
  EXEA_CHECK_LT(head, entities_.size());
  EXEA_CHECK_LT(tail, entities_.size());
  EXEA_CHECK_LT(rel, relations_.size());
  Triple t{head, rel, tail};
  if (!triple_set_.insert(t).second) return false;
  uint32_t index = static_cast<uint32_t>(triples_.size());
  triples_.push_back(t);
  adjacency_[head].push_back({rel, tail, /*outgoing=*/true, index});
  if (tail != head) {
    adjacency_[tail].push_back({rel, head, /*outgoing=*/false, index});
  }
  relation_index_[rel].push_back(index);
  return true;
}

bool KnowledgeGraph::AddTriple(std::string_view head, std::string_view rel,
                               std::string_view tail) {
  EntityId h = AddEntity(head);
  RelationId r = AddRelation(rel);
  EntityId t = AddEntity(tail);
  return AddTriple(h, r, t);
}

const std::vector<AdjacentEdge>& KnowledgeGraph::Edges(EntityId e) const {
  if (e >= adjacency_.size()) return kEmptyEdges;
  return adjacency_[e];
}

const std::vector<uint32_t>& KnowledgeGraph::TriplesOfRelation(
    RelationId r) const {
  if (r >= relation_index_.size()) return kEmptyIndexes;
  return relation_index_[r];
}

KnowledgeGraph KnowledgeGraph::WithoutTriples(
    const std::unordered_set<Triple, TripleHash>& removed) const {
  KnowledgeGraph out;
  // Re-intern in id order so ids are stable across the copy.
  for (uint32_t e = 0; e < entities_.size(); ++e) {
    out.AddEntity(entities_.Name(e));
  }
  for (uint32_t r = 0; r < relations_.size(); ++r) {
    out.AddRelation(relations_.Name(r));
  }
  for (const Triple& t : triples_) {
    if (removed.count(t) == 0) {
      out.AddTriple(t.head, t.rel, t.tail);
    }
  }
  // Id stability: the copy interned names in id order, so both id spaces
  // must be bit-identical to the source graph's — perturbation-based
  // explainers index embeddings of the copy with ids from the original.
  EXEA_DCHECK_EQ(out.num_entities(), num_entities());
  EXEA_DCHECK_EQ(out.num_relations(), num_relations());
  return out;
}

}  // namespace exea::kg
