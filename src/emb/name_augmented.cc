#include "emb/name_augmented.h"

#include <cmath>

#include "kg/name_encoder.h"
#include "la/vector_ops.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace exea::emb {

NameAugmentedModel::NameAugmentedModel(std::unique_ptr<EAModel> base,
                                       double name_weight, size_t name_dim)
    : base_(std::move(base)), name_weight_(name_weight), name_dim_(name_dim) {
  EXEA_CHECK(base_ != nullptr);
  EXEA_CHECK_GE(name_weight_, 0.0);
  EXEA_CHECK_LE(name_weight_, 1.0);
}

std::string NameAugmentedModel::name() const {
  return base_->name() + "+names";
}

la::Matrix NameAugmentedModel::Augment(const kg::KnowledgeGraph& graph,
                                       const la::Matrix& structural) const {
  EXEA_CHECK_EQ(structural.rows(), graph.num_entities());
  kg::NameEncoder encoder(name_dim_);
  float struct_scale = static_cast<float>(std::sqrt(1.0 - name_weight_));
  float name_scale = static_cast<float>(std::sqrt(name_weight_));
  la::Matrix out(structural.rows(), structural.cols() + name_dim_);
  for (kg::EntityId e = 0; e < graph.num_entities(); ++e) {
    // Structural block, unit-normalized then scaled.
    la::Vec structural_row = structural.RowCopy(e);
    la::NormalizeL2(structural_row);
    la::Scale(struct_scale, structural_row);
    // Name block: unit n-gram embedding, scaled. Digits are included, so
    // unlike the simulated LLM this signal distinguishes version siblings
    // (imperfectly — shared trigrams keep siblings close).
    la::Vec name_row = encoder.Encode(graph.EntityName(e));
    la::Scale(name_scale, name_row);
    out.SetRow(e, la::Concat(structural_row, name_row));
  }
  return out;
}

namespace {

// Zero-pads every row of `m` on the right to `cols` columns, scaling the
// original block consistently with the structural entity block.
la::Matrix PadRight(const la::Matrix& m, size_t cols, float scale) {
  EXEA_CHECK_GE(cols, m.cols());
  la::Matrix out(m.rows(), cols);
  for (size_t r = 0; r < m.rows(); ++r) {
    const float* in = m.Row(r);
    float* dst = out.Row(r);
    for (size_t c = 0; c < m.cols(); ++c) dst[c] = scale * in[c];
  }
  return out;
}

}  // namespace

void NameAugmentedModel::Train(const data::EaDataset& dataset) {
  base_->Train(dataset);
  augmented1_ =
      Augment(dataset.kg1, base_->EntityEmbeddings(kg::KgSide::kSource));
  augmented2_ =
      Augment(dataset.kg2, base_->EntityEmbeddings(kg::KgSide::kTarget));
  if (base_->HasRelationEmbeddings()) {
    float struct_scale = static_cast<float>(std::sqrt(1.0 - name_weight_));
    padded_rel1_ = PadRight(base_->RelationEmbeddings(kg::KgSide::kSource),
                            augmented1_.cols(), struct_scale);
    padded_rel2_ = PadRight(base_->RelationEmbeddings(kg::KgSide::kTarget),
                            augmented2_.cols(), struct_scale);
  }
}

const la::Matrix& NameAugmentedModel::RelationEmbeddings(
    kg::KgSide side) const {
  EXEA_CHECK(base_->HasRelationEmbeddings());
  return side == kg::KgSide::kSource ? padded_rel1_ : padded_rel2_;
}

const la::Matrix& NameAugmentedModel::EntityEmbeddings(
    kg::KgSide side) const {
  return side == kg::KgSide::kSource ? augmented1_ : augmented2_;
}

std::unique_ptr<EAModel> NameAugmentedModel::CloneUntrained() const {
  return std::make_unique<NameAugmentedModel>(base_->CloneUntrained(),
                                              name_weight_, name_dim_);
}

}  // namespace exea::emb
