// Character n-gram hashing embeddings for relation names — the offline
// substitute for the pretrained language model (BERT) the paper uses to
// encode relation names for relation-alignment mining (see DESIGN.md §1).
//
// A name is lowercased, its namespace prefix ("en/", "dbp/", ...) stripped,
// and its character trigrams hashed into a fixed-dimensional bag. Names
// sharing most trigrams ("successor" vs "successor") embed nearly
// identically; unrelated names are near-orthogonal — which is all the
// greedy mutual-best relation matcher needs.

#ifndef EXEA_KG_NAME_ENCODER_H_
#define EXEA_KG_NAME_ENCODER_H_

#include <string>
#include <string_view>

#include "kg/graph.h"
#include "la/matrix.h"

namespace exea::kg {

class NameEncoder {
 public:
  explicit NameEncoder(size_t dim = 64) : dim_(dim) {}

  // Embeds a single name (L2-normalized).
  la::Vec Encode(std::string_view name) const;

  // One row per relation of `graph`, in relation-id order.
  la::Matrix EncodeRelationNames(const kg::KnowledgeGraph& graph) const;

  size_t dim() const { return dim_; }

 private:
  size_t dim_;
};

// Strips a leading "<namespace>/" qualifier, if any.
std::string_view StripNamespace(std::string_view name);

}  // namespace exea::kg

#endif  // EXEA_KG_NAME_ENCODER_H_
