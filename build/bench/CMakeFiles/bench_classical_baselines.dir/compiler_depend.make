# Empty compiler generated dependencies file for bench_classical_baselines.
# This may be replaced when dependencies are built.
