#include "util/parse.h"

#include <charconv>
#include <system_error>

namespace exea {
namespace util {

namespace {

// Untrusted strings end up quoted in Status messages and from there in
// logs and NDJSON error responses; keep them short and printable.
std::string Excerpt(const std::string& text) {
  constexpr size_t kMax = 48;
  std::string out;
  out.reserve(text.size() < kMax ? text.size() : kMax + 3);
  for (size_t i = 0; i < text.size() && i < kMax; ++i) {
    char c = text[i];
    out.push_back((c >= 0x20 && c < 0x7f) ? c : '?');
  }
  if (text.size() > kMax) out += "...";
  return out;
}

template <typename T>
Status ParseWhole(const std::string& text, int base, T* value) {
  if (text.empty()) {
    return Status::InvalidArgument("expected a number, got an empty string");
  }
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, *value, base);
  if (ec == std::errc::result_out_of_range) {
    return Status::OutOfRange("number out of range: '" + Excerpt(text) + "'");
  }
  if (ec != std::errc() || ptr != end) {
    return Status::InvalidArgument("not a number: '" + Excerpt(text) + "'");
  }
  return Status::Ok();
}

template <typename T>
Status CheckRange(T value, T min_value, T max_value, const std::string& text) {
  // Written as a negated conjunction so a NaN (which fails every
  // comparison) is rejected rather than accepted.
  if (!(value >= min_value && value <= max_value)) {
    return Status::OutOfRange("value '" + Excerpt(text) +
                              "' is outside the allowed range");
  }
  return Status::Ok();
}

}  // namespace

Status ParseInt32(const std::string& text, int32_t min_value,
                  int32_t max_value, int32_t* out) {
  int32_t value = 0;
  Status parsed = ParseWhole(text, 10, &value);
  if (!parsed.ok()) return parsed;
  Status ranged = CheckRange(value, min_value, max_value, text);
  if (!ranged.ok()) return ranged;
  *out = value;
  return Status::Ok();
}

Status ParseInt64(const std::string& text, int64_t min_value,
                  int64_t max_value, int64_t* out) {
  int64_t value = 0;
  Status parsed = ParseWhole(text, 10, &value);
  if (!parsed.ok()) return parsed;
  Status ranged = CheckRange(value, min_value, max_value, text);
  if (!ranged.ok()) return ranged;
  *out = value;
  return Status::Ok();
}

Status ParseDouble(const std::string& text, double min_value, double max_value,
                   double* out) {
  if (text.empty()) {
    return Status::InvalidArgument("expected a number, got an empty string");
  }
  double value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec == std::errc::result_out_of_range) {
    return Status::OutOfRange("number out of range: '" + Excerpt(text) + "'");
  }
  if (ec != std::errc() || ptr != end) {
    return Status::InvalidArgument("not a number: '" + Excerpt(text) + "'");
  }
  Status ranged = CheckRange(value, min_value, max_value, text);
  if (!ranged.ok()) return ranged;
  *out = value;
  return Status::Ok();
}

Status ParseUint64Hex(const std::string& text, uint64_t* out) {
  uint64_t value = 0;
  Status parsed = ParseWhole(text, 16, &value);
  if (!parsed.ok()) return parsed;
  *out = value;
  return Status::Ok();
}

}  // namespace util
}  // namespace exea
