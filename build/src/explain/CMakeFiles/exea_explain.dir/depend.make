# Empty dependencies file for exea_explain.
# This may be replaced when dependencies are built.
