// Descriptive statistics for a KG, used in dataset reporting and the
// benchmark headers.

#ifndef EXEA_KG_STATS_H_
#define EXEA_KG_STATS_H_

#include <string>

#include "kg/graph.h"

namespace exea::kg {

struct KgStats {
  size_t num_entities = 0;
  size_t num_relations = 0;
  size_t num_triples = 0;
  double avg_degree = 0.0;
  size_t max_degree = 0;
  size_t isolated_entities = 0;  // entities with no triples

  std::string ToString() const;
};

KgStats ComputeStats(const KnowledgeGraph& graph);

}  // namespace exea::kg

#endif  // EXEA_KG_STATS_H_
