// obs-no-adhoc-metrics counterexamples that must scan clean: the obs/
// module itself implements the metrics, so its counter-named members are
// exempt, and a member whose type mentions obs:: is a reference into the
// registry — the approved pattern.
#ifndef EXEA_TESTS_CORPUS_LINT_GOOD_SRC_OBS_METERS_H_
#define EXEA_TESTS_CORPUS_LINT_GOOD_SRC_OBS_METERS_H_

#include <cstdint>

namespace obs {
class Counter;
}  // namespace obs

class Meter {
 private:
  uint64_t event_counter_ = 0;  // inside obs/ — exempt
};

#endif  // EXEA_TESTS_CORPUS_LINT_GOOD_SRC_OBS_METERS_H_
