#include "repair/one_to_many.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace exea::repair {
namespace {

// Resolves the initial conflicts: for every target claimed by multiple
// sources, keep the claimant whose explanation confidence is highest.
// Returns the one-to-one alignment and the displaced sources.
void OneToOne(const kg::AlignmentSet& results, const kg::AlignmentSet& seeds,
              const ConfidenceFn& confidence, OneToManyResult& out) {
  explain::AlignmentContext context(&results, &seeds);
  std::unordered_set<kg::EntityId> displaced;

  // Pass 1: resolve targets with multiple sources.
  kg::AlignmentSet intermediate;
  for (const kg::AlignedPair& pair : results.SortedPairs()) {
    intermediate.Add(pair.source, pair.target);
  }
  for (const kg::AlignedPair& pair : results.SortedPairs()) {
    std::vector<kg::EntityId> sources = intermediate.SourcesOf(pair.target);
    if (sources.size() <= 1) continue;
    kg::EntityId best = kg::kInvalidEntity;
    double best_conf = -1.0;
    for (kg::EntityId source : sources) {
      double conf = confidence(source, pair.target, context);
      if (conf > best_conf) {
        best_conf = conf;
        best = source;
      }
    }
    for (kg::EntityId source : sources) {
      if (source == best) continue;
      intermediate.Remove(source, pair.target);
      displaced.insert(source);
      ++out.initial_conflicts;
    }
  }
  // Pass 2: resolve sources with multiple targets (cannot arise from
  // greedy inference but kept for generality).
  for (const kg::AlignedPair& pair : intermediate.SortedPairs()) {
    std::vector<kg::EntityId> targets = intermediate.TargetsOf(pair.source);
    if (targets.size() <= 1) continue;
    kg::EntityId best = kg::kInvalidEntity;
    double best_conf = -1.0;
    for (kg::EntityId target : targets) {
      double conf = confidence(pair.source, target, context);
      if (conf > best_conf) {
        best_conf = conf;
        best = target;
      }
    }
    for (kg::EntityId target : targets) {
      if (target == best) continue;
      intermediate.Remove(pair.source, target);
      ++out.initial_conflicts;
    }
  }

  out.alignment = std::move(intermediate);
  out.unaligned.assign(displaced.begin(), displaced.end());
  std::sort(out.unaligned.begin(), out.unaligned.end());
}

}  // namespace

OneToManyResult RepairOneToMany(const kg::AlignmentSet& results,
                                const kg::AlignmentSet& seeds,
                                const emb::RankedSimilarity& ranked,
                                const ConfidenceFn& confidence,
                                size_t top_k) {
  OneToManyResult out;
  OneToOne(results, seeds, confidence, out);  // Line 1

  std::vector<kg::EntityId>& pending = out.unaligned;
  while (!pending.empty()) {  // Line 2
    ++out.iterations;
    size_t last_len = pending.size();  // Line 3
    std::vector<kg::EntityId> still_unaligned;
    for (kg::EntityId e1 : pending) {  // Line 4
      bool aligned = false;
      const std::vector<emb::Candidate>& candidates =
          ranked.CandidatesFor(e1);
      size_t depth = std::min(top_k, candidates.size());
      for (size_t j = 0; j < depth; ++j) {  // Lines 6-7
        kg::EntityId e2 = candidates[j].target;
        if (!out.alignment.HasTarget(e2)) {  // Lines 8-9
          out.alignment.Add(e1, e2);
          aligned = true;
          break;
        }
        // Lines 11-18: challenge the incumbent by explanation confidence.
        kg::EntityId incumbent = out.alignment.UniqueSourceOf(e2);
        EXEA_CHECK_NE(incumbent, kg::kInvalidEntity);
        explain::AlignmentContext context(&out.alignment, &seeds);
        double challenger_conf = confidence(e1, e2, context);
        double incumbent_conf = confidence(incumbent, e2, context);
        if (challenger_conf > incumbent_conf) {  // Line 16
          out.alignment.Add(e1, e2);
          out.alignment.Remove(incumbent, e2);
          still_unaligned.push_back(incumbent);
          ++out.swaps;
          aligned = true;
          break;
        }
      }
      if (!aligned) still_unaligned.push_back(e1);  // Line 19
    }
    std::sort(still_unaligned.begin(), still_unaligned.end());
    still_unaligned.erase(
        std::unique(still_unaligned.begin(), still_unaligned.end()),
        still_unaligned.end());
    pending = std::move(still_unaligned);  // Line 20
    if (pending.size() >= last_len) break;  // Line 21
  }
  return out;
}

}  // namespace exea::repair
