# Empty compiler generated dependencies file for bench_fig5_case_study.
# This may be replaced when dependencies are built.
