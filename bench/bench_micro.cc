// Micro-benchmarks (google-benchmark) for the hot kernels of the
// framework: similarity top-k, path enumeration, Eq. (2) path embedding +
// matching, ADG construction/confidence, relation-functionality
// computation, and serial-vs-parallel scaling of the similarity/CSLS
// kernels (the Arg of the */threads:N cases is the worker count). Not tied
// to a paper table; used to track kernel regressions.
//
// Run with --benchmark_format=json to get machine-readable output; the
// context block carries "exea_threads" (the EXEA_THREADS-configured
// default worker count) so recorded numbers are attributable.

#include <unistd.h>

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "bench/common.h"
#include "eval/csls.h"
#include "explain/exea.h"
#include "kg/functionality.h"
#include "kg/neighborhood.h"
#include "la/simd.h"
#include "la/similarity.h"
#include "la/similarity_index.h"
#include "lint/cache.h"
#include "lint/config.h"
#include "lint/global_rules.h"
#include "lint/local_rules.h"
#include "lint/source.h"
#include "lint/taint.h"
#include "net/bounded_queue.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "serve/engine.h"
#include "serve/snapshot.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace {

using namespace exea;

// Shared fixture state (built once).
struct State {
  data::EaDataset dataset;
  std::unique_ptr<emb::EAModel> model;
  std::unique_ptr<explain::ExeaExplainer> explainer;
  kg::AlignmentSet aligned;

  State() {
    dataset = data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
    model = bench::TrainModel(emb::ModelKind::kMTransE, dataset);
    explainer = std::make_unique<explain::ExeaExplainer>(
        dataset, *model, explain::ExeaConfig{});
    eval::RankedSimilarity ranked = eval::RankTestEntities(*model, dataset);
    aligned = eval::GreedyAlign(ranked);
  }
};

State& GetState() {
  static State* state = bench::LeakySingleton<State>();
  return *state;
}

void BM_TopKCosine(benchmark::State& state) {
  Rng rng(1);
  la::Matrix table(512, 32);
  table.FillNormal(rng, 1.0f);
  la::Vec query(32);
  for (float& v : query) v = rng.UniformFloat(-1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::TopKByCosine(query.data(), table, 10));
  }
}
BENCHMARK(BM_TopKCosine);

void BM_CosineSimilarityMatrix(benchmark::State& state) {
  Rng rng(2);
  la::Matrix a(128, 32);
  la::Matrix b(128, 32);
  a.FillNormal(rng, 1.0f);
  b.FillNormal(rng, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::CosineSimilarityMatrix(a, b));
  }
}
BENCHMARK(BM_CosineSimilarityMatrix);

void BM_PathEnumeration(benchmark::State& state) {
  State& s = GetState();
  kg::PathEnumerationOptions options;
  options.max_length = 2;
  kg::EntityId e = s.dataset.test_sources[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(kg::EnumeratePaths(s.dataset.kg1, e, options));
  }
}
BENCHMARK(BM_PathEnumeration);

void BM_RelationFunctionality(benchmark::State& state) {
  State& s = GetState();
  for (auto _ : state) {
    kg::RelationFunctionality func(s.dataset.kg1);
    benchmark::DoNotOptimize(func.Func(0));
  }
}
BENCHMARK(BM_RelationFunctionality);

void BM_ExplainPair(benchmark::State& state) {
  State& s = GetState();
  explain::AlignmentContext context(&s.aligned, &s.dataset.train);
  const kg::AlignedPair& pair = s.dataset.test[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        s.explainer->Explain(pair.source, pair.target, context));
  }
}
BENCHMARK(BM_ExplainPair);

void BM_AdgConfidence(benchmark::State& state) {
  State& s = GetState();
  explain::AlignmentContext context(&s.aligned, &s.dataset.train);
  const kg::AlignedPair& pair = s.dataset.test[0];
  explain::Explanation explanation =
      s.explainer->Explain(pair.source, pair.target, context);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.explainer->BuildAdg(explanation));
  }
}
BENCHMARK(BM_AdgConfidence);

void BM_TriplesWithinTwoHops(benchmark::State& state) {
  State& s = GetState();
  kg::EntityId e = s.dataset.test_sources[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(kg::TriplesWithinHops(s.dataset.kg1, e, 2));
  }
}
BENCHMARK(BM_TriplesWithinTwoHops);

// ------------------------------------------------------------- serve path
//
// The online-serving cases: snapshot load (the server's startup cost) and
// the cold/warm explain split (the LRU cache is the serving subsystem's
// main latency lever — warm should be orders of magnitude below cold).

// A snapshot bundle frozen from the shared fixture state, written to a
// pid-suffixed temp directory once per process.
const std::string& BundleDir() {
  static const std::string* dir = [] {
    State& s = GetState();
    auto* path = bench::LeakySingleton<std::string>(
        (std::filesystem::temp_directory_path() /
         ("exea_bench_bundle_" + std::to_string(::getpid())))
            .string());
    serve::SnapshotBundle bundle;
    bundle.meta.model_name = s.model->name();
    bundle.meta.dataset_name = "bench";
    bundle.meta.inference = "greedy";
    bundle.meta.has_relation_embeddings = s.model->HasRelationEmbeddings();
    bundle.dataset = s.dataset;
    bundle.emb1 = s.model->EntityEmbeddings(kg::KgSide::kSource);
    bundle.emb2 = s.model->EntityEmbeddings(kg::KgSide::kTarget);
    if (bundle.meta.has_relation_embeddings) {
      bundle.rel1 = s.model->RelationEmbeddings(kg::KgSide::kSource);
      bundle.rel2 = s.model->RelationEmbeddings(kg::KgSide::kTarget);
    }
    bundle.alignment = s.aligned;
    bundle.repaired = s.aligned;
    Status status = serve::WriteSnapshot(bundle, *path);
    if (!status.ok()) {
      std::fprintf(stderr, "bundle write failed: %s\n",
                   status.ToString().c_str());
      std::abort();
    }
    return path;
  }();
  return *dir;
}

void BM_SnapshotLoad(benchmark::State& state) {
  const std::string& dir = BundleDir();
  for (auto _ : state) {
    auto bundle = serve::ReadSnapshot(dir);
    if (!bundle.ok()) state.SkipWithError("snapshot load failed");
    benchmark::DoNotOptimize(bundle);
  }
}
BENCHMARK(BM_SnapshotLoad)->Unit(benchmark::kMillisecond);

void BM_ServeExplainCold(benchmark::State& state) {
  static serve::QueryEngine* engine = [] {
    auto opened = serve::QueryEngine::Open(BundleDir(),
                                           serve::EngineOptions{});
    if (!opened.ok()) {
      std::fprintf(stderr, "engine open failed: %s\n",
                   opened.status().ToString().c_str());
      std::abort();
    }
    return opened->release();
  }();
  State& s = GetState();
  kg::AlignedPair pair = s.aligned.SortedPairs()[0];
  std::string source = s.dataset.kg1.EntityName(pair.source);
  std::string target = s.dataset.kg2.EntityName(pair.target);
  for (auto _ : state) {
    engine->ClearExplainCache();  // every iteration pays the full path
    benchmark::DoNotOptimize(
        engine->Explain(source, target, serve::Deadline::None()));
  }
}
BENCHMARK(BM_ServeExplainCold);

void BM_ServeExplainWarm(benchmark::State& state) {
  static serve::QueryEngine* engine = [] {
    auto opened = serve::QueryEngine::Open(BundleDir(),
                                           serve::EngineOptions{});
    if (!opened.ok()) {
      std::fprintf(stderr, "engine open failed: %s\n",
                   opened.status().ToString().c_str());
      std::abort();
    }
    return opened->release();
  }();
  State& s = GetState();
  kg::AlignedPair pair = s.aligned.SortedPairs()[0];
  std::string source = s.dataset.kg1.EntityName(pair.source);
  std::string target = s.dataset.kg2.EntityName(pair.target);
  // Prime once; every timed iteration is a cache hit.
  engine->Explain(source, target, serve::Deadline::None()).ok();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine->Explain(source, target, serve::Deadline::None()));
  }
}
BENCHMARK(BM_ServeExplainWarm);

// ------------------------------------------------- async serving core

// Lock-and-signal overhead of the admission queue under contention: every
// benchmark thread plays both producer and consumer, so the queue stays
// near-empty and the measured cost is the mutex/condvar handshake itself,
// not useful work.
void BM_BoundedQueuePushPop(benchmark::State& state) {
  static net::BoundedQueue<size_t>* queue =
      bench::LeakySingleton<net::BoundedQueue<size_t>>(1024);
  for (auto _ : state) {
    while (!queue->TryPush(1)) {
    }
    size_t item = 0;
    if (!queue->Pop(&item)) {
      state.SkipWithError("queue closed");
      break;
    }
    benchmark::DoNotOptimize(item);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BoundedQueuePushPop)->Threads(1)->Threads(4);

// The coalescer's win, measured directly: one AlignResolved dispatch with
// N rows vs. N single-row dispatches. items/sec is rows served — the gap
// between rows:1 and rows:32 is the fixed per-dispatch cost the coalescer
// amortizes across concurrent requests.
void BM_AlignResolvedBatch(benchmark::State& state) {
  static serve::QueryEngine* engine = [] {
    auto opened = serve::QueryEngine::Open(BundleDir(),
                                           serve::EngineOptions{});
    if (!opened.ok()) {
      std::fprintf(stderr, "engine open failed: %s\n",
                   opened.status().ToString().c_str());
      std::abort();
    }
    return opened->release();
  }();
  State& s = GetState();
  std::vector<kg::AlignedPair> pairs = s.aligned.SortedPairs();
  size_t rows = static_cast<size_t>(state.range(0));
  std::vector<kg::EntityId> ids;
  std::vector<std::string> names;
  for (size_t i = 0; i < rows; ++i) {
    const kg::AlignedPair& pair = pairs[i % pairs.size()];
    ids.push_back(pair.source);
    names.push_back(s.dataset.kg1.EntityName(pair.source));
  }
  std::shared_ptr<const serve::ServingState> pinned = engine->AcquireState();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->AlignResolved(*pinned, ids, names));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_AlignResolvedBatch)
    ->Arg(1)->Arg(8)->Arg(32)
    ->ArgName("rows");

// The hot-swap cost: read + validate + rebuild the serving state and
// install it, per swap. This is the zero-downtime path — readers never
// block on it — so what matters is throughput (swaps stay off the
// request threads), not tail latency.
void BM_SnapshotSwap(benchmark::State& state) {
  static serve::QueryEngine* engine = [] {
    auto opened = serve::QueryEngine::Open(BundleDir(),
                                           serve::EngineOptions{});
    if (!opened.ok()) {
      std::fprintf(stderr, "engine open failed: %s\n",
                   opened.status().ToString().c_str());
      std::abort();
    }
    return opened->release();
  }();
  for (auto _ : state) {
    auto epoch = engine->LoadSnapshot(BundleDir());
    if (!epoch.ok()) {
      state.SkipWithError("swap failed");
      break;
    }
    benchmark::DoNotOptimize(*epoch);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SnapshotSwap)->Unit(benchmark::kMillisecond);

// Scatter-gather top-k at 1..8 shards over the same table: the result is
// bit-identical at every shard count, so the only question is where the
// merge overhead crosses the per-shard parallelism win. items/sec is
// queries answered.
void BM_ShardedEngineTopK(benchmark::State& state) {
  size_t shards = static_cast<size_t>(state.range(0));
  serve::EngineOptions options;
  options.shards = shards;
  auto opened = serve::QueryEngine::Open(BundleDir(), options);
  if (!opened.ok()) {
    state.SkipWithError("engine open failed");
    return;
  }
  serve::QueryEngine* engine = opened->get();
  State& s = GetState();
  std::vector<kg::AlignedPair> pairs = s.aligned.SortedPairs();
  std::vector<kg::EntityId> ids;
  std::vector<std::string> names;
  for (size_t i = 0; i < 32 && i < pairs.size(); ++i) {
    ids.push_back(pairs[i].source);
    names.push_back(s.dataset.kg1.EntityName(pairs[i].source));
  }
  std::shared_ptr<const serve::ServingState> pinned = engine->AcquireState();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->AlignResolved(*pinned, ids, names));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ids.size()));
}
BENCHMARK(BM_ShardedEngineTopK)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->ArgName("exea_serve_shards")
    ->Unit(benchmark::kMicrosecond);

// ------------------------------------------------- observability overhead
//
// The obs primitives sit on serving and pipeline hot paths; these pin what
// one event costs so a regression in the metrics layer itself is visible.

void BM_ObsCounterIncrement(benchmark::State& state) {
  obs::Counter& counter =
      obs::Registry::Global().GetCounter("bench.obs.counter");
  for (auto _ : state) counter.Increment();
}
BENCHMARK(BM_ObsCounterIncrement);

void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::Histogram& histogram =
      obs::Registry::Global().GetHistogram("bench.obs.histogram");
  double value = 0.01;
  for (auto _ : state) {
    histogram.Record(value);
    value *= 1.001;  // sweep upward so the bucket math is exercised
    if (value > 1e4) value = 0.01;
  }
}
BENCHMARK(BM_ObsHistogramRecord);

void BM_ObsSpan(benchmark::State& state) {
  for (auto _ : state) {
    obs::Span span("bench.obs.span");
    benchmark::DoNotOptimize(const_cast<std::string*>(&span.path()));
  }
}
BENCHMARK(BM_ObsSpan);

// ---------------------------------------------- serial vs parallel kernels
//
// The Arg is the worker count; .../threads:1 is the serial baseline the
// determinism contract pins the parallel outputs to. The matrices are
// sized so the speedup at 4 threads is measurable (2000x2000x64 for the
// similarity kernel is the acceptance workload).

// Restores the ambient worker count when a scaling case finishes.
class ThreadCountGuard {
 public:
  ThreadCountGuard(size_t n) : previous_(util::ThreadCount()) {
    util::SetThreadCount(n);
  }
  ~ThreadCountGuard() { util::SetThreadCount(previous_); }

 private:
  size_t previous_;
};

void BM_CosineSimilarityMatrixParallel(benchmark::State& state) {
  static const auto* input = [] {
    Rng rng(3);
    auto* m = bench::LeakySingleton<std::pair<la::Matrix, la::Matrix>>(
        la::Matrix(2000, 64), la::Matrix(2000, 64));
    m->first.FillNormal(rng, 1.0f);
    m->second.FillNormal(rng, 1.0f);
    return m;
  }();
  ThreadCountGuard guard(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        la::CosineSimilarityMatrix(input->first, input->second));
  }
}
BENCHMARK(BM_CosineSimilarityMatrixParallel)
    ->Arg(1)->Arg(2)->Arg(4)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond);

void BM_TopKByCosineAllParallel(benchmark::State& state) {
  static const auto* input = [] {
    Rng rng(4);
    auto* m = bench::LeakySingleton<std::pair<la::Matrix, la::Matrix>>(
        la::Matrix(1000, 64), la::Matrix(2000, 64));
    m->first.FillNormal(rng, 1.0f);
    m->second.FillNormal(rng, 1.0f);
    return m;
  }();
  ThreadCountGuard guard(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        la::TopKByCosineAll(input->first, input->second, 10));
  }
}
BENCHMARK(BM_TopKByCosineAllParallel)
    ->Arg(1)->Arg(2)->Arg(4)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond);

// The static-analysis gate itself is on the CI hot path (every ci/check.sh
// run scans the whole repo twice — text + JSON), so its wall time is
// tracked like any other kernel. One iteration = one full-repo scan of the
// exea_lint binary this build produced.
void BM_ExeaLintFullRepoScan(benchmark::State& state) {
  const std::string command = std::string(EXEA_LINT_BIN_PATH) + " --root " +
                              EXEA_REPO_ROOT_PATH + " >/dev/null 2>&1";
  for (auto _ : state) {
    int rc = std::system(command.c_str());
    if (rc != 0) {
      state.SkipWithError("exea_lint scan failed (repo no longer clean?)");
      return;
    }
  }
}
BENCHMARK(BM_ExeaLintFullRepoScan)->Unit(benchmark::kMillisecond);

// The analyzer pipeline in-process (linking the same exea_lint_core the
// binary uses), isolating cold vs warm cache from process startup and
// output formatting. Both legs read and hash every file and run the
// cross-TU passes — the warm leg replaces tokenize + index + local rules
// with a cache load + per-file hash lookups, which is exactly what an
// incremental CI run pays. The fixture (file list, concurrency model,
// layer DAG, pre-built cache file) is built once outside the timed loop.
struct LintScanFixture {
  std::vector<std::filesystem::path> files;
  lint::ConcurrencyConfig conc;
  lint::LayerGraph layers;
  bool have_layers = false;
  std::string layers_path;
  std::filesystem::path cache_path;
  uint64_t config_key = 0;
  lint::TaintConfig taint;

  LintScanFixture() {
    const std::filesystem::path root(EXEA_REPO_ROOT_PATH);
    for (const char* sub : {"src", "tools", "bench"}) {
      lint::CollectFiles(root / sub, &files);
    }
    conc.AddDefaults();
    std::string error;
    lint::ParseConcurrency(root / "tools" / "lint_concurrency.txt", &conc,
                           &error);
    layers_path = (root / "tools" / "layers.txt").string();
    have_layers = lint::ParseLayers(layers_path, &layers, &error);
    lint::ParseTaint(root / "tools" / "lint_taint.txt", &taint, &error);
    config_key = lint::CacheConfigKey(conc);
    cache_path = std::filesystem::temp_directory_path() /
                 "exea_bench_lint_cache.txt";
    // Seed the warm leg's cache file with one cold scan.
    lint::AnalysisCache cache(cache_path, config_key);
    cache.Write(ColdAnalyses());
  }

  std::vector<lint::FileAnalysis> ColdAnalyses() const {
    std::vector<lint::FileAnalysis> analyses;
    analyses.reserve(files.size());
    for (const auto& path : files) {
      std::string content;
      if (!lint::ReadFileContent(path, &content)) continue;
      lint::SourceFile src;
      lint::BuildSourceFile(path.string(), content, &src);
      analyses.push_back(lint::AnalyzeFile(src, conc));
      analyses.back().content_hash = lint::Fnv1a64(content);
    }
    return analyses;
  }
};

LintScanFixture& GetLintScanFixture() {
  static auto* fx = bench::LeakySingleton<LintScanFixture>();
  return *fx;
}

void BM_ExeaLintFullRepoScanColdCache(benchmark::State& state) {
  const LintScanFixture& fx = GetLintScanFixture();
  size_t diags = 0;
  for (auto _ : state) {
    std::vector<lint::FileAnalysis> analyses = fx.ColdAnalyses();
    std::vector<lint::Diagnostic> global = lint::RunGlobalRules(
        analyses, fx.have_layers ? &fx.layers : nullptr, fx.layers_path,
        fx.conc);
    diags = global.size();
    for (const auto& a : analyses) diags += a.local.size();
    benchmark::DoNotOptimize(diags);
  }
  state.counters["files"] = static_cast<double>(fx.files.size());
  state.counters["diags"] = static_cast<double>(diags);
}
BENCHMARK(BM_ExeaLintFullRepoScanColdCache)->Unit(benchmark::kMillisecond);

void BM_ExeaLintFullRepoScanWarmCache(benchmark::State& state) {
  const LintScanFixture& fx = GetLintScanFixture();
  size_t diags = 0;
  for (auto _ : state) {
    lint::AnalysisCache cache(fx.cache_path, fx.config_key);
    cache.Load();
    std::vector<lint::FileAnalysis> analyses;
    analyses.reserve(fx.files.size());
    size_t misses = 0;
    for (const auto& path : fx.files) {
      std::string content;
      if (!lint::ReadFileContent(path, &content)) continue;
      lint::FileAnalysis analysis;
      if (!cache.Lookup(path.string(), lint::Fnv1a64(content), &analysis)) {
        // A miss means the tree changed under the benchmark; fall back to
        // analyzing so the measured work stays a full correct scan.
        ++misses;
        lint::SourceFile src;
        lint::BuildSourceFile(path.string(), content, &src);
        analysis = lint::AnalyzeFile(src, fx.conc);
      }
      analyses.push_back(std::move(analysis));
    }
    if (misses == fx.files.size()) {
      state.SkipWithError("cache never hit (config drift?)");
      return;
    }
    std::vector<lint::Diagnostic> global = lint::RunGlobalRules(
        analyses, fx.have_layers ? &fx.layers : nullptr, fx.layers_path,
        fx.conc);
    diags = global.size();
    for (const auto& a : analyses) diags += a.local.size();
    benchmark::DoNotOptimize(diags);
  }
  state.counters["files"] = static_cast<double>(fx.files.size());
  state.counters["diags"] = static_cast<double>(diags);
}
BENCHMARK(BM_ExeaLintFullRepoScanWarmCache)->Unit(benchmark::kMillisecond);

// The untrusted-input taint pass over the real repository model
// (tools/lint_taint.txt). The cold leg pays tokenize + fact collection +
// propagation; the warm leg loads the fact tables from the cache and pays
// only the cross-TU fixpoint — the cost ci/check.sh's taint gate adds on
// an incremental run, since its facts ride the same cache as the other
// passes. A nonzero diag count aborts: the repo's taint scan is clean by
// construction, so any finding here means the model or the tree drifted.
void BM_ExeaLintTaintScanColdCache(benchmark::State& state) {
  const LintScanFixture& fx = GetLintScanFixture();
  for (auto _ : state) {
    std::vector<lint::FileAnalysis> analyses = fx.ColdAnalyses();
    std::vector<lint::Diagnostic> diags =
        lint::RunTaintPass(analyses, fx.taint);
    if (!diags.empty()) {
      state.SkipWithError("taint scan not clean (model drift?)");
      return;
    }
    benchmark::DoNotOptimize(diags);
  }
  state.counters["files"] = static_cast<double>(fx.files.size());
}
BENCHMARK(BM_ExeaLintTaintScanColdCache)->Unit(benchmark::kMillisecond);

void BM_ExeaLintTaintScanWarmCache(benchmark::State& state) {
  const LintScanFixture& fx = GetLintScanFixture();
  for (auto _ : state) {
    lint::AnalysisCache cache(fx.cache_path, fx.config_key);
    cache.Load();
    std::vector<lint::FileAnalysis> analyses;
    analyses.reserve(fx.files.size());
    size_t misses = 0;
    for (const auto& path : fx.files) {
      std::string content;
      if (!lint::ReadFileContent(path, &content)) continue;
      lint::FileAnalysis analysis;
      if (!cache.Lookup(path.string(), lint::Fnv1a64(content), &analysis)) {
        ++misses;
        lint::SourceFile src;
        lint::BuildSourceFile(path.string(), content, &src);
        analysis = lint::AnalyzeFile(src, fx.conc);
      }
      analyses.push_back(std::move(analysis));
    }
    if (misses == fx.files.size()) {
      state.SkipWithError("cache never hit (config drift?)");
      return;
    }
    std::vector<lint::Diagnostic> diags =
        lint::RunTaintPass(analyses, fx.taint);
    if (!diags.empty()) {
      state.SkipWithError("taint scan not clean (model drift?)");
      return;
    }
    benchmark::DoNotOptimize(diags);
  }
  state.counters["files"] = static_cast<double>(fx.files.size());
}
BENCHMARK(BM_ExeaLintTaintScanWarmCache)->Unit(benchmark::kMillisecond);

void BM_CslsAdjustParallel(benchmark::State& state) {
  static const la::Matrix* sim = [] {
    Rng rng(5);
    la::Matrix a(1500, 64);
    la::Matrix b(1500, 64);
    a.FillNormal(rng, 1.0f);
    b.FillNormal(rng, 1.0f);
    util::SetThreadCount(1);  // build the fixture off the scaling knob
    auto* m = bench::LeakySingleton<la::Matrix>(
        la::CosineSimilarityMatrix(a, b));
    util::SetThreadCount(0);
    return m;
  }();
  ThreadCountGuard guard(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::CslsAdjust(*sim, 10));
  }
}
BENCHMARK(BM_CslsAdjustParallel)
    ->Arg(1)->Arg(2)->Arg(4)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------- simd + similarity index

// The dispatched dot kernel at each SIMD level (Arg 0 = scalar,
// Arg 1 = avx2) — the per-level cost of the bit-identity contract.
void BM_SimdDot(benchmark::State& state) {
  la::SimdLevel level = state.range(0) == 0 ? la::SimdLevel::kScalar
                                            : la::SimdLevel::kAvx2;
  if (level == la::SimdLevel::kAvx2 && !la::Avx2Supported()) {
    state.SkipWithError("AVX2 not available on this machine");
    return;
  }
  static const auto* vectors = [] {
    Rng rng(6);
    auto* v = bench::LeakySingleton<
        std::pair<std::vector<float>, std::vector<float>>>();
    v->first.resize(512);
    v->second.resize(512);
    for (float& x : v->first) x = rng.UniformFloat(-1, 1);
    for (float& x : v->second) x = rng.UniformFloat(-1, 1);
    return v;
  }();
  la::SimdLevel original = la::ActiveSimdLevel();
  la::SetSimdLevelForTest(level);
  const la::SimdOps& ops = la::ActiveSimdOps();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.dot(vectors->first.data(),
                                     vectors->second.data(),
                                     vectors->first.size()));
  }
  la::SetSimdLevelForTest(original);
  state.SetLabel(la::SimdLevelName(level));
}
BENCHMARK(BM_SimdDot)->Arg(0)->Arg(1)->ArgName("level");

// Clustered fixture big enough that cluster pruning wins: the recall@k
// vs QPS trade-off sweep ISSUE'd for the IVF index. items_processed is
// queries answered, so the reported rate is QPS; the recall@10 counter
// on each IVF case is measured against the exact scan's answers.
struct IndexBenchFixture {
  la::Matrix table{20000, 64};
  la::Matrix queries{64, 64};
  la::IvfIndexData ivf;
  std::vector<std::vector<la::ScoredIndex>> truth;

  IndexBenchFixture() {
    Rng rng(7);
    const size_t centers = 141;  // ~sqrt(rows)
    la::Matrix center_mat(centers, 64);
    for (size_t c = 0; c < centers; ++c) {
      for (size_t j = 0; j < 64; ++j) {
        center_mat.Row(c)[j] = static_cast<float>(rng.Normal());
      }
    }
    for (size_t r = 0; r < table.rows(); ++r) {
      const float* center = center_mat.Row(r % centers);
      for (size_t j = 0; j < 64; ++j) {
        table.Row(r)[j] =
            center[j] + 0.15f * static_cast<float>(rng.Normal());
      }
    }
    for (size_t q = 0; q < queries.rows(); ++q) {
      const float* row = table.Row(rng.UniformInt(table.rows()));
      for (size_t j = 0; j < 64; ++j) {
        queries.Row(q)[j] =
            row[j] + 0.05f * static_cast<float>(rng.Normal());
      }
    }
    ivf = la::TrainIvfIndex(table, la::IvfOptions{});
    truth = la::ExactIndex(&table).TopKAll(queries, 10);
  }

  double RecallAt10(
      const std::vector<std::vector<la::ScoredIndex>>& got) const {
    double hits = 0, total = 0;
    for (size_t q = 0; q < truth.size(); ++q) {
      total += static_cast<double>(truth[q].size());
      for (const la::ScoredIndex& g : got[q]) {
        for (const la::ScoredIndex& t : truth[q]) {
          if (g.index == t.index) {
            hits += 1;
            break;
          }
        }
      }
    }
    return total == 0 ? 1.0 : hits / total;
  }
};

IndexBenchFixture& GetIndexFixture() {
  static IndexBenchFixture* fixture =
      bench::LeakySingleton<IndexBenchFixture>();
  return *fixture;
}

void BM_ExactIndexTopK(benchmark::State& state) {
  IndexBenchFixture& fx = GetIndexFixture();
  la::ExactIndex index(&fx.table);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.TopKAll(fx.queries, 10));
  }
  state.counters["recall@10"] = 1.0;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fx.queries.rows()));
}
BENCHMARK(BM_ExactIndexTopK)->Unit(benchmark::kMillisecond);

void BM_IvfIndexTopK(benchmark::State& state) {
  IndexBenchFixture& fx = GetIndexFixture();
  la::IvfIndex index(&fx.table, &fx.ivf);
  index.set_nprobe(static_cast<size_t>(state.range(0)));
  double recall = fx.RecallAt10(index.TopKAll(fx.queries, 10));
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.TopKAll(fx.queries, 10));
  }
  state.counters["recall@10"] = recall;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fx.queries.rows()));
}
BENCHMARK(BM_IvfIndexTopK)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->ArgName("nprobe")
    ->Unit(benchmark::kMillisecond);

// The comma-joined rule registry of the exea_lint binary this build
// produced (first token of each --list-rules line), so a recorded
// BM_ExeaLintFullRepoScan number is attributable to the exact rule set it
// scanned with. Empty if the binary cannot be run.
std::string LintRuleRegistry() {
  std::string command = std::string(EXEA_LINT_BIN_PATH) + " --list-rules";
  std::FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return "";
  std::string rules;
  char buffer[256];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    std::string line(buffer);
    size_t end = line.find_first_of(" \t\n");
    if (end == 0 || end == std::string::npos) continue;
    if (!rules.empty()) rules += ',';
    rules += line.substr(0, end);
  }
  pclose(pipe);
  return rules;
}

}  // namespace

int main(int argc, char** argv) {
  // EXEA_THREADS sets the ambient worker count (the */threads:N scaling
  // cases override it per-case); record it in the benchmark context so
  // JSON output (--benchmark_format=json) carries the configuration.
  size_t threads = exea::bench::ConfigureThreadsFromEnv();
  benchmark::AddCustomContext("exea_threads", std::to_string(threads));
  benchmark::AddCustomContext("exea_git_sha", exea::bench::BuildGitSha());
  benchmark::AddCustomContext("exea_build_type", exea::bench::BuildType());
  std::string lint_rules = LintRuleRegistry();
  benchmark::AddCustomContext("exea_lint_rules", lint_rules);
  // The registry size as its own context key (21 as of the taint family),
  // so dashboards can spot a rule-set change without diffing the comma
  // list.
  benchmark::AddCustomContext(
      "exea_lint_rule_count",
      std::to_string(lint_rules.empty()
                         ? 0
                         : 1 + std::count(lint_rules.begin(),
                                          lint_rules.end(), ',')));
  // The taint model's shape (sources/sanitizers/barriers/sinks declared
  // in tools/lint_taint.txt), so a recorded BM_ExeaLintTaintScan* number
  // is attributable to the model it propagated.
  {
    lint::TaintConfig taint;
    std::string error;
    lint::ParseTaint(
        std::filesystem::path(EXEA_REPO_ROOT_PATH) / "tools" /
            "lint_taint.txt",
        &taint, &error);
    benchmark::AddCustomContext(
        "exea_lint_taint_rules",
        "sources=" + std::to_string(taint.sources.size()) +
            ",tainted_params=" + std::to_string(taint.tainted_params.size()) +
            ",sanitizers=" + std::to_string(taint.sanitizers.size()) +
            ",barriers=" + std::to_string(taint.barriers.size()) +
            ",sinks=" + std::to_string(taint.sinks.size()));
  }
  // How many metrics the process-wide obs registry holds at startup, so a
  // recorded run documents its instrumentation surface. Touch one metric
  // first: the count must witness the registry itself is alive.
  exea::obs::Registry::Global().GetGauge("bench.obs.context_stamp").Set(1.0);
  benchmark::AddCustomContext(
      "exea_obs_metrics_count",
      std::to_string(exea::obs::Registry::Global().MetricCount()));
  // The shard counts BM_ShardedEngineTopK sweeps, so a recorded sharded
  // serving number names the partition layouts it covered.
  benchmark::AddCustomContext("exea_serve_shards", "1,2,4,8");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
