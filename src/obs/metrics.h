// exea::obs — the process-wide observability subsystem: named counters,
// gauges, and log-bucketed latency histograms, owned by a Registry.
//
// Why histograms instead of the old raw-sample vector (DESIGN.md §10):
// a sample vector either grows without bound or is capped, and a cap
// silently freezes the reported percentiles on the warm-up window — the
// latency-accounting bias this subsystem was built to fix. A log-bucketed
// histogram is O(1) memory forever and its quantile estimate carries a
// bounded relative error:
//
//   * exact while small — the first kExactSampleCap samples are kept
//     verbatim, so quantiles over short runs (every unit test, most CLI
//     sessions) are the true nearest-rank order statistics;
//   * bounded-error forever — past that, quantiles are read from
//     geometric buckets with kBucketsPerOctave buckets per power of two,
//     so the estimate lands in the same bucket as the true order
//     statistic and is off by at most one bucket width
//     (a factor of 2^(1/kBucketsPerOctave) ≈ 9%).
//
// All types here are internally synchronized: Counter/Gauge are single
// atomics, Histogram serializes Record/Quantile on a private mutex. The
// Registry hands out references that stay valid for its whole lifetime
// (metrics are never deleted), so hot paths resolve a name once and then
// touch only the metric itself.

#ifndef EXEA_OBS_METRICS_H_
#define EXEA_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/check.h"

namespace exea::obs {

// The exact nearest-rank quantile of `values` (not necessarily sorted):
// the smallest element with at least ceil(q * n) elements <= it. q is
// clamped to [0, 1]; an empty input returns 0. This is the corrected form
// of the serving layer's old Percentile(), whose floor(q * n) index read
// one rank too high (e.g. the p50 of {1, 2, 3, 4} came back 3, not 2).
double NearestRankQuantile(std::vector<double> values, double q);

// A monotonically increasing event count. Increment is a relaxed atomic
// add: counters order nothing, they only total.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// A last-written-value metric (queue depths, cache sizes, config knobs).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Log-bucketed distribution of non-negative samples (latencies in
// milliseconds, sizes, scores). See the file comment for the exactness /
// error-bound contract.
class Histogram {
 public:
  // Samples kept verbatim before quantiles switch to bucket estimates.
  static constexpr size_t kExactSampleCap = 128;
  // Geometric bucket resolution: 8 buckets per power of two, so one
  // bucket spans a factor of 2^(1/8) ≈ 1.0905.
  static constexpr int kBucketsPerOctave = 8;
  // Bucketed range: [2^kMinExponent, 2^kMaxExponent). Samples below land
  // in a dedicated underflow bucket (reported as the observed minimum),
  // above in an overflow bucket (reported as the observed maximum).
  static constexpr int kMinExponent = -20;  // ~1e-6
  static constexpr int kMaxExponent = 30;   // ~1e9
  static constexpr size_t kNumBuckets =
      static_cast<size_t>(kMaxExponent - kMinExponent) * kBucketsPerOctave;

  // The bucket a sample falls into: kNumBuckets regular buckets, or
  // SIZE_MAX for underflow (v < 2^kMinExponent, including zero and
  // negatives) and SIZE_MAX - 1 for overflow. Exposed for tests.
  static size_t BucketIndex(double value);
  static constexpr size_t kUnderflowBucket = static_cast<size_t>(-1);
  static constexpr size_t kOverflowBucket = static_cast<size_t>(-2);

  // Bucket i covers [BucketLowerBound(i), BucketUpperBound(i)).
  static double BucketLowerBound(size_t index);
  static double BucketUpperBound(size_t index);

  void Record(double value);

  uint64_t Count() const;
  double Sum() const;
  double Min() const;  // 0 when empty
  double Max() const;  // 0 when empty

  // Nearest-rank quantile: exact while Count() <= kExactSampleCap, then
  // the geometric midpoint of the bucket holding the true order statistic
  // (clamped to the observed [Min, Max]). q clamped to [0, 1].
  double Quantile(double q) const;

  // One consistent read of the whole distribution under a single lock.
  struct Snapshot {
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };
  Snapshot TakeSnapshot() const;

 private:
  double QuantileLocked(double q) const EXEA_REQUIRES(mu_);

  // mu_ protects everything declared after it (the class convention the
  // lock-discipline lint pass enforces).
  mutable std::mutex mu_;
  uint64_t count_ EXEA_GUARDED_BY(mu_) = 0;
  double sum_ EXEA_GUARDED_BY(mu_) = 0.0;
  double min_ EXEA_GUARDED_BY(mu_) = 0.0;
  double max_ EXEA_GUARDED_BY(mu_) = 0.0;
  std::vector<double> exact_ EXEA_GUARDED_BY(mu_);
  uint64_t underflow_ EXEA_GUARDED_BY(mu_) = 0;
  uint64_t overflow_ EXEA_GUARDED_BY(mu_) = 0;
  std::array<uint64_t, kNumBuckets> buckets_ EXEA_GUARDED_BY(mu_){};
};

// Name → metric, create-on-first-use. Returned references stay valid for
// the registry's lifetime; counters, gauges, and histograms live in
// separate namespaces (the same name may exist in each, though metric
// naming conventions below make that unlikely).
//
// Naming convention: dotted lowercase paths, subsystem first —
// "serve.requests", "serve.latency_ms", "span.exea.explain". Histogram
// values are milliseconds unless the name says otherwise.
//
// Registry::Global() is the process-wide instance every production call
// site uses; tests inject a fresh Registry (via ServerOptions /
// EngineOptions / the Span constructor) so assertions on exact counts
// never see another test's traffic.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  // Read-side lookups that never create: absent metrics read as zero /
  // an empty snapshot. These keep test assertions free of get-or-create
  // side effects.
  uint64_t CounterValue(const std::string& name) const;
  double GaugeValue(const std::string& name) const;
  Histogram::Snapshot HistogramSnapshot(const std::string& name) const;

  // All counters whose name starts with `prefix`, sorted by name (e.g.
  // "serve.op." → the serving layer's per-op request counts).
  std::vector<std::pair<std::string, uint64_t>> CountersWithPrefix(
      const std::string& prefix) const;

  // Number of registered metrics across all three kinds.
  size_t MetricCount() const;

  // Everything, as one JSON object:
  //   {"counters":{...},"gauges":{...},
  //    "histograms":{"name":{"count":..,"sum":..,"min":..,"max":..,
  //                          "p50":..,"p90":..,"p99":..},...}}
  // Keys are sorted (std::map order) so output is deterministic.
  std::string ToJson() const;

 private:
  // mu_ protects everything declared after it. The maps are node-based,
  // so the metric objects never move; references returned by the getters
  // outlive the lock.
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>>
      counters_ EXEA_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>>
      gauges_ EXEA_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>>
      histograms_ EXEA_GUARDED_BY(mu_);
};

}  // namespace exea::obs

#endif  // EXEA_OBS_METRICS_H_
