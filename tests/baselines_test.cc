// Tests for the explanation baselines: the perturbation engine, EALime,
// EAShapley (Shapley axioms on planted value structures), Anchor, LORE,
// the ExEA adapter, and the shared top-k selection helper.

#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "baselines/anchor.h"
#include "baselines/ealime.h"
#include "baselines/eashapley.h"
#include "explain/exea_explainer_adapter.h"
#include "baselines/exhaustive.h"
#include "baselines/explainer.h"
#include "baselines/lore.h"
#include "baselines/perturbation.h"
#include "data/benchmarks.h"
#include "emb/model.h"
#include "eval/inference.h"
#include "explain/exea.h"

namespace exea::baselines {
namespace {

// Shared fixture: tiny benchmark + trained MTransE + one correctly
// predicted pair with its first-order candidates.
class BaselineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::EaDataset(
        data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny));
    model_ = emb::MakeDefaultModel(emb::ModelKind::kMTransE).release();
    model_->Train(*dataset_);
    embedder_ = new PerturbedEmbedder(*dataset_, *model_);

    // Find a correctly predicted pair with a reasonable candidate count.
    eval::RankedSimilarity ranked = eval::RankTestEntities(*model_, *dataset_);
    for (const kg::AlignedPair& pair : dataset_->test) {
      const auto& candidates = ranked.CandidatesFor(pair.source);
      if (candidates.empty() || candidates[0].target != pair.target) continue;
      auto c1 = kg::TriplesWithinHops(dataset_->kg1, pair.source, 1);
      auto c2 = kg::TriplesWithinHops(dataset_->kg2, pair.target, 1);
      if (c1.size() < 3 || c2.size() < 3) continue;
      e1_ = pair.source;
      e2_ = pair.target;
      candidates1_ = new std::vector<kg::Triple>(std::move(c1));
      candidates2_ = new std::vector<kg::Triple>(std::move(c2));
      break;
    }
    ASSERT_NE(e1_, kg::kInvalidEntity);
  }
  static void TearDownTestSuite() {
    delete candidates2_;
    delete candidates1_;
    delete embedder_;
    delete model_;
    delete dataset_;
  }

  static data::EaDataset* dataset_;
  static emb::EAModel* model_;
  static PerturbedEmbedder* embedder_;
  static kg::EntityId e1_;
  static kg::EntityId e2_;
  static std::vector<kg::Triple>* candidates1_;
  static std::vector<kg::Triple>* candidates2_;
};

data::EaDataset* BaselineFixture::dataset_ = nullptr;
emb::EAModel* BaselineFixture::model_ = nullptr;
PerturbedEmbedder* BaselineFixture::embedder_ = nullptr;
kg::EntityId BaselineFixture::e1_ = kg::kInvalidEntity;
kg::EntityId BaselineFixture::e2_ = kg::kInvalidEntity;
std::vector<kg::Triple>* BaselineFixture::candidates1_ = nullptr;
std::vector<kg::Triple>* BaselineFixture::candidates2_ = nullptr;

// -------------------------------------------------------- SelectTopTriples

TEST(SelectTopTriplesTest, PicksHighestScores) {
  std::vector<kg::Triple> c1 = {{0, 0, 1}, {0, 0, 2}};
  std::vector<kg::Triple> c2 = {{5, 0, 6}};
  ExplainerResult result =
      SelectTopTriples(c1, c2, {0.1, 0.9, 0.5}, /*budget=*/2);
  EXPECT_EQ(result.TotalTriples(), 2u);
  ASSERT_EQ(result.triples1.size(), 1u);
  EXPECT_EQ(result.triples1[0].tail, 2u);  // score 0.9
  ASSERT_EQ(result.triples2.size(), 1u);   // score 0.5
}

TEST(SelectTopTriplesTest, BudgetClampsToTotal) {
  std::vector<kg::Triple> c1 = {{0, 0, 1}};
  ExplainerResult result = SelectTopTriples(c1, {}, {1.0}, 10);
  EXPECT_EQ(result.TotalTriples(), 1u);
}

TEST(SelectTopTriplesTest, DeterministicTieBreak) {
  std::vector<kg::Triple> c1 = {{0, 0, 1}, {0, 0, 2}, {0, 0, 3}};
  ExplainerResult a = SelectTopTriples(c1, {}, {0.5, 0.5, 0.5}, 2);
  ExplainerResult b = SelectTopTriples(c1, {}, {0.5, 0.5, 0.5}, 2);
  EXPECT_EQ(a.triples1, b.triples1);
}

// ------------------------------------------------------------- perturbation

TEST_F(BaselineFixture, FullMaskRoughlyReconstructsEmbedding) {
  double recon = embedder_->ReconstructionSimilarity(
      kg::KgSide::kSource, e1_, *candidates1_);
  EXPECT_GT(recon, 0.3) << "Eq. (10) reconstruction should correlate with "
                           "the trained embedding";
}

TEST_F(BaselineFixture, EmptyMaskFallsBackToOriginal) {
  la::Vec original =
      model_->EntityEmbeddings(kg::KgSide::kSource).RowCopy(e1_);
  la::Vec reconstructed = embedder_->Embed(kg::KgSide::kSource, e1_, {});
  EXPECT_EQ(original, reconstructed);
}

TEST_F(BaselineFixture, PerturbedSimilarityRespondsToMask) {
  double full = embedder_->PerturbedSimilarity(e1_, *candidates1_, e2_,
                                               *candidates2_);
  double empty1 = embedder_->PerturbedSimilarity(e1_, {}, e2_, {});
  // Different masks give different predictions (not a constant function).
  EXPECT_NE(full, empty1);
}

TEST_F(BaselineFixture, AggregationModeForGcnModels) {
  std::unique_ptr<emb::EAModel> gcn =
      emb::MakeDefaultModel(emb::ModelKind::kGcnAlign);
  gcn->Train(*dataset_);
  PerturbedEmbedder agg(*dataset_, *gcn);
  la::Vec v = agg.Embed(kg::KgSide::kSource, e1_, *candidates1_);
  EXPECT_EQ(v.size(), gcn->EntityEmbeddings(kg::KgSide::kSource).cols());
  EXPECT_NEAR(la::Norm(v), 1.0f, 1e-4f);  // aggregation output normalized
}

TEST(ApplyMaskTest, SelectsMaskedSubset) {
  std::vector<kg::Triple> candidates = {{0, 0, 1}, {0, 0, 2}, {0, 0, 3}};
  std::vector<kg::Triple> kept = ApplyMask(candidates, {true, false, true});
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[1].tail, 3u);
}

// ----------------------------------------------------------------- EALime

TEST_F(BaselineFixture, EALimeRespectsBudget) {
  EALime lime(embedder_);
  ExplainerResult result =
      lime.Explain(e1_, e2_, *candidates1_, *candidates2_, 4);
  EXPECT_EQ(result.TotalTriples(), 4u);
}

TEST_F(BaselineFixture, EALimeSelectsCandidateSubset) {
  EALime lime(embedder_);
  ExplainerResult result =
      lime.Explain(e1_, e2_, *candidates1_, *candidates2_, 3);
  std::set<kg::Triple> c1(candidates1_->begin(), candidates1_->end());
  for (const kg::Triple& t : result.triples1) EXPECT_TRUE(c1.count(t) > 0);
}

TEST_F(BaselineFixture, EALimeDeterministic) {
  EALime lime(embedder_);
  ExplainerResult a = lime.Explain(e1_, e2_, *candidates1_, *candidates2_, 4);
  ExplainerResult b = lime.Explain(e1_, e2_, *candidates1_, *candidates2_, 4);
  EXPECT_EQ(a.triples1, b.triples1);
  EXPECT_EQ(a.triples2, b.triples2);
}

TEST_F(BaselineFixture, EALimeEmptyCandidates) {
  EALime lime(embedder_);
  ExplainerResult result = lime.Explain(e1_, e2_, {}, {}, 4);
  EXPECT_EQ(result.TotalTriples(), 0u);
}

// --------------------------------------------------------------- EAShapley

TEST_F(BaselineFixture, ShapleyEfficiencyAxiomApproximate) {
  // Sum of Monte-Carlo Shapley values = v(full) - v(empty) (exactly, for
  // permutation sampling: telescoping sum per permutation).
  EAShapley shapley(embedder_, ShapleyEstimator::kMonteCarlo, 16);
  std::vector<double> scores =
      shapley.AttributionScores(e1_, e2_, *candidates1_, *candidates2_);
  double sum = 0.0;
  for (double s : scores) sum += s;
  double v_full = embedder_->PerturbedSimilarity(e1_, *candidates1_, e2_,
                                                 *candidates2_);
  double v_empty = embedder_->PerturbedSimilarity(e1_, {}, e2_, {});
  EXPECT_NEAR(sum, v_full - v_empty, 1e-6);
}

TEST_F(BaselineFixture, ShapleyRespectsBudget) {
  EAShapley shapley(embedder_, ShapleyEstimator::kMonteCarlo, 8);
  ExplainerResult result =
      shapley.Explain(e1_, e2_, *candidates1_, *candidates2_, 5);
  EXPECT_EQ(result.TotalTriples(), 5u);
}

TEST_F(BaselineFixture, KernelShapProducesScores) {
  EAShapley shapley(embedder_, ShapleyEstimator::kKernelShap, 16);
  std::vector<double> scores =
      shapley.AttributionScores(e1_, e2_, *candidates1_, *candidates2_);
  EXPECT_EQ(scores.size(), candidates1_->size() + candidates2_->size());
  bool any_nonzero = false;
  for (double s : scores) any_nonzero |= s != 0.0;
  EXPECT_TRUE(any_nonzero);
}

TEST_F(BaselineFixture, ShapleyDeterministic) {
  EAShapley shapley(embedder_, ShapleyEstimator::kMonteCarlo, 8);
  auto a = shapley.AttributionScores(e1_, e2_, *candidates1_, *candidates2_);
  auto b = shapley.AttributionScores(e1_, e2_, *candidates1_, *candidates2_);
  EXPECT_EQ(a, b);
}

TEST_F(BaselineFixture, ShapleySingleFeature) {
  std::vector<kg::Triple> one = {(*candidates1_)[0]};
  EAShapley shapley(embedder_, ShapleyEstimator::kMonteCarlo, 4);
  std::vector<double> scores = shapley.AttributionScores(e1_, e2_, one, {});
  ASSERT_EQ(scores.size(), 1u);
}

// ------------------------------------------------------------------ Anchor

TEST_F(BaselineFixture, AnchorRespectsBudget) {
  AnchorExplainer anchor(embedder_);
  ExplainerResult result =
      anchor.Explain(e1_, e2_, *candidates1_, *candidates2_, 4);
  EXPECT_EQ(result.TotalTriples(), 4u);
}

TEST_F(BaselineFixture, AnchorDeterministic) {
  AnchorExplainer anchor(embedder_);
  ExplainerResult a =
      anchor.Explain(e1_, e2_, *candidates1_, *candidates2_, 4);
  ExplainerResult b =
      anchor.Explain(e1_, e2_, *candidates1_, *candidates2_, 4);
  EXPECT_EQ(a.triples1, b.triples1);
}

// -------------------------------------------------------------------- LORE

TEST_F(BaselineFixture, LoreRespectsBudget) {
  LoreExplainer lore(embedder_, LoreOptions{});
  ExplainerResult result =
      lore.Explain(e1_, e2_, *candidates1_, *candidates2_, 4);
  EXPECT_EQ(result.TotalTriples(), 4u);
}

TEST_F(BaselineFixture, LoreDeterministic) {
  LoreExplainer lore(embedder_, LoreOptions{});
  ExplainerResult a = lore.Explain(e1_, e2_, *candidates1_, *candidates2_, 4);
  ExplainerResult b = lore.Explain(e1_, e2_, *candidates1_, *candidates2_, 4);
  EXPECT_EQ(a.triples1, b.triples1);
}

TEST_F(BaselineFixture, LoreEmptyCandidates) {
  LoreExplainer lore(embedder_, LoreOptions{});
  EXPECT_EQ(lore.Explain(e1_, e2_, {}, {}, 4).TotalTriples(), 0u);
}

// -------------------------------------------------------------- Exhaustive

TEST_F(BaselineFixture, ExhaustiveFindsPreservingSubset) {
  ExhaustiveExplainer exhaustive(embedder_, /*max_features=*/16);
  // Trim candidates so the exhaustive branch runs.
  std::vector<kg::Triple> c1(candidates1_->begin(),
                             candidates1_->begin() +
                                 std::min<size_t>(5, candidates1_->size()));
  std::vector<kg::Triple> c2(candidates2_->begin(),
                             candidates2_->begin() +
                                 std::min<size_t>(5, candidates2_->size()));
  ExplainerResult result = exhaustive.Explain(e1_, e2_, c1, c2, 0);
  EXPECT_GT(exhaustive.last_evaluations(), 1u);
  // The found subset must actually preserve the prediction threshold.
  double full = embedder_->PerturbedSimilarity(e1_, c1, e2_, c2);
  double subset = embedder_->PerturbedSimilarity(e1_, result.triples1, e2_,
                                                 result.triples2);
  EXPECT_GE(subset, 0.95 * full - 1e-6);
}

TEST_F(BaselineFixture, ExhaustiveIsMinimal) {
  // On a tiny instance, no strictly smaller subset may preserve the
  // prediction (minimality of the exhaustive search).
  ExhaustiveExplainer exhaustive(embedder_, 16);
  std::vector<kg::Triple> c1(candidates1_->begin(),
                             candidates1_->begin() +
                                 std::min<size_t>(4, candidates1_->size()));
  std::vector<kg::Triple> c2(candidates2_->begin(),
                             candidates2_->begin() +
                                 std::min<size_t>(4, candidates2_->size()));
  ExplainerResult result = exhaustive.Explain(e1_, e2_, c1, c2, 0);
  size_t found_size = result.TotalTriples();
  ASSERT_GT(found_size, 0u);
  double full = embedder_->PerturbedSimilarity(e1_, c1, e2_, c2);
  double target = 0.95 * full;
  // Check all subsets one smaller than the found size.
  size_t n = c1.size() + c2.size();
  for (uint32_t bits = 1; bits < (1u << n); ++bits) {
    if (static_cast<size_t>(__builtin_popcount(bits)) != found_size - 1) {
      continue;
    }
    std::vector<kg::Triple> kept1;
    std::vector<kg::Triple> kept2;
    for (size_t i = 0; i < n; ++i) {
      if (!((bits >> i) & 1u)) continue;
      if (i < c1.size()) {
        kept1.push_back(c1[i]);
      } else {
        kept2.push_back(c2[i - c1.size()]);
      }
    }
    EXPECT_LT(embedder_->PerturbedSimilarity(e1_, kept1, e2_, kept2),
              target + 1e-9)
        << "a smaller preserving subset exists";
  }
}

TEST_F(BaselineFixture, ExhaustiveGreedyFallbackHonoursBudget) {
  ExhaustiveExplainer exhaustive(embedder_, /*max_features=*/2);  // force fallback
  ExplainerResult result =
      exhaustive.Explain(e1_, e2_, *candidates1_, *candidates2_, 3);
  EXPECT_LE(result.TotalTriples(), 3u);
}

TEST_F(BaselineFixture, ExhaustiveCostGrowsExponentially) {
  // The paper's motivation: subset search explodes with candidate count.
  ExhaustiveExplainer small(embedder_, 16);
  std::vector<kg::Triple> c_small(candidates1_->begin(),
                                  candidates1_->begin() + 3);
  small.Explain(e1_, e2_, c_small, {}, 0);
  size_t evals_small = small.last_evaluations();
  std::vector<kg::Triple> c_big(
      candidates1_->begin(),
      candidates1_->begin() + std::min<size_t>(6, candidates1_->size()));
  std::vector<kg::Triple> c_big2(
      candidates2_->begin(),
      candidates2_->begin() + std::min<size_t>(5, candidates2_->size()));
  small.Explain(e1_, e2_, c_big, c_big2, 0);
  EXPECT_GT(small.last_evaluations(), evals_small);
}

// ------------------------------------------------------------- ExeaAdapter

TEST_F(BaselineFixture, ExeaAdapterMatchesExplainer) {
  explain::ExeaConfig config;
  explain::ExeaExplainer explainer(*dataset_, *model_, config);
  eval::RankedSimilarity ranked = eval::RankTestEntities(*model_, *dataset_);
  kg::AlignmentSet aligned = eval::GreedyAlign(ranked);
  explain::AlignmentContext context(&aligned, &dataset_->train);
  explain::ExeaAdapter adapter(&explainer, &context);
  EXPECT_EQ(adapter.name(), "ExEA");
  ExplainerResult result =
      adapter.Explain(e1_, e2_, *candidates1_, *candidates2_, 0);
  explain::Explanation direct = explainer.Explain(e1_, e2_, context);
  EXPECT_EQ(result.triples1, direct.triples1);
  EXPECT_EQ(result.triples2, direct.triples2);
}

}  // namespace
}  // namespace exea::baselines
