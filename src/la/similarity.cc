#include "la/similarity.h"

#include <algorithm>
#include <cmath>

#include "la/simd.h"
#include "obs/span.h"
#include "util/check.h"
#include "util/parallel.h"

namespace exea::la {
namespace {

// Row-block size for the parallel loops below. Blocks are fixed by the
// range alone (see util/parallel.h), so results are bit-identical at any
// thread count; each row is written by exactly one task.
constexpr size_t kRowGrain = 16;

}  // namespace

// Precomputes per-row inverse norms; zero rows get 0 so their similarity
// collapses to 0 instead of NaN. Uses the dispatched dot kernel so the
// norms (and everything derived from them) stay bit-identical across
// SIMD levels.
std::vector<float> RowInverseNorms(const Matrix& m) {
  return RowInverseNormsRange(m, 0, m.rows());
}

std::vector<float> RowInverseNormsRange(const Matrix& m, size_t row_begin,
                                        size_t row_end) {
  EXEA_CHECK_LE(row_begin, row_end);
  EXEA_CHECK_LE(row_end, m.rows());
  const SimdOps& ops = ActiveSimdOps();
  std::vector<float> inv(row_end - row_begin);
  util::ParallelFor(0, inv.size(), /*grain=*/256, [&](size_t i) {
    const float* row = m.Row(row_begin + i);
    float norm = std::sqrt(ops.dot(row, row, m.cols()));
    inv[i] = norm > 1e-12f ? 1.0f / norm : 0.0f;
  });
  return inv;
}

bool ScoredLess(const ScoredIndex& a, const ScoredIndex& b) {
  // The pinned candidate order: descending score, ties broken by
  // ascending index (see la_test "TopKTieBreak*"). SIMD reduction
  // reordering cannot permute equal-score neighbors because the
  // comparator, not the scan order, decides placement.
  if (a.score != b.score) return a.score > b.score;
  return a.index < b.index;
}

// Scores one query against every table row (with precomputed table
// inverse norms) and keeps the top k. Shared by the single-query and
// all-queries entry points, and by ExactIndex / the IVF re-rank in
// similarity_index.cc.
std::vector<ScoredIndex> TopKWithNorms(const float* query, const Matrix& table,
                                       const std::vector<float>& inv_table,
                                       size_t k) {
  // Contract with both callers: one precomputed inverse norm per table row.
  // A mismatch would read stale norms and silently mis-rank candidates.
  EXEA_DCHECK_EQ(inv_table.size(), table.rows());
  return TopKRangeWithNorms(query, table, inv_table, 0, table.rows(), k);
}

std::vector<ScoredIndex> TopKRangeWithNorms(const float* query,
                                            const Matrix& table,
                                            const std::vector<float>& inv_range,
                                            size_t row_begin, size_t row_end,
                                            size_t k) {
  EXEA_DCHECK_LE(row_begin, row_end);
  EXEA_DCHECK_LE(row_end, table.rows());
  EXEA_DCHECK_EQ(inv_range.size(), row_end - row_begin);
  const SimdOps& ops = ActiveSimdOps();
  float qnorm = std::sqrt(ops.dot(query, query, table.cols()));
  float qinv = qnorm > 1e-12f ? 1.0f / qnorm : 0.0f;
  std::vector<ScoredIndex> scored;
  scored.reserve(row_end - row_begin);
  for (size_t j = row_begin; j < row_end; ++j) {
    scored.push_back({static_cast<uint32_t>(j),
                      ops.dot(query, table.Row(j), table.cols()) * qinv *
                          inv_range[j - row_begin]});
  }
  size_t keep = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                    ScoredLess);
  scored.resize(keep);
  EXEA_DCHECK_LE(scored.size(), k);
  return scored;
}

Matrix CosineSimilarityMatrix(const Matrix& a, const Matrix& b) {
  obs::Span span("la.cosine_matrix");
  EXEA_CHECK_EQ(a.cols(), b.cols());
  const SimdOps& ops = ActiveSimdOps();
  std::vector<float> inv_a = RowInverseNorms(a);
  std::vector<float> inv_b = RowInverseNorms(b);
  EXEA_DCHECK_EQ(inv_a.size(), a.rows());
  EXEA_DCHECK_EQ(inv_b.size(), b.rows());
  Matrix out(a.rows(), b.rows());
  util::ParallelFor(0, a.rows(), kRowGrain, [&](size_t i) {
    const float* arow = a.Row(i);
    float* orow = out.Row(i);
    for (size_t j = 0; j < b.rows(); ++j) {
      orow[j] = ops.dot(arow, b.Row(j), a.cols()) * inv_a[i] * inv_b[j];
    }
  });
  return out;
}

std::vector<ScoredIndex> TopKByCosine(const float* query, const Matrix& table,
                                      size_t k) {
  return TopKWithNorms(query, table, RowInverseNorms(table), k);
}

std::vector<std::vector<ScoredIndex>> TopKByCosineAll(const Matrix& queries,
                                                      const Matrix& table,
                                                      size_t k) {
  obs::Span span("la.topk_all");
  EXEA_CHECK_EQ(queries.cols(), table.cols());
  std::vector<float> inv_t = RowInverseNorms(table);
  std::vector<std::vector<ScoredIndex>> out(queries.rows());
  util::ParallelFor(0, queries.rows(), kRowGrain, [&](size_t i) {
    out[i] = TopKWithNorms(queries.Row(i), table, inv_t, k);
  });
  return out;
}

int64_t ArgMaxCosine(const float* query, const Matrix& table) {
  if (table.rows() == 0) return -1;
  std::vector<ScoredIndex> top = TopKByCosine(query, table, 1);
  return top.empty() ? -1 : static_cast<int64_t>(top[0].index);
}

}  // namespace exea::la
