// Anchor — rule-based explanations adapted to EA (Section V-B1).
//
// EA is cast as binary classification: a perturbed pair is positive when
// its reconstructed similarity stays above a threshold tied to the
// unperturbed similarity. An anchor is a set of triples that, when forced
// to be present, keeps the classification positive with high precision
// regardless of the other triples. The anchor is grown greedily, feature
// by feature, estimating precision by sampling.

#ifndef EXEA_BASELINES_ANCHOR_H_
#define EXEA_BASELINES_ANCHOR_H_

#include <cstdint>

#include "baselines/explainer.h"
#include "baselines/perturbation.h"

namespace exea::baselines {

class AnchorExplainer : public Explainer {
 public:
  AnchorExplainer(const PerturbedEmbedder* embedder,
                  size_t samples_per_estimate = 20,
                  double precision_target = 0.95,
                  double threshold_ratio = 0.9, uint64_t seed = 17)
      : embedder_(embedder),
        samples_per_estimate_(samples_per_estimate),
        precision_target_(precision_target),
        threshold_ratio_(threshold_ratio),
        seed_(seed) {}

  std::string name() const override { return "Anchor"; }

  ExplainerResult Explain(kg::EntityId e1, kg::EntityId e2,
                          const std::vector<kg::Triple>& candidates1,
                          const std::vector<kg::Triple>& candidates2,
                          size_t budget) override;

 private:
  const PerturbedEmbedder* embedder_;
  size_t samples_per_estimate_;
  double precision_target_;
  double threshold_ratio_;  // positive iff sim >= ratio * unperturbed sim
  uint64_t seed_;
};

}  // namespace exea::baselines

#endif  // EXEA_BASELINES_ANCHOR_H_
