// Blocking-socket primitives shared by the serving paths and the CLI
// clients: loopback listeners with a real backlog, EINTR-safe accept,
// short-write-safe sends, and a bounded buffered line reader.
//
// Everything here speaks raw fds. The rules every helper follows:
//
//   * EINTR is retried, never surfaced — a signal must not tear a
//     request stream mid-line.
//   * writes use MSG_NOSIGNAL, so a peer that disconnected mid-response
//     produces an EPIPE error return instead of killing the process
//     with SIGPIPE.
//   * short writes are completed in a loop; callers hand over a whole
//     NDJSON line and either all of it reaches the kernel or they get a
//     Status explaining why.

#ifndef EXEA_NET_SOCKET_IO_H_
#define EXEA_NET_SOCKET_IO_H_

#include <cstddef>
#include <string>

#include "util/status.h"

namespace exea::net {

// Listen backlog for every serving listener. The historical value of 1
// refused concurrent connect bursts at the kernel level before accept()
// ever saw them; 128 matches the common SOMAXCONN floor.
inline constexpr int kListenBacklog = 128;

// Creates a TCP listener on 127.0.0.1:`port` (port 0 lets the kernel
// pick; read it back with BoundPort). SO_REUSEADDR is set. Returns the
// listening fd.
[[nodiscard]] StatusOr<int> ListenOn(int port, int backlog = kListenBacklog);

// The port a bound socket actually listens on (for port-0 listeners).
[[nodiscard]] StatusOr<int> BoundPort(int fd);

// Connects to 127.0.0.1:`port` (blocking). Returns the connected fd.
[[nodiscard]] StatusOr<int> ConnectLocal(int port);

// Puts `fd` into non-blocking mode.
[[nodiscard]] Status SetNonBlocking(int fd);

// accept() retrying EINTR. Returns the client fd, or -1 with errno set
// for any other failure (including EAGAIN on a non-blocking listener).
// The client inherits the default (blocking) mode; only the synchronous
// serving path should use this.
int AcceptRetry(int listener);

// accept4(SOCK_NONBLOCK) retrying EINTR: the client socket is born
// non-blocking, closing the window where a fd accepted on the event-loop
// thread could block before SetNonBlocking ran. Same return contract as
// AcceptRetry. This is the only accept the loop thread may call.
int AcceptNonBlocking(int listener);

// Writes all `len` bytes, retrying EINTR and continuing through short
// writes; MSG_NOSIGNAL suppresses SIGPIPE on a vanished peer.
[[nodiscard]] Status WriteAll(int fd, const char* data, size_t len);
[[nodiscard]] Status WriteAll(int fd, const std::string& data);

// Buffered '\n'-delimited line reader over a blocking fd, with the same
// bounded-memory contract as the serving loop's stream reader: a line
// longer than `max_bytes` is drained to its newline without being
// buffered whole and reported via `truncated`/`truncated_bytes` (the
// measured length, newline excluded). Returns false on EOF with nothing
// buffered. EINTR is retried.
class LineReader {
 public:
  // Borrows `fd`; the caller keeps ownership and closes it.
  explicit LineReader(int fd) : fd_(fd) {}

  [[nodiscard]] bool ReadLine(size_t max_bytes, std::string* line,
                              bool* truncated, size_t* truncated_bytes);

 private:
  // Refills buf_ from the fd; false on EOF or error.
  [[nodiscard]] bool Refill();

  int fd_;
  std::string buf_;   // bytes read but not yet consumed
  size_t pos_ = 0;    // consumption cursor into buf_
};

}  // namespace exea::net

#endif  // EXEA_NET_SOCKET_IO_H_
