// Tests for the async transport primitives in src/net/: the bounded MPMC
// admission queue, the blocking socket helpers, and the epoll event loop's
// framing guarantees — partial reads, partial writes, response reordering,
// oversized-line rejection, the connection cap, and drain semantics.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/bounded_queue.h"
#include "net/event_loop.h"
#include "net/socket_io.h"
#include "obs/metrics.h"

namespace exea {
namespace {

// ---------------------------------------------------------- BoundedQueue

TEST(BoundedQueueTest, FifoOrder) {
  net::BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.TryPush(1));
  ASSERT_TRUE(queue.TryPush(2));
  ASSERT_TRUE(queue.TryPush(3));
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 3);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueueTest, TryPushRejectsWhenFull) {
  net::BoundedQueue<int> queue(2);
  ASSERT_TRUE(queue.TryPush(1));
  ASSERT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // full: the admission bound
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_TRUE(queue.TryPush(3));  // space freed, admits again
}

TEST(BoundedQueueTest, CloseStillDrainsQueuedItems) {
  net::BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.TryPush(7));
  ASSERT_TRUE(queue.TryPush(8));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(9));  // closed to new work...
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));  // ...but admitted work still drains
  EXPECT_EQ(out, 7);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 8);
  EXPECT_FALSE(queue.Pop(&out));  // closed and drained
}

TEST(BoundedQueueTest, CloseWakesBlockedPop) {
  net::BoundedQueue<int> queue(4);
  std::thread popper([&] {
    int out = 0;
    EXPECT_FALSE(queue.Pop(&out));  // blocks until Close, then false
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  popper.join();
}

// Many producers racing many consumers through a tiny queue; run under
// TSAN in CI. Every pushed value must be popped exactly once.
TEST(BoundedQueueTest, MpmcStressLosesNothing) {
  constexpr size_t kProducers = 4;
  constexpr size_t kConsumers = 4;
  constexpr size_t kPerProducer = 250;
  net::BoundedQueue<uint64_t> queue(8);

  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t i = 0; i < kPerProducer; ++i) {
        uint64_t value = p * kPerProducer + i;
        while (!queue.TryPush(value)) std::this_thread::yield();
      }
    });
  }

  std::mutex mu;
  std::vector<uint64_t> popped;
  std::vector<std::thread> consumers;
  for (size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      uint64_t value = 0;
      while (queue.Pop(&value)) {
        std::lock_guard<std::mutex> lock(mu);
        popped.push_back(value);
      }
    });
  }

  for (std::thread& t : producers) t.join();
  queue.Close();
  for (std::thread& t : consumers) t.join();

  ASSERT_EQ(popped.size(), kProducers * kPerProducer);
  std::sort(popped.begin(), popped.end());
  for (size_t i = 0; i < popped.size(); ++i) {
    ASSERT_EQ(popped[i], i);  // each value exactly once
  }
}

// ------------------------------------------------------------- socket_io

TEST(SocketIoTest, ListenBacklogConstantIsReal) {
  // The historical listen(fd, 1) refused concurrent connects; the shared
  // constant must stay comfortably above one.
  EXPECT_GE(net::kListenBacklog, 64);
}

TEST(SocketIoTest, LineReaderSplitsAndMeasuresOversized) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::string payload = "short\n" + std::string(100, 'x') + "\nafter\n";
  ASSERT_EQ(::write(fds[1], payload.data(), payload.size()),
            static_cast<ssize_t>(payload.size()));
  ::close(fds[1]);

  net::LineReader reader(fds[0]);
  std::string line;
  bool truncated;
  size_t truncated_bytes;

  ASSERT_TRUE(reader.ReadLine(16, &line, &truncated, &truncated_bytes));
  EXPECT_EQ(line, "short");
  EXPECT_FALSE(truncated);

  ASSERT_TRUE(reader.ReadLine(16, &line, &truncated, &truncated_bytes));
  EXPECT_TRUE(truncated);
  EXPECT_EQ(truncated_bytes, 100u);  // measured, newline excluded

  ASSERT_TRUE(reader.ReadLine(16, &line, &truncated, &truncated_bytes));
  EXPECT_EQ(line, "after");
  EXPECT_FALSE(truncated);

  EXPECT_FALSE(reader.ReadLine(16, &line, &truncated, &truncated_bytes));
  ::close(fds[0]);
}

// ------------------------------------------------------------- EventLoop

// A loop on its own thread with an injectable line handler and a private
// registry, plus a blocking client helper speaking the NDJSON framing.
class LoopFixture {
 public:
  using Handler = std::function<void(const net::EventLoop::Line&)>;

  explicit LoopFixture(Handler handler, net::EventLoopOptions options =
                                            net::EventLoopOptions{}) {
    options.registry = &registry_;
    handler_ = std::move(handler);
    loop_ = std::make_unique<net::EventLoop>(
        options, [this](const net::EventLoop::Line& line) { handler_(line); });
    Status status = loop_->Listen(0);
    EXPECT_TRUE(status.ok()) << status.ToString();
    thread_ = std::thread([this] { loop_->Run(); });
  }

  ~LoopFixture() {
    loop_->Stop();
    thread_.join();
  }

  net::EventLoop& loop() { return *loop_; }
  int port() const { return loop_->port(); }
  obs::Registry& registry() { return registry_; }

 private:
  obs::Registry registry_;
  Handler handler_;
  std::unique_ptr<net::EventLoop> loop_;
  std::thread thread_;
};

struct Client {
  int fd = -1;

  explicit Client(int port) {
    auto connected = net::ConnectLocal(port);
    EXPECT_TRUE(connected.ok()) << connected.status().ToString();
    if (connected.ok()) fd = *connected;
  }
  ~Client() {
    if (fd >= 0) ::close(fd);
  }

  void Send(const std::string& text) {
    Status status = net::WriteAll(fd, text);
    EXPECT_TRUE(status.ok()) << status.ToString();
  }

  // One response line, or "" on EOF.
  std::string ReadLine() {
    std::string line;
    char c;
    while (::read(fd, &c, 1) == 1) {
      if (c == '\n') return line;
      line.push_back(c);
    }
    return line;
  }
};

TEST(EventLoopTest, EchoesLinesInOrder) {
  LoopFixture fixture([&fixture](const net::EventLoop::Line& line) {
    fixture.loop().Send(line.conn, line.seq, "echo:" + line.text);
  });
  Client client(fixture.port());
  client.Send("alpha\nbeta\ngamma\n");
  EXPECT_EQ(client.ReadLine(), "echo:alpha");
  EXPECT_EQ(client.ReadLine(), "echo:beta");
  EXPECT_EQ(client.ReadLine(), "echo:gamma");
  EXPECT_EQ(fixture.registry().CounterValue("net.lines_in"), 3u);
}

TEST(EventLoopTest, ReassemblesLinesAcrossPartialReads) {
  LoopFixture fixture([&fixture](const net::EventLoop::Line& line) {
    fixture.loop().Send(line.conn, line.seq, "got:" + line.text);
  });
  Client client(fixture.port());
  client.Send("hel");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  client.Send("lo\nwor");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  client.Send("ld\n");
  EXPECT_EQ(client.ReadLine(), "got:hello");
  EXPECT_EQ(client.ReadLine(), "got:world");
}

// Workers race, responses complete out of order — the loop must still
// write them to the socket in request order.
TEST(EventLoopTest, ReordersRacingResponses) {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<net::EventLoop::Line> lines;
  LoopFixture fixture([&](const net::EventLoop::Line& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
    cv.notify_all();
  });

  Client client(fixture.port());
  client.Send("first\nsecond\n");
  std::vector<net::EventLoop::Line> pair;
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return lines.size() == 2; });
    pair = lines;
  }
  EXPECT_EQ(pair[0].seq, 0u);
  EXPECT_EQ(pair[1].seq, 1u);

  // Answer in reverse: seq 1 before seq 0.
  fixture.loop().Send(pair[1].conn, pair[1].seq, "r:" + pair[1].text);
  fixture.loop().Send(pair[0].conn, pair[0].seq, "r:" + pair[0].text);

  EXPECT_EQ(client.ReadLine(), "r:first");
  EXPECT_EQ(client.ReadLine(), "r:second");
}

TEST(EventLoopTest, OversizedLineIsMeasuredNotBuffered) {
  net::EventLoopOptions options;
  options.max_line_bytes = 16;
  LoopFixture fixture(
      [&fixture](const net::EventLoop::Line& line) {
        if (line.oversized) {
          EXPECT_TRUE(line.text.empty());
          fixture.loop().Send(
              line.conn, line.seq,
              "too-big:" + std::to_string(line.observed_bytes));
        } else {
          fixture.loop().Send(line.conn, line.seq, "ok:" + line.text);
        }
      },
      options);

  Client client(fixture.port());
  client.Send(std::string(100, 'z') + "\nshort\n");
  EXPECT_EQ(client.ReadLine(), "too-big:100");
  EXPECT_EQ(client.ReadLine(), "ok:short");
}

TEST(EventLoopTest, BlankLinesConsumeNoSequence) {
  std::mutex mu;
  std::vector<uint64_t> seqs;
  LoopFixture fixture([&](const net::EventLoop::Line& line) {
    {
      std::lock_guard<std::mutex> lock(mu);
      seqs.push_back(line.seq);
    }
    fixture.loop().Send(line.conn, line.seq, "ack:" + line.text);
  });

  Client client(fixture.port());
  client.Send("\n   \nreal\n\t\nanother\n");
  EXPECT_EQ(client.ReadLine(), "ack:real");
  EXPECT_EQ(client.ReadLine(), "ack:another");

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(seqs.size(), 2u);  // whitespace-only lines: no event
  EXPECT_EQ(seqs[0], 0u);      // ...and no sequence hole
  EXPECT_EQ(seqs[1], 1u);
  EXPECT_EQ(fixture.registry().CounterValue("net.lines_in"), 2u);
}

TEST(EventLoopTest, ConnectionCapShedsAtAccept) {
  net::EventLoopOptions options;
  options.max_connections = 1;
  LoopFixture fixture(
      [&fixture](const net::EventLoop::Line& line) {
        fixture.loop().Send(line.conn, line.seq, "pong");
      },
      options);

  Client first(fixture.port());
  first.Send("ping\n");
  EXPECT_EQ(first.ReadLine(), "pong");  // round-trip: definitely admitted

  Client second(fixture.port());
  EXPECT_EQ(second.ReadLine(), "");  // immediate EOF: shed at the edge
  EXPECT_EQ(fixture.registry().CounterValue("net.conn_rejected"), 1u);

  first.Send("again\n");  // the admitted client is unaffected
  EXPECT_EQ(first.ReadLine(), "pong");
}

TEST(EventLoopTest, DrainStillAnswersAdmittedLines) {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<net::EventLoop::Line> held;
  LoopFixture fixture([&](const net::EventLoop::Line& line) {
    std::lock_guard<std::mutex> lock(mu);
    held.push_back(line);
    cv.notify_all();
  });

  Client client(fixture.port());
  client.Send("pending\n");
  net::EventLoop::Line admitted;
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return !held.empty(); });
    admitted = held[0];
  }

  fixture.loop().BeginDrain();  // no new reads or accepts...
  fixture.loop().Send(admitted.conn, admitted.seq, "answered");
  EXPECT_EQ(client.ReadLine(), "answered");  // ...but owed answers flush
}

// Connect/disconnect churn with clients that vanish without reading their
// responses (EPIPE on the loop's writes). Run under TSAN in CI; the
// assertion is simply that nothing crashes, deadlocks, or leaks a
// response for a live client.
TEST(EventLoopTest, SurvivesClientChurn) {
  LoopFixture fixture([&fixture](const net::EventLoop::Line& line) {
    fixture.loop().Send(line.conn, line.seq,
                        std::string(256, '#') + ":" + line.text);
  });

  constexpr size_t kThreads = 4;
  constexpr size_t kRounds = 10;
  std::atomic<size_t> good{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t round = 0; round < kRounds; ++round) {
        Client client(fixture.port());
        if (client.fd < 0) continue;
        client.Send("msg-" + std::to_string(t) + "-" +
                    std::to_string(round) + "\n");
        if ((t + round) % 3 == 0) continue;  // vanish without reading
        std::string reply = client.ReadLine();
        if (reply.find("msg-") != std::string::npos) ++good;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Every client that stayed to read got its answer.
  size_t stayed = 0;
  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t round = 0; round < kRounds; ++round) {
      if ((t + round) % 3 != 0) ++stayed;
    }
  }
  EXPECT_EQ(good.load(), stayed);
}

}  // namespace
}  // namespace exea
