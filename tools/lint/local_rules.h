// The per-file analysis: runs every single-file rule pass over one
// stripped SourceFile and fills a FileAnalysis — fact tables for the
// cross-TU phase plus waiver-filtered local diagnostics. AnalyzeFile is a
// pure function of (file content, concurrency config), which is what the
// content-hash cache relies on.

#ifndef EXEA_TOOLS_LINT_LOCAL_RULES_H_
#define EXEA_TOOLS_LINT_LOCAL_RULES_H_

#include "lint/analysis.h"
#include "lint/config.h"
#include "lint/source.h"

namespace lint {

FileAnalysis AnalyzeFile(const SourceFile& file,
                         const ConcurrencyConfig& conc);

}  // namespace lint

#endif  // EXEA_TOOLS_LINT_LOCAL_RULES_H_
