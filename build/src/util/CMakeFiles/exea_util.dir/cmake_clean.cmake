file(REMOVE_RECURSE
  "CMakeFiles/exea_util.dir/flags.cc.o"
  "CMakeFiles/exea_util.dir/flags.cc.o.d"
  "CMakeFiles/exea_util.dir/logging.cc.o"
  "CMakeFiles/exea_util.dir/logging.cc.o.d"
  "CMakeFiles/exea_util.dir/rng.cc.o"
  "CMakeFiles/exea_util.dir/rng.cc.o.d"
  "CMakeFiles/exea_util.dir/status.cc.o"
  "CMakeFiles/exea_util.dir/status.cc.o.d"
  "CMakeFiles/exea_util.dir/string_util.cc.o"
  "CMakeFiles/exea_util.dir/string_util.cc.o.d"
  "CMakeFiles/exea_util.dir/tsv.cc.o"
  "CMakeFiles/exea_util.dir/tsv.cc.o.d"
  "libexea_util.a"
  "libexea_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exea_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
