#include "kg/kg_io.h"

#include "util/tsv.h"

namespace exea::kg {

StatusOr<KnowledgeGraph> LoadTriples(const std::string& path) {
  KnowledgeGraph graph;
  EXEA_RETURN_IF_ERROR(LoadTriplesInto(path, graph));
  return graph;
}

Status LoadTriplesInto(const std::string& path, KnowledgeGraph& graph) {
  auto rows = ReadTsv(path, 3);
  if (!rows.ok()) return rows.status();
  for (const auto& row : *rows) {
    graph.AddTriple(row[0], row[1], row[2]);
  }
  return Status::Ok();
}

Status SaveTriples(const KnowledgeGraph& graph, const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(graph.num_triples());
  for (const Triple& t : graph.triples()) {
    rows.push_back({graph.EntityName(t.head), graph.RelationName(t.rel),
                    graph.EntityName(t.tail)});
  }
  return WriteTsv(path, rows);
}

StatusOr<AlignmentSet> LoadAlignment(const std::string& path,
                                     const KnowledgeGraph& source,
                                     const KnowledgeGraph& target) {
  auto rows = ReadTsv(path, 2);
  if (!rows.ok()) return rows.status();
  AlignmentSet alignment;
  for (const auto& row : *rows) {
    EntityId s = source.FindEntity(row[0]);
    if (s == kInvalidEntity) {
      return Status::NotFound("unknown source entity: " + row[0]);
    }
    EntityId t = target.FindEntity(row[1]);
    if (t == kInvalidEntity) {
      return Status::NotFound("unknown target entity: " + row[1]);
    }
    alignment.Add(s, t);
  }
  return alignment;
}

Status SaveAlignment(const AlignmentSet& alignment,
                     const KnowledgeGraph& source,
                     const KnowledgeGraph& target, const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(alignment.size());
  for (const AlignedPair& pair : alignment.SortedPairs()) {
    rows.push_back(
        {source.EntityName(pair.source), target.EntityName(pair.target)});
  }
  return WriteTsv(path, rows);
}

Status SaveDictionary(const Dictionary& dictionary, const std::string& path) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(dictionary.size());
  for (uint32_t id = 0; id < dictionary.size(); ++id) {
    rows.push_back({dictionary.Name(id)});
  }
  return WriteTsv(path, rows);
}

StatusOr<std::vector<std::string>> LoadDictionaryNames(
    const std::string& path) {
  auto rows = ReadTsv(path, 1);
  if (!rows.ok()) return rows.status();
  std::vector<std::string> names;
  names.reserve(rows->size());
  for (auto& row : *rows) {
    if (row[0].empty()) {
      return Status::InvalidArgument("empty name in dictionary file: " + path);
    }
    names.push_back(std::move(row[0]));
  }
  return names;
}

}  // namespace exea::kg
