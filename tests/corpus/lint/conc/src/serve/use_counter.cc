#include <mutex>

#include "util/counter.h"

namespace demo::serve {

// Positive: calls an EXEA_REQUIRES method from another TU without the
// lock and without carrying the contract.
void BumpUnlocked(util::Counter& counter) {
  counter.BumpLocked();
}

// Positive: a free function reading the guarded member directly — the
// member escaped its class and its mutex.
long PeekCount(const util::Counter& counter) {
  return counter.count_;
}

// Negative: the canonical pattern, lock first then call.
void BumpProperly(util::Counter& counter) {
  std::lock_guard<std::mutex> lock(counter.mu_);
  counter.BumpLocked();
}

}  // namespace demo::serve
