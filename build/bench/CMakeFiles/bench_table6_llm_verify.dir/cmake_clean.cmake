file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_llm_verify.dir/bench_table6_llm_verify.cc.o"
  "CMakeFiles/bench_table6_llm_verify.dir/bench_table6_llm_verify.cc.o.d"
  "bench_table6_llm_verify"
  "bench_table6_llm_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_llm_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
