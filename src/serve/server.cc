#include "serve/server.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

#include "net/socket_io.h"
#include "util/logging.h"
#include "util/parse.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace exea::serve {
namespace {

// ------------------------------------------------------- flat JSON parser

class FlatJsonParser {
 public:
  explicit FlatJsonParser(const std::string& text) : text_(text) {}

  StatusOr<std::map<std::string, std::string>> Parse() {
    SkipSpace();
    if (!Consume('{')) return Error("expected '{'");
    std::map<std::string, std::string> fields;
    SkipSpace();
    if (Consume('}')) return FinishedAt(fields);
    while (true) {
      SkipSpace();
      auto key = ParseString();
      if (!key.ok()) return key.status();
      SkipSpace();
      if (!Consume(':')) return Error("expected ':' after key");
      SkipSpace();
      auto value = ParseValue();
      if (!value.ok()) return value.status();
      fields[*key] = *value;
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return FinishedAt(fields);
      return Error("expected ',' or '}'");
    }
  }

 private:
  StatusOr<std::map<std::string, std::string>> FinishedAt(
      std::map<std::string, std::string>& fields) {
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing characters");
    return std::move(fields);
  }

  Status Error(const std::string& what) {
    return Status::InvalidArgument(
        StrFormat("malformed request (%s at byte %zu)", what.c_str(), pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\r' || text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad \\u escape");
          }
          // The protocol's names are ASCII/UTF-8 pass-through; encode the
          // code point as UTF-8 (BMP only — surrogate pairs rejected).
          if (code >= 0xD800 && code <= 0xDFFF) {
            return Error("surrogate \\u escape unsupported");
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  StatusOr<std::string> ParseValue() {
    if (pos_ >= text_.size()) return Error("missing value");
    char c = text_[pos_];
    if (c == '"') return ParseString();
    if (c == '{' || c == '[') return Error("nested values unsupported");
    // Bare scalar: number / true / false / null, taken as literal text.
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ',' && text_[pos_] != '}' &&
           text_[pos_] != ' ' && text_[pos_] != '\t') {
      ++pos_;
    }
    if (pos_ == start) return Error("missing value");
    return text_.substr(start, pos_ - start);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ------------------------------------------------------------- rendering

std::string ErrorResponse(const Status& status) {
  return StrFormat("{\"ok\":false,\"code\":\"%s\",\"error\":\"%s\"}",
                   StatusCodeName(status.code()),
                   JsonEscape(status.message()).c_str());
}

std::string AlignResultJson(const AlignResult& result) {
  std::ostringstream out;
  out << "{\"entity\":\"" << JsonEscape(result.source) << "\",\"index\":\""
      << JsonEscape(result.index) << "\",\"aligned\":[";
  for (size_t i = 0; i < result.aligned.size(); ++i) {
    out << (i == 0 ? "" : ",") << '"' << JsonEscape(result.aligned[i]) << '"';
  }
  out << "],\"candidates\":[";
  for (size_t i = 0; i < result.candidates.size(); ++i) {
    out << (i == 0 ? "" : ",") << "{\"entity\":\""
        << JsonEscape(result.candidates[i].first) << "\",\"score\":"
        << StrFormat("%.6f", result.candidates[i].second) << "}";
  }
  out << "]}";
  return out.str();
}

std::string RequireField(const std::map<std::string, std::string>& fields,
                         const std::string& key, Status& status) {
  auto it = fields.find(key);
  if (it == fields.end() || it->second.empty()) {
    status = Status::InvalidArgument("missing required field: " + key);
    return "";
  }
  return it->second;
}

// Reads one '\n'-terminated line of at most `max_bytes` bytes into `line`.
// A longer line is drained to its newline without being buffered (the
// request cap must bound memory, not just request size) and reported via
// `truncated`; `line` then holds only the measured length in
// `truncated_bytes`. Returns false on EOF with nothing read.
bool ReadLineBounded(std::istream& in, size_t max_bytes, std::string& line,
                     bool& truncated, size_t& truncated_bytes) {
  line.clear();
  truncated = false;
  truncated_bytes = 0;
  char c;
  while (in.get(c)) {
    if (c == '\n') return true;
    if (line.size() >= max_bytes) {
      truncated = true;
      truncated_bytes = line.size() + 1;
      while (in.get(c) && c != '\n') ++truncated_bytes;
      return true;
    }
    line.push_back(c);
  }
  return !line.empty();
}

}  // namespace

StatusOr<std::map<std::string, std::string>> ParseFlatJson(
    const std::string& line) {
  return FlatJsonParser(line).Parse();
}

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

Server::Server(QueryEngine* engine, const ServerOptions& options)
    : engine_(engine),
      options_(options),
      registry_(options.registry != nullptr ? options.registry
                                            : engine->mutable_registry()),
      requests_(registry_->GetCounter("serve.requests")),
      ok_(registry_->GetCounter("serve.ok")),
      errors_(registry_->GetCounter("serve.errors")),
      malformed_(registry_->GetCounter("serve.malformed")),
      oversized_(registry_->GetCounter("serve.oversized")),
      deadline_exceeded_(registry_->GetCounter("serve.deadline_exceeded")),
      rejected_(registry_->GetCounter("serve.rejected")),
      shed_(registry_->GetCounter("serve.shed")),
      latency_ms_(registry_->GetHistogram("serve.latency_ms")) {}

std::string Server::RejectOversized(size_t observed_bytes) {
  requests_.Increment();
  errors_.Increment();
  oversized_.Increment();
  return ErrorResponse(Status::OutOfRange(
      StrFormat("request line of %zu bytes exceeds the %zu-byte cap",
                observed_bytes, options_.max_request_bytes)));
}

std::string Server::RejectQueueFull() {
  requests_.Increment();
  errors_.Increment();
  rejected_.Increment();
  return ErrorResponse(
      Status::Unavailable("server overloaded: request queue is full"));
}

std::string Server::ShedExpired(double queue_wait_ms) {
  requests_.Increment();
  errors_.Increment();
  deadline_exceeded_.Increment();
  shed_.Increment();
  latency_ms_.Record(queue_wait_ms);
  return ErrorResponse(Status::DeadlineExceeded(
      "deadline expired before processing (shed from queue)"));
}

std::string Server::HandleLine(const std::string& line) {
  if (line.size() > options_.max_request_bytes) {
    return RejectOversized(line.size());
  }
  WallTimer timer;
  std::string response;

  auto fields = ParseFlatJson(line);
  std::string op;
  if (fields.ok()) {
    auto it = fields->find("op");
    op = it == fields->end() ? "" : it->second;
  }
  // Arrival accounting happens before dispatch so a stats response
  // includes its own request, matching the single-threaded behavior.
  requests_.Increment();
  if (!fields.ok()) {
    malformed_.Increment();
    errors_.Increment();
  } else {
    registry_->GetCounter("serve.op." + (op.empty() ? "(none)" : op))
        .Increment();
  }
  if (!fields.ok()) {
    response = ErrorResponse(fields.status());
  } else {
    Deadline deadline(options_.deadline_seconds);
    Status field_error = Status::Ok();

    // Optional per-request deadline override. The value is client data:
    // parse it checked and keep it inside [1ms, 1h] so a hostile request
    // cannot pin a worker forever or wrap the deadline arithmetic.
    auto deadline_it = fields->find("deadline_ms");
    if (deadline_it != fields->end()) {
      constexpr int64_t kMaxDeadlineMs = 3'600'000;
      int64_t deadline_ms = 0;
      Status parsed =
          util::ParseInt64(deadline_it->second, 1, kMaxDeadlineMs, &deadline_ms);
      if (!parsed.ok()) {
        field_error = Status::InvalidArgument(
            "field 'deadline_ms' must be an integer in [1, 3600000]: " +
            parsed.message());
      } else {
        deadline = Deadline(static_cast<double>(deadline_ms) / 1000.0);
      }
    }

    if (!field_error.ok()) {
      response = ErrorResponse(field_error);
    } else if (op == "align") {
      std::vector<std::string> entities;
      auto batch_it = fields->find("entities");
      if (batch_it != fields->end()) {
        for (const std::string& name : Split(batch_it->second, ',')) {
          if (!name.empty()) entities.push_back(name);
        }
      } else {
        std::string entity = RequireField(*fields, "entity", field_error);
        if (field_error.ok()) entities.push_back(entity);
      }
      // Optional per-request candidate cap. Applied at render time only,
      // so the engine (and the async path's coalescer, which must stay
      // byte-identical to the reference server) computes the same results
      // either way; the response just carries fewer candidates.
      int top_k = 0;  // 0 = the engine's configured top_k
      auto k_it = fields->find("k");
      if (k_it != fields->end() && field_error.ok()) {
        constexpr int32_t kMaxRequestTopK = 1000;
        int32_t parsed_k = 0;
        Status parsed =
            util::ParseInt32(k_it->second, 1, kMaxRequestTopK, &parsed_k);
        if (!parsed.ok()) {
          field_error = Status::InvalidArgument(
              "field 'k' must be an integer in [1, 1000]: " +
              parsed.message());
        } else {
          top_k = parsed_k;
        }
      }
      if (!field_error.ok()) {
        response = ErrorResponse(field_error);
      } else {
        auto results = align_dispatcher_
                           ? align_dispatcher_(entities, deadline)
                           : engine_->AlignBatch(entities, deadline);
        auto render = [top_k](const AlignResult& result) {
          if (top_k == 0 ||
              result.candidates.size() <= static_cast<size_t>(top_k)) {
            return AlignResultJson(result);
          }
          AlignResult trimmed = result;
          trimmed.candidates.resize(top_k);
          return AlignResultJson(trimmed);
        };
        if (!results.ok()) {
          response = ErrorResponse(results.status());
        } else if (batch_it != fields->end()) {
          std::ostringstream out;
          out << "{\"ok\":true,\"op\":\"align\",\"results\":[";
          for (size_t i = 0; i < results->size(); ++i) {
            out << (i == 0 ? "" : ",") << render((*results)[i]);
          }
          out << "]}";
          response = out.str();
        } else {
          response = "{\"ok\":true,\"op\":\"align\",\"result\":" +
                     render((*results)[0]) + "}";
        }
      }
    } else if (op == "explain") {
      std::string source = RequireField(*fields, "source", field_error);
      std::string target = RequireField(*fields, "target", field_error);
      if (!field_error.ok()) {
        response = ErrorResponse(field_error);
      } else {
        auto result = engine_->Explain(source, target, deadline);
        if (!result.ok()) {
          response = ErrorResponse(result.status());
        } else {
          response = StrFormat(
              "{\"ok\":true,\"op\":\"explain\",\"cache_hit\":%s,"
              "\"confidence\":%.6f,\"result\":%s}",
              result->cache_hit ? "true" : "false", result->confidence,
              result->json.c_str());
        }
      }
    } else if (op == "neighbors") {
      std::string entity = RequireField(*fields, "entity", field_error);
      // `side` is client data: the old atoi here silently mapped garbage
      // to side 0, which the engine then rejected with a confusing error
      // (or worse, would serve if 0 ever became meaningful). Checked
      // parse → INVALID_ARGUMENT naming the field.
      int32_t side = 1;
      auto side_it = fields->find("side");
      if (side_it != fields->end() && field_error.ok()) {
        Status parsed = util::ParseInt32(side_it->second, 1, 2, &side);
        if (!parsed.ok()) {
          field_error = Status::InvalidArgument(
              "field 'side' must be 1 or 2: " + parsed.message());
        }
      }
      if (!field_error.ok()) {
        response = ErrorResponse(field_error);
      } else {
        auto result = engine_->Neighbors(entity, side, deadline);
        if (!result.ok()) {
          response = ErrorResponse(result.status());
        } else {
          std::ostringstream out;
          out << "{\"ok\":true,\"op\":\"neighbors\",\"entity\":\""
              << JsonEscape(result->entity) << "\",\"edges\":[";
          for (size_t i = 0; i < result->edges.size(); ++i) {
            const NeighborEdge& edge = result->edges[i];
            out << (i == 0 ? "" : ",") << "{\"relation\":\""
                << JsonEscape(edge.relation) << "\",\"neighbor\":\""
                << JsonEscape(edge.neighbor) << "\",\"direction\":\""
                << (edge.outgoing ? "out" : "in") << "\"}";
          }
          out << "]}";
          response = out.str();
        }
      }
    } else if (op == "repair_status") {
      std::string source = RequireField(*fields, "source", field_error);
      std::string target = RequireField(*fields, "target", field_error);
      if (!field_error.ok()) {
        response = ErrorResponse(field_error);
      } else {
        auto result = engine_->RepairStatus(source, target, deadline);
        if (!result.ok()) {
          response = ErrorResponse(result.status());
        } else {
          std::ostringstream out;
          out << "{\"ok\":true,\"op\":\"repair_status\",\"in_base\":"
              << (result->in_base ? "true" : "false") << ",\"in_repaired\":"
              << (result->in_repaired ? "true" : "false") << ",\"verdict\":\""
              << result->verdict << "\",\"repaired_targets\":[";
          for (size_t i = 0; i < result->repaired_targets.size(); ++i) {
            out << (i == 0 ? "" : ",") << '"'
                << JsonEscape(result->repaired_targets[i]) << '"';
          }
          out << "]}";
          response = out.str();
        }
      }
    } else if (op == "stats") {
      response = "{\"ok\":true,\"op\":\"stats\",\"stats\":" + StatsJson() +
                 "}";
    } else if (op == "load_snapshot") {
      std::string dir = RequireField(*fields, "dir", field_error);
      if (!field_error.ok()) {
        response = ErrorResponse(field_error);
      } else {
        // Hot swap. On any failure the engine leaves the current version
        // serving and the error says why; in-flight requests on other
        // workers never notice either way.
        auto epoch = engine_->LoadSnapshot(dir);
        if (!epoch.ok()) {
          response = ErrorResponse(epoch.status());
        } else {
          EngineStatusResult status = engine_->EngineStatus();
          std::ostringstream out;
          out << "{\"ok\":true,\"op\":\"load_snapshot\",\"epoch\":" << *epoch
              << ",\"versions\":" << status.resident_versions
              << ",\"swaps\":" << status.swaps << "}";
          response = out.str();
        }
      }
    } else if (op == "engine_status") {
      EngineStatusResult status = engine_->EngineStatus();
      std::ostringstream out;
      out << "{\"ok\":true,\"op\":\"engine_status\",\"epoch\":"
          << status.epoch << ",\"source\":\"" << JsonEscape(status.source)
          << "\",\"shards\":" << status.shards << ",\"index\":\""
          << JsonEscape(status.index) << "\",\"index_size\":"
          << status.index_size << ",\"resident_versions\":"
          << status.resident_versions << ",\"live_versions\":"
          << static_cast<uint64_t>(status.live_versions)
          << ",\"swaps\":" << status.swaps << ",\"explain_cache_size\":"
          << status.explain_cache_size << "}";
      response = out.str();
    } else if (op == "shutdown") {
      shutdown_requested_ = true;
      response = "{\"ok\":true,\"op\":\"shutdown\"}";
    } else {
      response = ErrorResponse(Status::InvalidArgument(
          "unknown op: " + (op.empty() ? "(none)" : op)));
    }
  }

  bool succeeded = StartsWith(response, "{\"ok\":true");
  if (succeeded) {
    ok_.Increment();
  } else if (fields.ok()) {  // malformed already counted above
    errors_.Increment();
    if (response.find("\"DEADLINE_EXCEEDED\"") != std::string::npos) {
      deadline_exceeded_.Increment();
    }
  }
  latency_ms_.Record(timer.ElapsedMillis());
  return response;
}

std::string Server::StatsJson() const {
  // Cache metrics live in the engine's registry, which by default is
  // also this server's registry; read them from the engine side so the
  // stats payload stays truthful if a caller split the two.
  const obs::Registry& engine_registry = engine_->registry();
  obs::Histogram::Snapshot latency = latency_ms_.TakeSnapshot();
  // One pinned version for the whole payload, so index name/size and the
  // epoch always describe the same snapshot even mid-swap.
  EngineStatusResult engine_status = engine_->EngineStatus();
  std::ostringstream out;
  out << "{\"index\":\"" << engine_status.index << "\",\"index_size\":"
      << engine_status.index_size
      << ",\"epoch\":" << engine_status.epoch
      << ",\"shards\":" << engine_status.shards
      << ",\"snapshot_versions\":" << engine_status.resident_versions
      << ",\"snapshot_swaps\":" << engine_status.swaps
      << ",\"requests\":" << requests_.Value()
      << ",\"ok\":" << ok_.Value()
      << ",\"errors\":" << errors_.Value()
      << ",\"malformed\":" << malformed_.Value()
      << ",\"oversized\":" << oversized_.Value()
      << ",\"deadline_exceeded\":" << deadline_exceeded_.Value()
      << ",\"rejected\":" << rejected_.Value()
      << ",\"shed\":" << shed_.Value()
      << ",\"queue_depth\":"
      << static_cast<uint64_t>(registry_->GaugeValue("serve.queue_depth"))
      << ",\"explain_cache_hits\":"
      << engine_registry.CounterValue("serve.explain_cache.hits")
      << ",\"explain_cache_misses\":"
      << engine_registry.CounterValue("serve.explain_cache.misses")
      << ",\"explain_cache_size\":"
      << static_cast<uint64_t>(
             engine_registry.GaugeValue("serve.explain_cache.size"))
      << ",\"latency_count\":" << latency.count
      << StrFormat(",\"latency_p50_ms\":%.3f,\"latency_p99_ms\":%.3f",
                   latency.p50, latency.p99)
      << ",\"per_op\":{";
  bool first = true;
  const std::string prefix = "serve.op.";
  for (const auto& [name, count] :
       registry_->CountersWithPrefix(prefix)) {
    out << (first ? "" : ",") << '"'
        << JsonEscape(name.substr(prefix.size())) << "\":" << count;
    first = false;
  }
  out << "},\"metrics\":" << registry_->ToJson() << "}";
  return out.str();
}

void Server::Serve(std::istream& in, std::ostream& out) {
  std::string line;
  bool truncated;
  size_t truncated_bytes;
  while (!shutdown_requested_ &&
         ReadLineBounded(in, options_.max_request_bytes, line, truncated,
                         truncated_bytes)) {
    if (truncated) {
      out << RejectOversized(truncated_bytes) << "\n" << std::flush;
      continue;
    }
    if (Trim(line).empty()) continue;
    out << HandleLine(line) << "\n" << std::flush;
  }
  std::fprintf(stderr, "server exiting; final stats: %s\n",
               StatsJson().c_str());
}

Status Server::ServeTcp(int port) {
  // A real backlog (not the historical 1) so a connect burst queues in
  // the kernel while the previous client finishes, instead of being
  // refused before accept() ever runs.
  auto listener = net::ListenOn(port, net::kListenBacklog);
  if (!listener.ok()) return listener.status();
  auto bound = net::BoundPort(*listener);
  if (!bound.ok()) {
    // The listener is already live; dropping the fd here would leak it
    // for the life of the process (and hold the port).
    ::close(*listener);
    return bound.status();
  }
  std::fprintf(stderr, "listening on 127.0.0.1:%d\n", *bound);

  while (!shutdown_requested_) {
    int client = net::AcceptRetry(*listener);
    if (client < 0) continue;
    net::LineReader reader(client);
    std::string request;
    bool truncated;
    size_t truncated_bytes;
    while (!shutdown_requested_ &&
           reader.ReadLine(options_.max_request_bytes, &request, &truncated,
                           &truncated_bytes)) {
      if (!truncated && Trim(request).empty()) continue;
      std::string response = truncated ? RejectOversized(truncated_bytes)
                                       : HandleLine(request);
      response += '\n';
      // A client that vanished mid-response is that client's problem, not
      // the serving loop's: WriteAll already survived EINTR/short writes
      // and MSG_NOSIGNAL kept EPIPE from becoming SIGPIPE. Move on.
      if (!net::WriteAll(client, response).ok()) break;
    }
    ::close(client);
  }
  ::close(*listener);
  std::fprintf(stderr, "server exiting; final stats: %s\n",
               StatsJson().c_str());
  return Status::Ok();
}

}  // namespace exea::serve
