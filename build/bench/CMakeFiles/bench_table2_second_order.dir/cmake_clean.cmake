file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_second_order.dir/bench_table2_second_order.cc.o"
  "CMakeFiles/bench_table2_second_order.dir/bench_table2_second_order.cc.o.d"
  "bench_table2_second_order"
  "bench_table2_second_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_second_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
