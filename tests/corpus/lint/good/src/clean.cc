// Clean fixture for lint_test (see clean.h).
#include "clean.h"

namespace demo {

void Caller() {
  util::Status checked = DoThing();  // consumed, not discarded
  if (!checked.ok()) {
    return;
  }

  // A justified leak may opt out: exea-lint: allow(raw-new-delete)
  static int* leaked = new int(7);
  (void)leaked;

  // Mentions inside comments and strings never fire: rand(), new, delete,
  // std::cout, std::random_device.
  const char* text = "rand() new delete std::cout";
  (void)text;
}

}  // namespace demo
