#include "lint/source.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace lint {

namespace fs = std::filesystem;

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

size_t FindWord(const std::string& line, const std::string& word) {
  size_t at = 0;
  while ((at = line.find(word, at)) != std::string::npos) {
    bool left = at == 0 || !IsIdentChar(line[at - 1]);
    bool right = at + word.size() >= line.size() ||
                 !IsIdentChar(line[at + word.size()]);
    if (left && right) return at;
    at += word.size();
  }
  return std::string::npos;
}

void ParseWaivers(const std::string& comment, std::set<std::string>* out) {
  const std::string marker = "exea-lint: allow(";
  size_t at = comment.find(marker);
  if (at == std::string::npos) return;
  size_t open = at + marker.size();
  size_t close = comment.find(')', open);
  if (close == std::string::npos) return;
  std::string inside = comment.substr(open, close - open);
  std::string name;
  std::istringstream parts(inside);
  while (std::getline(parts, name, ',')) {
    size_t b = name.find_first_not_of(" \t");
    size_t e = name.find_last_not_of(" \t");
    if (b != std::string::npos) out->insert(name.substr(b, e - b + 1));
  }
}

void StripToCode(SourceFile* file) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  std::string comment_text;
  file->code.resize(file->raw.size());
  file->waivers.resize(file->raw.size());
  for (size_t li = 0; li < file->raw.size(); ++li) {
    const std::string& in = file->raw[li];
    std::string out(in.size(), ' ');
    if (state == State::kLineComment) state = State::kCode;
    for (size_t i = 0; i < in.size(); ++i) {
      char c = in[i];
      char next = i + 1 < in.size() ? in[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            state = State::kLineComment;
            comment_text.assign(in, i, std::string::npos);
            ParseWaivers(comment_text, &file->waivers[li]);
            i = in.size();  // rest of line is comment
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            comment_text.clear();
            ++i;
          } else if (c == '"') {
            out[i] = '"';
            state = State::kString;
          } else if (c == '\'') {
            out[i] = '\'';
            state = State::kChar;
          } else {
            out[i] = c;
          }
          break;
        case State::kBlockComment:
          comment_text.push_back(c);
          if (c == '*' && next == '/') {
            ParseWaivers(comment_text, &file->waivers[li]);
            state = State::kCode;
            ++i;
          }
          break;
        case State::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            out[i] = '"';
            state = State::kCode;
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            out[i] = '\'';
            state = State::kCode;
          }
          break;
        case State::kLineComment:
          break;  // unreachable: reset at line start
      }
    }
    if (state == State::kBlockComment) {
      ParseWaivers(comment_text, &file->waivers[li]);
      comment_text.push_back('\n');
    }
    // A string/char literal never legally spans a newline in this codebase.
    if (state == State::kString || state == State::kChar) state = State::kCode;
    file->code[li] = std::move(out);
  }
}

bool ReadFileContent(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

void ClassifyPath(const std::string& path_str, SourceFile* out) {
  out->path = path_str;
  out->is_header = HasSuffix(out->path, ".h");
  // Classify by path segment, so absolute and relative invocations agree.
  std::string generic = "/" + out->path;
  out->in_src = generic.find("/src/") != std::string::npos;
  out->is_rng_impl = generic.find("/util/rng.") != std::string::npos;
  if (out->in_src) {
    size_t at = generic.rfind("/src/");
    std::string rel = generic.substr(at + 5);
    out->src_rel = rel;
    size_t slash = rel.find('/');
    if (slash != std::string::npos) out->module = rel.substr(0, slash);
  } else if (generic.find("/tools/") != std::string::npos) {
    out->module = "tools";
  } else if (generic.find("/bench/") != std::string::npos) {
    out->module = "bench";
  }
}

void SplitLines(const std::string& content, std::vector<std::string>* out) {
  std::string line;
  for (char c : content) {
    if (c == '\n') {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      out->push_back(line);
      line.clear();
    } else {
      line.push_back(c);
    }
  }
  if (!line.empty()) {
    if (line.back() == '\r') line.pop_back();
    out->push_back(line);
  }
}

void BuildSourceFile(const std::string& path_str, const std::string& content,
                     SourceFile* out) {
  ClassifyPath(path_str, out);
  SplitLines(content, &out->raw);
  StripToCode(out);
}

bool LoadFileRaw(const fs::path& path, SourceFile* out) {
  std::string content;
  if (!ReadFileContent(path, &content)) return false;
  ClassifyPath(path.generic_string(), out);
  SplitLines(content, &out->raw);
  return true;
}

bool LoadFile(const fs::path& path, SourceFile* out) {
  if (!LoadFileRaw(path, out)) return false;
  StripToCode(out);
  return true;
}

void CollectFiles(const fs::path& root, std::vector<fs::path>* out) {
  std::error_code ec;
  if (fs::is_regular_file(root, ec)) {
    out->push_back(root);
    return;
  }
  if (!fs::is_directory(root, ec)) return;
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec)) continue;
    std::string p = it->path().generic_string();
    if (HasSuffix(p, ".cc") || HasSuffix(p, ".h")) out->push_back(it->path());
  }
}

uint64_t Fnv1a64(const std::string& data, uint64_t seed) {
  uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t Fnv1a64(const std::string& data) {
  return Fnv1a64(data, 14695981039346656037ULL);
}

std::string NormalizedRepoPath(const std::string& path) {
  std::string generic = "/" + path;
  size_t best = std::string::npos;
  for (const char* seg : {"/src/", "/tools/", "/bench/", "/tests/"}) {
    size_t at = generic.rfind(seg);
    if (at != std::string::npos && (best == std::string::npos || at > best)) {
      best = at;
    }
  }
  if (best == std::string::npos) return path;
  return generic.substr(best + 1);
}

}  // namespace lint
