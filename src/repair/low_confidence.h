// Low-confidence conflict repair — Algorithm 2 of the paper (Section IV-C).
//
// Pairs whose ADG has no strongly-influential edges (equivalently, whose
// Eq. (9) confidence does not exceed beta = sigmoid(theta)) are treated as
// potentially incorrect, removed, and realigned against candidate targets
// that share aligned neighbours with the source. Realignment scores blend
// local (explanation confidence) and global (embedding similarity)
// information: score = confidence + score_alpha * sim (Line 14). Sources
// that remain unaligned afterwards are greedily matched to the remaining
// free targets by similarity.

#ifndef EXEA_REPAIR_LOW_CONFIDENCE_H_
#define EXEA_REPAIR_LOW_CONFIDENCE_H_

#include <vector>

#include "data/dataset.h"
#include "explain/config.h"
#include "repair/one_to_many.h"

namespace exea::repair {

struct LowConfidenceResult {
  kg::AlignmentSet alignment;  // final A*
  size_t low_confidence_removed = 0;
  size_t iterations = 0;
  size_t swaps = 0;
  size_t final_greedy_matches = 0;
};

struct LowConfidenceOptions {
  size_t top_k = 5;           // candidate entities per source (k)
  double score_alpha = 1.0;   // Line 14 blending coefficient
  double beta = 0.5;          // low-confidence threshold (sigmoid(theta))
  size_t max_candidates = 32; // cap on the Candidate() pool per source
  size_t max_iterations = 16; // hard stop on the outer loop
};

// Runs Algorithm 2 starting from Algorithm 1's output (`alignment` A* and
// `unaligned` E1'). The result alignment is one-to-one and free of
// low-confidence pairs except for those introduced by the final greedy
// fallback (which the paper also applies).
LowConfidenceResult RepairLowConfidence(
    const kg::AlignmentSet& alignment, std::vector<kg::EntityId> unaligned,
    const kg::AlignmentSet& seeds, const emb::RankedSimilarity& ranked,
    const ConfidenceFn& confidence, const data::EaDataset& dataset,
    const LowConfidenceOptions& options);

}  // namespace exea::repair

#endif  // EXEA_REPAIR_LOW_CONFIDENCE_H_
