#include "kg/functionality.h"

#include <unordered_set>

#include "util/logging.h"

namespace exea::kg {

RelationFunctionality::RelationFunctionality(const KnowledgeGraph& graph) {
  size_t num_rel = graph.num_relations();
  func_.assign(num_rel, 0.0);
  ifunc_.assign(num_rel, 0.0);
  for (RelationId r = 0; r < num_rel; ++r) {
    const std::vector<uint32_t>& indexes = graph.TriplesOfRelation(r);
    if (indexes.empty()) continue;
    std::unordered_set<EntityId> heads;
    std::unordered_set<EntityId> tails;
    for (uint32_t idx : indexes) {
      const Triple& t = graph.triples()[idx];
      heads.insert(t.head);
      tails.insert(t.tail);
    }
    double n = static_cast<double>(indexes.size());
    func_[r] = static_cast<double>(heads.size()) / n;
    ifunc_[r] = static_cast<double>(tails.size()) / n;
  }
}

double RelationFunctionality::Func(RelationId r) const {
  EXEA_CHECK_LT(r, func_.size());
  return func_[r];
}

double RelationFunctionality::InverseFunc(RelationId r) const {
  EXEA_CHECK_LT(r, ifunc_.size());
  return ifunc_[r];
}

}  // namespace exea::kg
