// Runtime-dispatched SIMD kernels for the similarity hot loops.
//
// The dispatch contract is strict bit-identity: for any input, every
// kernel produces the same bytes at every SIMD level. The scalar
// fallback is NOT a naive sequential loop — it mirrors the AVX2
// arithmetic DAG exactly (eight strided lane accumulators over 8-float
// chunks, the same pairwise tree reduction as the vector horizontal
// add, then the scalar tail added sequentially). This is what lets
// tests/simd_test.cc assert byte equality instead of tolerances, and
// what keeps the repo-wide determinism contract (DESIGN.md §11)
// independent of the machine the binary lands on, given a fixed
// EXEA_SIMD setting.
//
// Level selection happens once, on first use: the EXEA_SIMD environment
// variable ("scalar" or "avx2") wins if set and supported, otherwise
// the best level the CPU reports via CPUID. Tests switch levels
// in-process with SetSimdLevelForTest.

#ifndef EXEA_LA_SIMD_H_
#define EXEA_LA_SIMD_H_

#include <cstddef>

namespace exea::la {

enum class SimdLevel {
  kScalar = 0,
  kAvx2 = 1,
};

// Human-readable level name ("scalar", "avx2"); used in logs and bench
// context.
const char* SimdLevelName(SimdLevel level);

// True when the CPU (and this build) can run the AVX2 kernels.
bool Avx2Supported();

// The level all kernels currently dispatch to. Resolved once from
// EXEA_SIMD / CPUID on first call; later calls return the cached value
// unless a test overrides it.
SimdLevel ActiveSimdLevel();

// Test hook: force the dispatch level in-process. EXEA_CHECK-fails if
// the requested level is unsupported on this machine. Not for
// production code paths.
void SetSimdLevelForTest(SimdLevel level);

// The kernel table one level exports. All kernels tolerate n == 0 and
// unaligned pointers.
struct SimdOps {
  // Inner product of a[0..n) and b[0..n) in the canonical lane-blocked
  // reduction order described above.
  float (*dot)(const float* a, const float* b, size_t n);
  // CSLS row adjustment: dst[j] = float(2.0 * sim[j] - r_src - r_tgt[j])
  // for j in [0, n), all intermediate arithmetic in double.
  void (*csls_adjust_row)(const float* sim, double r_src,
                          const double* r_tgt, float* dst, size_t n);
};

// The kernel table for the active level. Cheap enough to call per
// batch; hot loops should hoist the reference out of the inner loop.
const SimdOps& ActiveSimdOps();

// The always-available scalar reference kernels (the bit-identity
// baseline simd_test compares every other level against).
const SimdOps& ScalarSimdOps();

// The AVX2 kernel table, or nullptr when this build or CPU cannot run
// it. Exposed so simd_test can cross-check levels explicitly.
const SimdOps* Avx2SimdOpsOrNull();

}  // namespace exea::la

#endif  // EXEA_LA_SIMD_H_
