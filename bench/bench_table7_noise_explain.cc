// Table VII: explanation generation under noisy seed alignment — 1/6 of
// the seed pairs are randomly disrupted (the paper corrupts 750 of 4,500)
// before training; fidelity/sparsity measured for all methods on ZH-EN and
// DBP-WD with MTransE and Dual-AMN.
//
// Paper shape: ExEA remains the best method under noise (explanations
// adhere to the model's predictions, independent of data noise).

#include <cstdio>

#include "bench/common.h"
#include "data/noise.h"
#include "util/logging.h"

int main() {
  using namespace exea;
  SetMinLogLevel(LogLevel::kError);
  bench::PrintBanner(
      "Table VII — explanation generation of EA with noisy seeds",
      "ExEA paper Table VII (Section V-E)");

  data::Scale scale = data::ScaleFromEnv();
  bench::ExplanationBenchOptions options;
  options.hops = 1;
  options.num_samples = bench::SamplesFromEnv();

  constexpr double kNoiseFraction = 1.0 / 6.0;
  bench::Table table({"model", "dataset", "method", "fidelity", "sparsity"});
  for (emb::ModelKind kind :
       {emb::ModelKind::kMTransE, emb::ModelKind::kDualAmn}) {
    for (data::Benchmark benchmark :
         {data::Benchmark::kZhEn, data::Benchmark::kDbpWd}) {
      data::EaDataset dataset =
          data::CorruptSeedAlignment(data::MakeBenchmark(benchmark, scale),
                                     kNoiseFraction, /*seed=*/17);
      dataset.name += " (Noise)";
      std::unique_ptr<emb::EAModel> model = bench::TrainModel(kind, dataset);
      std::vector<bench::MethodResult> results =
          bench::RunExplanationBench(dataset, *model, options);
      for (const bench::MethodResult& row : results) {
        table.AddRow({model->name(), dataset.name, row.method,
                      bench::Table::Fmt(row.fidelity),
                      bench::Table::Fmt(row.sparsity)});
      }
      table.AddSeparator();
    }
  }
  table.Print();

  std::printf(
      "\nPaper reference (Table VII, fidelity, ZH-EN noise): MTransE ExEA "
      "0.746 vs best\nbaseline 0.661; Dual-AMN ExEA 0.910 vs best baseline "
      "0.509.\nExpected shape: ExEA remains best under seed noise.\n");
  return 0;
}
