// Negative sampling strategies for alignment training.
//
// Uniform sampling corrupts a pair with a random entity; truncated hard
// sampling (AlignE's "epsilon-truncated uniform negative sampling" and
// Dual-AMN's hard mining) draws a candidate pool and keeps the most similar
// entities as negatives, which is what teaches a model to discriminate
// confusable siblings.

#ifndef EXEA_EMB_NEGATIVE_SAMPLING_H_
#define EXEA_EMB_NEGATIVE_SAMPLING_H_

#include <vector>

#include "kg/types.h"
#include "la/matrix.h"
#include "util/rng.h"

namespace exea::emb {

// `count` uniformly random entity ids from [0, num_entities), excluding
// `exclude`. num_entities must be >= 2.
std::vector<kg::EntityId> UniformNegatives(size_t num_entities,
                                           kg::EntityId exclude, size_t count,
                                           Rng& rng);

// Draws `pool` random candidates from `table` and returns the `count` most
// cosine-similar to `anchor` (excluding `exclude`). Falls back to uniform
// when the pool is too small.
std::vector<kg::EntityId> HardNegatives(const la::Matrix& table,
                                        const float* anchor,
                                        kg::EntityId exclude, size_t count,
                                        size_t pool, Rng& rng);

}  // namespace exea::emb

#endif  // EXEA_EMB_NEGATIVE_SAMPLING_H_
