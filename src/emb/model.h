// EAModel: the interface every embedding-based EA model implements, and the
// only thing the explanation/repair core is allowed to see (the paper's
// extensibility claim: "ExEA can be applied to any embedding-based EA
// model").
//
// A model is trained on an EaDataset and afterwards exposes:
//   * entity embeddings for both KGs in one shared space,
//   * optional relation embeddings (TransE-family models have them;
//     GCN-Align does not, in which case the Eq. (1) translation-based
//     estimator from relation_embedding.h is used downstream),
//   * a similarity function between a source and a target entity.
//
// `CloneUntrained` supports the fidelity protocol, which retrains the same
// architecture/hyper-parameters on a reduced dataset.

#ifndef EXEA_EMB_MODEL_H_
#define EXEA_EMB_MODEL_H_

#include <memory>
#include <string>

#include "data/dataset.h"
#include "emb/config.h"
#include "kg/types.h"
#include "la/matrix.h"

namespace exea::emb {

class EAModel {
 public:
  virtual ~EAModel() = default;

  // Model display name ("MTransE", ...).
  virtual std::string name() const = 0;

  // Trains from scratch. Deterministic for a fixed config seed.
  virtual void Train(const data::EaDataset& dataset) = 0;

  // Entity embeddings for one KG; rows are entity ids. Valid after Train.
  virtual const la::Matrix& EntityEmbeddings(kg::KgSide side) const = 0;

  // Whether the model learns relation embeddings itself.
  virtual bool HasRelationEmbeddings() const { return false; }

  // Translation-based models (TransE family) reconstruct a perturbed
  // entity embedding with Eq. (10); aggregation-based models (GCN family)
  // re-encode the neighbourhood instead. See baselines/perturbation.h.
  virtual bool IsTranslationBased() const { return true; }

  // Relation embeddings for one KG; only call when HasRelationEmbeddings().
  virtual const la::Matrix& RelationEmbeddings(kg::KgSide side) const;

  // Cosine similarity between source entity e1 and target entity e2 in the
  // shared space.
  double Similarity(kg::EntityId e1, kg::EntityId e2) const;

  // A fresh untrained model with identical architecture/config.
  virtual std::unique_ptr<EAModel> CloneUntrained() const = 0;
};

// Identifiers for the four models evaluated in the paper.
enum class ModelKind {
  kMTransE,
  kAlignE,
  kGcnAlign,
  kDualAmn,
};

std::string ModelKindName(ModelKind kind);

// Instantiates a model (see model_factory.cc for per-model config tweaks).
std::unique_ptr<EAModel> MakeModel(ModelKind kind, const TrainConfig& config);

// Per-model default hyper-parameters (the equivalents of the original
// papers' settings, scaled to the synthetic benchmarks). Benches and
// examples start from these.
TrainConfig DefaultConfigFor(ModelKind kind);

// Convenience: MakeModel(kind, DefaultConfigFor(kind)).
std::unique_ptr<EAModel> MakeDefaultModel(ModelKind kind);

}  // namespace exea::emb

#endif  // EXEA_EMB_MODEL_H_
