// Figure 5: case study — the explanations different models produce for a
// confusable "versioned sibling" source entity (the paper's "NVIDIA
// GeForce 400" example maps to our generator's Widget_f_vN00 families).
//
// For each model we print the predicted counterpart of the chosen family
// member and the matching-subgraph explanation, so the characteristic
// behaviours are visible: the simple models (MTransE, GCN-Align) confuse
// siblings that share the hub structure, while the hard-negative models
// (AlignE, Dual-AMN) separate them via the successor/predecessor
// semantics — exactly the qualitative story of the paper's Fig. 5.

#include <cstdio>

#include "bench/common.h"
#include "data/synthetic.h"
#include "explain/exea.h"
#include "util/logging.h"

namespace {

using namespace exea;

void PrintTriple(const kg::KnowledgeGraph& graph, const kg::Triple& t,
                 const char* tag) {
  std::printf("    %s (%s, %s, %s)\n", tag,
              graph.EntityName(t.head).c_str(),
              graph.RelationName(t.rel).c_str(),
              graph.EntityName(t.tail).c_str());
}

}  // namespace

int main() {
  SetMinLogLevel(LogLevel::kError);
  bench::PrintBanner("Figure 5 — case study: explanations across models",
                     "ExEA paper Fig. 5 (Section V-B5)");

  data::Scale scale = data::ScaleFromEnv();
  data::EaDataset dataset = data::MakeBenchmark(data::Benchmark::kZhEn, scale);
  data::SyntheticOptions options =
      data::BenchmarkOptions(data::Benchmark::kZhEn, scale);

  // Train all four models, then pick a family member (a "GeForce"-style
  // versioned sibling, in the test split) on which the models *disagree* —
  // that is what makes the paper's case study interesting. Falls back to
  // the first test-split family member when all models agree everywhere.
  struct Trained {
    std::unique_ptr<emb::EAModel> model;
    kg::AlignmentSet aligned;
  };
  std::vector<Trained> trained;
  for (emb::ModelKind kind : bench::AllModels()) {
    Trained t;
    t.model = bench::TrainModel(kind, dataset);
    t.aligned = eval::GreedyAlign(eval::RankTestEntities(*t.model, dataset));
    trained.push_back(std::move(t));
  }

  kg::EntityId source = kg::kInvalidEntity;
  std::string source_name;
  kg::EntityId fallback = kg::kInvalidEntity;
  std::string fallback_name;
  for (size_t family = 0; family < options.num_families &&
                          source == kg::kInvalidEntity;
       ++family) {
    for (size_t member = 0; member < options.family_size; ++member) {
      std::string name = options.kg1_prefix + "/" +
                         data::FamilyEntityBaseName(family, member);
      kg::EntityId candidate = dataset.kg1.FindEntity(name);
      if (candidate == kg::kInvalidEntity ||
          dataset.test_gold.count(candidate) == 0) {
        continue;
      }
      if (fallback == kg::kInvalidEntity) {
        fallback = candidate;
        fallback_name = name;
      }
      kg::EntityId gold = dataset.test_gold.at(candidate);
      bool any_correct = false;
      bool any_wrong = false;
      for (const Trained& t : trained) {
        std::vector<kg::EntityId> targets = t.aligned.TargetsOf(candidate);
        bool correct = !targets.empty() && targets[0] == gold;
        any_correct |= correct;
        any_wrong |= !correct;
      }
      if (any_correct && any_wrong) {
        source = candidate;
        source_name = name;
        break;
      }
    }
  }
  if (source == kg::kInvalidEntity) {
    source = fallback;
    source_name = fallback_name;
  }
  EXEA_CHECK_NE(source, kg::kInvalidEntity)
      << "no test-set family member found";
  kg::EntityId gold_target = dataset.test_gold.at(source);
  std::printf("Source entity: %s   (gold counterpart: %s)\n\n",
              source_name.c_str(),
              dataset.kg2.EntityName(gold_target).c_str());

  for (Trained& t : trained) {
    const kg::AlignmentSet& aligned = t.aligned;
    std::unique_ptr<emb::EAModel>& model = t.model;
    kg::EntityId predicted = aligned.TargetsOf(source).empty()
                                 ? kg::kInvalidEntity
                                 : aligned.TargetsOf(source)[0];
    bool correct = predicted == gold_target;
    std::printf("--- %s ---\n", model->name().c_str());
    std::printf("  predicted counterpart: %s  [%s]\n",
                predicted == kg::kInvalidEntity
                    ? "(none)"
                    : dataset.kg2.EntityName(predicted).c_str(),
                correct ? "correct" : "INCORRECT");
    if (predicted == kg::kInvalidEntity) continue;

    explain::ExeaConfig config;
    explain::ExeaExplainer explainer(dataset, *model, config);
    explain::AlignmentContext context(&aligned, &dataset.train);
    explain::Explanation explanation =
        explainer.Explain(source, predicted, context);
    explain::Adg adg = explainer.BuildAdg(explanation);
    std::printf("  explanation: %zu matched path pairs, confidence %.3f\n",
                explanation.matches.size(), adg.confidence);
    for (const kg::Triple& t : explanation.triples1) {
      PrintTriple(dataset.kg1, t, "KG1");
    }
    for (const kg::Triple& t : explanation.triples2) {
      PrintTriple(dataset.kg2, t, "KG2");
    }
    std::printf("\n");
  }

  std::printf(
      "Expected shape (matches Fig. 5): the explanation shows *why* each "
      "model chose its\ncounterpart — sibling confusions are supported only "
      "by shared hub triples, while\ncorrect alignments are supported by "
      "successor/predecessor chain triples.\n");
  return 0;
}
