// Unit tests for the KG substrate: dictionary, graph store, functionality,
// neighbourhoods/paths, alignment sets, and KG I/O.

#include <unistd.h>

#include <filesystem>
#include <set>

#include <gtest/gtest.h>

#include "kg/alignment.h"
#include "kg/dictionary.h"
#include "kg/functionality.h"
#include "kg/graph.h"
#include "kg/kg_io.h"
#include "kg/neighborhood.h"
#include "kg/stats.h"
#include "util/tsv.h"

namespace exea::kg {
namespace {

// -------------------------------------------------------------- Dictionary

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  uint32_t a = dict.Intern("alpha");
  uint32_t b = dict.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern("alpha"), a);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(DictionaryTest, LookupAndName) {
  Dictionary dict;
  uint32_t id = dict.Intern("x");
  EXPECT_EQ(dict.Lookup("x"), id);
  EXPECT_EQ(dict.Lookup("missing"), UINT32_MAX);
  EXPECT_EQ(dict.Name(id), "x");
  EXPECT_TRUE(dict.Contains("x"));
}

TEST(DictionaryTest, IdsAreDenseInInsertionOrder) {
  Dictionary dict;
  EXPECT_EQ(dict.Intern("a"), 0u);
  EXPECT_EQ(dict.Intern("b"), 1u);
  EXPECT_EQ(dict.Intern("c"), 2u);
}

// ------------------------------------------------------------------ Graph

KnowledgeGraph ChainGraph() {
  // a -r-> b -r-> c, plus a -s-> c.
  KnowledgeGraph g;
  g.AddTriple("a", "r", "b");
  g.AddTriple("b", "r", "c");
  g.AddTriple("a", "s", "c");
  return g;
}

TEST(GraphTest, CountsAndContains) {
  KnowledgeGraph g = ChainGraph();
  EXPECT_EQ(g.num_entities(), 3u);
  EXPECT_EQ(g.num_relations(), 2u);
  EXPECT_EQ(g.num_triples(), 3u);
  Triple t{g.FindEntity("a"), g.FindRelation("r"), g.FindEntity("b")};
  EXPECT_TRUE(g.ContainsTriple(t));
  Triple missing{g.FindEntity("b"), g.FindRelation("s"), g.FindEntity("a")};
  EXPECT_FALSE(g.ContainsTriple(missing));
}

TEST(GraphTest, DuplicateTripleRejected) {
  KnowledgeGraph g;
  EXPECT_TRUE(g.AddTriple("a", "r", "b"));
  EXPECT_FALSE(g.AddTriple("a", "r", "b"));
  EXPECT_EQ(g.num_triples(), 1u);
}

TEST(GraphTest, EdgesBothDirections) {
  KnowledgeGraph g = ChainGraph();
  EntityId b = g.FindEntity("b");
  const auto& edges = g.Edges(b);
  ASSERT_EQ(edges.size(), 2u);
  // Incoming from a, outgoing to c.
  bool has_in = false;
  bool has_out = false;
  for (const AdjacentEdge& e : edges) {
    if (!e.outgoing && e.neighbor == g.FindEntity("a")) has_in = true;
    if (e.outgoing && e.neighbor == g.FindEntity("c")) has_out = true;
  }
  EXPECT_TRUE(has_in);
  EXPECT_TRUE(has_out);
}

TEST(GraphTest, SelfLoopSingleAdjacencyEntry) {
  KnowledgeGraph g;
  g.AddTriple("a", "r", "a");
  EXPECT_EQ(g.Edges(g.FindEntity("a")).size(), 1u);
}

TEST(GraphTest, TriplesOfRelation) {
  KnowledgeGraph g = ChainGraph();
  RelationId r = g.FindRelation("r");
  EXPECT_EQ(g.TriplesOfRelation(r).size(), 2u);
  EXPECT_EQ(g.TriplesOfRelation(g.FindRelation("s")).size(), 1u);
}

TEST(GraphTest, WithoutTriplesPreservesIds) {
  KnowledgeGraph g = ChainGraph();
  std::unordered_set<Triple, TripleHash> removed;
  removed.insert({g.FindEntity("a"), g.FindRelation("r"), g.FindEntity("b")});
  KnowledgeGraph reduced = g.WithoutTriples(removed);
  EXPECT_EQ(reduced.num_triples(), 2u);
  EXPECT_EQ(reduced.num_entities(), 3u);
  EXPECT_EQ(reduced.FindEntity("a"), g.FindEntity("a"));
  EXPECT_EQ(reduced.FindRelation("s"), g.FindRelation("s"));
  EXPECT_FALSE(reduced.ContainsTriple(
      {g.FindEntity("a"), g.FindRelation("r"), g.FindEntity("b")}));
}

TEST(GraphTest, StatsComputation) {
  KnowledgeGraph g = ChainGraph();
  g.AddEntity("isolated");
  KgStats stats = ComputeStats(g);
  EXPECT_EQ(stats.num_entities, 4u);
  EXPECT_EQ(stats.num_triples, 3u);
  EXPECT_EQ(stats.isolated_entities, 1u);
  EXPECT_EQ(stats.max_degree, 2u);
  EXPECT_FALSE(stats.ToString().empty());
}

// -------------------------------------------------------------- Functionality

TEST(FunctionalityTest, FunctionalRelationScoresOne) {
  KnowledgeGraph g;
  // Each head appears once with r: func = 1. Tails all distinct: ifunc = 1.
  g.AddTriple("a", "r", "x");
  g.AddTriple("b", "r", "y");
  RelationFunctionality f(g);
  EXPECT_DOUBLE_EQ(f.Func(g.FindRelation("r")), 1.0);
  EXPECT_DOUBLE_EQ(f.InverseFunc(g.FindRelation("r")), 1.0);
}

TEST(FunctionalityTest, RepeatedHeadsLowerFunc) {
  KnowledgeGraph g;
  // Head a used twice with r -> func = 1 distinct head...
  g.AddTriple("a", "r", "x");
  g.AddTriple("a", "r", "y");
  g.AddTriple("b", "r", "z");
  RelationFunctionality f(g);
  // 2 distinct heads over 3 triples; 3 distinct tails over 3 triples.
  EXPECT_NEAR(f.Func(g.FindRelation("r")), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(f.InverseFunc(g.FindRelation("r")), 1.0, 1e-9);
}

TEST(FunctionalityTest, HubTailLowersInverseFunc) {
  KnowledgeGraph g;
  g.AddTriple("a", "made_by", "hub");
  g.AddTriple("b", "made_by", "hub");
  g.AddTriple("c", "made_by", "hub");
  RelationFunctionality f(g);
  EXPECT_NEAR(f.InverseFunc(g.FindRelation("made_by")), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(f.Func(g.FindRelation("made_by")), 1.0, 1e-9);
}

TEST(FunctionalityTest, UnusedRelationIsZero) {
  KnowledgeGraph g;
  g.AddTriple("a", "r", "b");
  g.AddRelation("unused");
  RelationFunctionality f(g);
  EXPECT_EQ(f.Func(g.FindRelation("unused")), 0.0);
}

// ------------------------------------------------------------- Neighborhood

TEST(NeighborhoodTest, OneHopTriples) {
  KnowledgeGraph g = ChainGraph();
  std::vector<Triple> triples =
      TriplesWithinHops(g, g.FindEntity("a"), 1);
  // a's incident triples: (a,r,b) and (a,s,c).
  EXPECT_EQ(triples.size(), 2u);
}

TEST(NeighborhoodTest, TwoHopTriplesIncludeNeighborsTriples) {
  KnowledgeGraph g = ChainGraph();
  std::vector<Triple> triples =
      TriplesWithinHops(g, g.FindEntity("a"), 2);
  EXPECT_EQ(triples.size(), 3u);  // everything in this small graph
}

TEST(NeighborhoodTest, HopsDoNotDuplicate) {
  KnowledgeGraph g = ChainGraph();
  std::vector<Triple> triples =
      TriplesWithinHops(g, g.FindEntity("b"), 2);
  std::set<Triple> unique(triples.begin(), triples.end());
  EXPECT_EQ(unique.size(), triples.size());
}

TEST(NeighborhoodTest, PathEnumerationLengthOne) {
  KnowledgeGraph g = ChainGraph();
  PathEnumerationOptions options;
  options.max_length = 1;
  std::vector<RelationPath> paths =
      EnumeratePaths(g, g.FindEntity("a"), options);
  EXPECT_EQ(paths.size(), 2u);
  for (const RelationPath& p : paths) {
    EXPECT_EQ(p.length(), 1u);
    EXPECT_EQ(p.source, g.FindEntity("a"));
  }
}

TEST(NeighborhoodTest, PathEnumerationTwoHopsNoRevisit) {
  KnowledgeGraph g = ChainGraph();
  PathEnumerationOptions options;
  options.max_length = 2;
  std::vector<RelationPath> paths =
      EnumeratePaths(g, g.FindEntity("a"), options);
  // 1-hop: a->b, a->c. 2-hop: a->b->c, a->c->b (via r reverse from c? c has
  // edges: b->r->c incoming, a->s->c incoming; from c can reach b).
  for (const RelationPath& p : paths) {
    std::set<EntityId> seen{p.source};
    for (const PathStep& s : p.steps) {
      EXPECT_TRUE(seen.insert(s.to).second) << "path revisits an entity";
    }
  }
  // Shorter paths come first.
  for (size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i - 1].length(), paths[i].length());
  }
}

TEST(NeighborhoodTest, PathTriplesOrientation) {
  KnowledgeGraph g = ChainGraph();
  PathEnumerationOptions options;
  options.max_length = 2;
  std::vector<RelationPath> paths =
      EnumeratePaths(g, g.FindEntity("c"), options);
  // Every reported triple must exist in the graph in its stated
  // orientation.
  for (const RelationPath& p : paths) {
    for (const Triple& t : p.Triples()) {
      EXPECT_TRUE(g.ContainsTriple(t));
    }
  }
}

TEST(NeighborhoodTest, MaxPathsCapRespected) {
  KnowledgeGraph g;
  for (int i = 0; i < 20; ++i) {
    g.AddTriple("hub", "r" + std::to_string(i), "spoke" + std::to_string(i));
  }
  PathEnumerationOptions options;
  options.max_length = 1;
  options.max_paths = 5;
  EXPECT_EQ(EnumeratePaths(g, g.FindEntity("hub"), options).size(), 5u);
}

TEST(NeighborhoodTest, MaxBranchCapRespected) {
  KnowledgeGraph g;
  for (int i = 0; i < 20; ++i) {
    g.AddTriple("hub", "r", "spoke" + std::to_string(i));
  }
  PathEnumerationOptions options;
  options.max_length = 1;
  options.max_branch = 3;
  EXPECT_EQ(EnumeratePaths(g, g.FindEntity("hub"), options).size(), 3u);
}

// ---------------------------------------------------------------- Alignment

TEST(AlignmentTest, AddRemoveContains) {
  AlignmentSet a;
  EXPECT_TRUE(a.Add(1, 2));
  EXPECT_FALSE(a.Add(1, 2));
  EXPECT_TRUE(a.Contains(1, 2));
  EXPECT_TRUE(a.Remove(1, 2));
  EXPECT_FALSE(a.Remove(1, 2));
  EXPECT_TRUE(a.empty());
}

TEST(AlignmentTest, BidirectionalLookup) {
  AlignmentSet a;
  a.Add(1, 10);
  a.Add(2, 10);
  a.Add(1, 11);
  EXPECT_TRUE(a.HasSource(1));
  EXPECT_TRUE(a.HasTarget(10));
  EXPECT_FALSE(a.HasSource(99));
  EXPECT_EQ(a.TargetsOf(1), (std::vector<EntityId>{10, 11}));
  EXPECT_EQ(a.SourcesOf(10), (std::vector<EntityId>{1, 2}));
}

TEST(AlignmentTest, UniqueLookups) {
  AlignmentSet a;
  a.Add(1, 10);
  EXPECT_EQ(a.UniqueTargetOf(1), 10u);
  EXPECT_EQ(a.UniqueSourceOf(10), 1u);
  a.Add(1, 11);
  EXPECT_EQ(a.UniqueTargetOf(1), kInvalidEntity);
  EXPECT_EQ(a.UniqueTargetOf(5), kInvalidEntity);
}

TEST(AlignmentTest, RemoveCleansIndexes) {
  AlignmentSet a;
  a.Add(1, 10);
  a.Remove(1, 10);
  EXPECT_FALSE(a.HasSource(1));
  EXPECT_FALSE(a.HasTarget(10));
}

TEST(AlignmentTest, IsOneToOne) {
  AlignmentSet a;
  a.Add(1, 10);
  a.Add(2, 11);
  EXPECT_TRUE(a.IsOneToOne());
  a.Add(3, 10);
  EXPECT_FALSE(a.IsOneToOne());
  a.Remove(3, 10);
  EXPECT_TRUE(a.IsOneToOne());
}

TEST(AlignmentTest, SortedPairsDeterministic) {
  AlignmentSet a;
  a.Add(5, 2);
  a.Add(1, 9);
  a.Add(5, 1);
  std::vector<AlignedPair> pairs = a.SortedPairs();
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0].source, 1u);
  EXPECT_EQ(pairs[1].target, 1u);
  EXPECT_EQ(pairs[2].target, 2u);
}

TEST(AlignmentTest, AccuracyAgainstGold) {
  AlignmentSet predicted;
  predicted.Add(1, 10);
  predicted.Add(2, 99);  // wrong
  std::unordered_map<EntityId, EntityId> gold{{1, 10}, {2, 20}, {3, 30}};
  EXPECT_NEAR(AlignmentAccuracy(predicted, gold), 1.0 / 3.0, 1e-9);
  EXPECT_EQ(AlignmentAccuracy(predicted, {}), 0.0);
}

// --------------------------------------------------------------------- I/O

class KgIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("exea_kgio_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(KgIoTest, TripleRoundTrip) {
  KnowledgeGraph g = ChainGraph();
  std::string path = (dir_ / "triples.tsv").string();
  ASSERT_TRUE(SaveTriples(g, path).ok());
  auto loaded = LoadTriples(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_triples(), g.num_triples());
  EXPECT_EQ(loaded->num_entities(), g.num_entities());
  for (const Triple& t : g.triples()) {
    Triple mapped{loaded->FindEntity(g.EntityName(t.head)),
                  loaded->FindRelation(g.RelationName(t.rel)),
                  loaded->FindEntity(g.EntityName(t.tail))};
    EXPECT_TRUE(loaded->ContainsTriple(mapped));
  }
}

TEST_F(KgIoTest, AlignmentRoundTrip) {
  KnowledgeGraph g1 = ChainGraph();
  KnowledgeGraph g2;
  g2.AddTriple("a2", "r", "b2");
  AlignmentSet alignment;
  alignment.Add(g1.FindEntity("a"), g2.FindEntity("a2"));
  alignment.Add(g1.FindEntity("b"), g2.FindEntity("b2"));
  std::string path = (dir_ / "alignment.tsv").string();
  ASSERT_TRUE(SaveAlignment(alignment, g1, g2, path).ok());
  auto loaded = LoadAlignment(path, g1, g2);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_TRUE(loaded->Contains(g1.FindEntity("a"), g2.FindEntity("a2")));
}

TEST_F(KgIoTest, AlignmentUnknownEntityFails) {
  KnowledgeGraph g1 = ChainGraph();
  KnowledgeGraph g2 = ChainGraph();
  std::string path = (dir_ / "bad.tsv").string();
  ASSERT_TRUE(WriteTsv(path, {{"ghost", "a"}}).ok());
  auto loaded = LoadAlignment(path, g1, g2);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace exea::kg
