file(REMOVE_RECURSE
  "libexea_classical.a"
)
