# Empty dependencies file for exea_cli.
# This may be replaced when dependencies are built.
