#include "la/matrix.h"

#include <cmath>

#include "util/check.h"

namespace exea::la {

// Per-access bounds checks are the debug tier: Row/At sit inside the
// similarity and training inner loops, and every public entry point that
// derives an index from external data re-validates it against rows()/cols()
// (or a Status guard) before indexing. Shape-agreement checks on whole-
// matrix operations below stay always-on — they run once per call and a
// violation means the subsequent pointer arithmetic reads foreign memory.

float* Matrix::Row(size_t r) {
  EXEA_DCHECK_LT(r, rows_);
  return data_.data() + r * cols_;
}

const float* Matrix::Row(size_t r) const {
  EXEA_DCHECK_LT(r, rows_);
  return data_.data() + r * cols_;
}

float& Matrix::At(size_t r, size_t c) {
  EXEA_DCHECK_LT(r, rows_);
  EXEA_DCHECK_LT(c, cols_);
  return data_[r * cols_ + c];
}

float Matrix::At(size_t r, size_t c) const {
  EXEA_DCHECK_LT(r, rows_);
  EXEA_DCHECK_LT(c, cols_);
  return data_[r * cols_ + c];
}

Vec Matrix::RowCopy(size_t r) const {
  const float* row = Row(r);
  return Vec(row, row + cols_);
}

void Matrix::SetRow(size_t r, const Vec& v) {
  EXEA_CHECK_EQ(v.size(), cols_);
  float* row = Row(r);
  for (size_t c = 0; c < cols_; ++c) row[c] = v[c];
}

void Matrix::FillNormal(Rng& rng, float stddev) {
  for (float& x : data_) x = static_cast<float>(rng.Normal()) * stddev;
}

void Matrix::FillUniform(Rng& rng, float lo, float hi) {
  for (float& x : data_) x = rng.UniformFloat(lo, hi);
}

void Matrix::FillZero() {
  std::fill(data_.begin(), data_.end(), 0.0f);
}

void Matrix::NormalizeRowsL2() {
  for (size_t r = 0; r < rows_; ++r) NormalizeL2(Row(r), cols_);
}

Matrix Matrix::MatMul(const Matrix& other) const {
  EXEA_CHECK_EQ(cols_, other.rows_);
  EXEA_DCHECK_EQ(data_.size(), rows_ * cols_);
  Matrix out(rows_, other.cols_);
  // i-k-j loop order for row-major cache friendliness.
  for (size_t i = 0; i < rows_; ++i) {
    const float* a_row = Row(i);
    float* out_row = out.Row(i);
    for (size_t k = 0; k < cols_; ++k) {
      float a = a_row[k];
      if (a == 0.0f) continue;
      const float* b_row = other.Row(k);
      for (size_t j = 0; j < other.cols_; ++j) {
        out_row[j] += a * b_row[j];
      }
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    const float* row = Row(i);
    for (size_t j = 0; j < cols_; ++j) {
      out.At(j, i) = row[j];
    }
  }
  return out;
}

void Matrix::AddScaled(const Matrix& other, float alpha) {
  EXEA_CHECK_EQ(rows_, other.rows_);
  EXEA_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
}

float Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (float x : data_) sum += static_cast<double>(x) * x;
  return static_cast<float>(std::sqrt(sum));
}

}  // namespace exea::la
