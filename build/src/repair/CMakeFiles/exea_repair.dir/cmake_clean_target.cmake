file(REMOVE_RECURSE
  "libexea_repair.a"
)
