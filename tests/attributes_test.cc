// Tests for the attribute-triple subsystem: AttributeStore, hashed
// feature matrices, synthetic attribute generation, dataset I/O of
// attribute files, and GCN-Align's attribute channel.

#include <filesystem>
#include <memory>

#include <unistd.h>

#include <gtest/gtest.h>

#include "data/benchmarks.h"
#include "data/dataset_io.h"
#include "emb/model.h"
#include "eval/inference.h"
#include "eval/metrics.h"
#include "kg/attributes.h"
#include "la/vector_ops.h"

namespace exea {
namespace {

// ---------------------------------------------------------- AttributeStore

TEST(AttributeStoreTest, AddAndLookup) {
  kg::AttributeStore store;
  kg::AttributeId population = store.AddAttribute("population");
  store.AddTriple(3, population, "1000");
  store.AddTriple(3, "area", "50km2");
  store.AddTriple(7, population, "2000");
  EXPECT_EQ(store.num_attributes(), 2u);
  EXPECT_EQ(store.num_triples(), 3u);
  EXPECT_EQ(store.TriplesOf(3).size(), 2u);
  EXPECT_EQ(store.TriplesOf(7).size(), 1u);
  EXPECT_TRUE(store.TriplesOf(99).empty());
  EXPECT_EQ(store.AttributeName(population), "population");
  EXPECT_EQ(store.FindAttribute("area"), 1u);
  EXPECT_EQ(store.FindAttribute("missing"), UINT32_MAX);
}

TEST(AttributeStoreTest, MultiValuedAttributesAllowed) {
  kg::AttributeStore store;
  store.AddTriple(0, "alias", "A");
  store.AddTriple(0, "alias", "B");
  EXPECT_EQ(store.TriplesOf(0).size(), 2u);
}

TEST(AttributeStoreTest, FeatureMatrixShapeAndNorm) {
  kg::AttributeStore store;
  store.AddTriple(0, "a", "x");
  store.AddTriple(2, "a", "x");
  store.AddTriple(2, "b", "y");
  la::Matrix features = store.FeatureMatrix(4, 16);
  EXPECT_EQ(features.rows(), 4u);
  EXPECT_EQ(features.cols(), 16u);
  EXPECT_NEAR(la::Norm(features.Row(0), 16), 1.0f, 1e-5f);
  EXPECT_NEAR(la::Norm(features.Row(2), 16), 1.0f, 1e-5f);
  // Entity 1 has no attributes: zero row.
  EXPECT_EQ(la::Norm(features.Row(1), 16), 0.0f);
}

TEST(AttributeStoreTest, SharedFactsAlignAcrossNamespaces) {
  // The same (attribute, value) fact with different namespace prefixes
  // must land in the same hash bucket — that is what makes the feature
  // channel useful for alignment.
  kg::AttributeStore store1;
  store1.AddTriple(0, "zh/population", "12000");
  kg::AttributeStore store2;
  store2.AddTriple(0, "en/population", "12000");
  la::Matrix f1 = store1.FeatureMatrix(1, 32);
  la::Matrix f2 = store2.FeatureMatrix(1, 32);
  EXPECT_NEAR(la::Cosine(f1.Row(0), f2.Row(0), 32), 1.0f, 1e-5f);
}

TEST(AttributeStoreTest, DifferentValuesDiverge) {
  kg::AttributeStore store1;
  store1.AddTriple(0, "zh/population", "12000");
  kg::AttributeStore store2;
  store2.AddTriple(0, "en/population", "99999");
  la::Matrix f1 = store1.FeatureMatrix(1, 32);
  la::Matrix f2 = store2.FeatureMatrix(1, 32);
  EXPECT_LT(la::Cosine(f1.Row(0), f2.Row(0), 32), 0.99f);
}

// ------------------------------------------------------------- generation

TEST(AttributeGenerationTest, BenchmarksCarryAttributes) {
  data::EaDataset dataset =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  EXPECT_GT(dataset.attrs1.num_triples(), dataset.kg1.num_entities());
  EXPECT_GT(dataset.attrs2.num_triples(), 0u);
  // KG2 lost some attribute triples to dropout.
  EXPECT_LT(dataset.attrs2.num_triples(), dataset.attrs1.num_triples());
}

TEST(AttributeGenerationTest, FamilyMembersHaveVersionAttribute) {
  data::EaDataset dataset =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  data::SyntheticOptions options =
      data::BenchmarkOptions(data::Benchmark::kZhEn, data::Scale::kTiny);
  kg::AttributeId version =
      dataset.attrs1.FindAttribute(options.kg1_prefix + "/version");
  ASSERT_NE(version, UINT32_MAX);
  kg::EntityId member = dataset.kg1.FindEntity(
      options.kg1_prefix + "/" + data::FamilyEntityBaseName(0, 1));
  ASSERT_NE(member, kg::kInvalidEntity);
  bool found = false;
  for (uint32_t idx : dataset.attrs1.TriplesOf(member)) {
    const kg::AttributeTriple& t = dataset.attrs1.triples()[idx];
    if (t.attribute == version) {
      EXPECT_EQ(t.value, "v200");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(AttributeGenerationTest, CounterpartsShareMostValues) {
  data::EaDataset dataset =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  la::Matrix f1 =
      dataset.attrs1.FeatureMatrix(dataset.kg1.num_entities(), 64);
  la::Matrix f2 =
      dataset.attrs2.FeatureMatrix(dataset.kg2.num_entities(), 64);
  double gold_sim = 0.0;
  double off_sim = 0.0;
  size_t count = 0;
  kg::EntityId previous_target = kg::kInvalidEntity;
  for (const auto& [source, target] : dataset.gold) {
    gold_sim += la::Cosine(f1.Row(source), f2.Row(target), 64);
    if (previous_target != kg::kInvalidEntity) {
      off_sim += la::Cosine(f1.Row(source), f2.Row(previous_target), 64);
    }
    previous_target = target;
    ++count;
  }
  EXPECT_GT(gold_sim / static_cast<double>(count),
            off_sim / static_cast<double>(count - 1) + 0.2)
      << "counterpart attribute features should be much more similar than "
         "mismatched ones";
}

// -------------------------------------------------------------------- I/O

TEST(AttributeIoTest, DatasetRoundTripWithAttributes) {
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("exea_attr_io_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  data::EaDataset original =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  ASSERT_TRUE(data::SaveDataset(original, dir.string()).ok());
  EXPECT_TRUE(std::filesystem::exists(dir / "attr_triples_1.tsv"));
  auto loaded = data::LoadDataset(dir.string(), "attrs");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->attrs1.num_triples(), original.attrs1.num_triples());
  EXPECT_EQ(loaded->attrs2.num_triples(), original.attrs2.num_triples());
  std::filesystem::remove_all(dir);
}

// -------------------------------------------------- GCN attribute channel

TEST(GcnAttributeChannelTest, AttributesImproveGcnAlign) {
  data::EaDataset dataset =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  emb::TrainConfig config = emb::DefaultConfigFor(emb::ModelKind::kGcnAlign);

  std::unique_ptr<emb::EAModel> plain =
      emb::MakeModel(emb::ModelKind::kGcnAlign, config);
  plain->Train(dataset);
  double plain_accuracy = eval::Accuracy(
      eval::GreedyAlign(eval::RankTestEntities(*plain, dataset)),
      dataset.test_gold);

  config.use_attributes = true;
  std::unique_ptr<emb::EAModel> with_attrs =
      emb::MakeModel(emb::ModelKind::kGcnAlign, config);
  with_attrs->Train(dataset);
  double attr_accuracy = eval::Accuracy(
      eval::GreedyAlign(eval::RankTestEntities(*with_attrs, dataset)),
      dataset.test_gold);

  EXPECT_GT(attr_accuracy, plain_accuracy)
      << "the attribute channel should help, as in the original GCN-Align";
  // Output width grows by the attribute block.
  EXPECT_EQ(with_attrs->EntityEmbeddings(kg::KgSide::kSource).cols(),
            plain->EntityEmbeddings(kg::KgSide::kSource).cols() +
                config.attribute_dim);
}

TEST(GcnAttributeChannelTest, NoAttributesIsGracefulNoOp) {
  data::EaDataset dataset =
      data::MakeBenchmark(data::Benchmark::kZhEn, data::Scale::kTiny);
  dataset.attrs1 = kg::AttributeStore();
  dataset.attrs2 = kg::AttributeStore();
  emb::TrainConfig config = emb::DefaultConfigFor(emb::ModelKind::kGcnAlign);
  config.use_attributes = true;
  std::unique_ptr<emb::EAModel> model =
      emb::MakeModel(emb::ModelKind::kGcnAlign, config);
  model->Train(dataset);  // must not crash; channel silently disabled
  EXPECT_EQ(model->EntityEmbeddings(kg::KgSide::kSource).cols(),
            config.dim);
}

}  // namespace
}  // namespace exea
