// Relation-alignment conflict detection and repair (cr1, Section IV-A).
//
// Given the ADG of an EA pair, cross-KG triples are generated for the
// strongly-influential neighbour nodes by swapping aligned entities and
// relations; the mined ¬sameAs rules then reason over them. A neighbour
// node whose matched triples let the rules infer (e1, ¬sameAs, e2) — or an
// internal contradiction — is implicated in a *soft* conflict and deleted,
// after which the explanation confidence is recomputed (Eq. (9)). This is
// what makes cr1 improve the later one-to-many and low-confidence repairs.

#ifndef EXEA_REPAIR_CONFLICTS_H_
#define EXEA_REPAIR_CONFLICTS_H_

#include <vector>

#include "data/dataset.h"
#include "explain/adg.h"
#include "explain/explanation.h"
#include "repair/neg_rules.h"
#include "repair/relation_alignment.h"

namespace exea::repair {

class RelationConflictChecker {
 public:
  // Borrows `dataset`; mined artifacts are moved in.
  RelationConflictChecker(const data::EaDataset& dataset,
                          RelationAlignment relation_alignment,
                          NegRuleSet rules1, NegRuleSet rules2);

  // Convenience constructor that mines everything from the dataset/model.
  static RelationConflictChecker Mine(const data::EaDataset& dataset,
                                      const emb::EAModel& model);

  // Indices (into adg.neighbors) of neighbour nodes implicated in a
  // relation-alignment conflict, ascending.
  std::vector<size_t> FindConflictingNeighbors(
      const explain::Explanation& explanation,
      const explain::Adg& adg) const;

  // Deletes implicated neighbours and recomputes confidence; returns the
  // number of neighbours removed.
  size_t PruneConflicts(const explain::Explanation& explanation,
                        explain::Adg& adg,
                        const explain::ExeaConfig& config) const;

  const RelationAlignment& relation_alignment() const {
    return relation_alignment_;
  }
  const NegRuleSet& rules1() const { return rules1_; }
  const NegRuleSet& rules2() const { return rules2_; }

 private:
  const data::EaDataset* dataset_;
  RelationAlignment relation_alignment_;
  NegRuleSet rules1_;
  NegRuleSet rules2_;
};

}  // namespace exea::repair

#endif  // EXEA_REPAIR_CONFLICTS_H_
